"""Incremental lint cache (``build/.lintcache``).

Linting the whole tree with the flow rules costs a few seconds — cheap
enough for CI, annoying on every local ``make lint``.  The cache makes
a repeat run over an unchanged tree near-instant:

* **Per-file** results (the syntactic rules REP001–REP007) are keyed by
  ``(sha256(source), rules-version, selected-codes)``.  Editing one
  file re-lints that file only.
* **Project-level** results (the flow rules; any file can change any
  other file's findings through the call graph) are keyed by the hash
  of *every* file's content hash, so any edit anywhere invalidates
  them as a unit.

The ``rules-version`` component is the hash of the lint package's own
source files — changing a rule invalidates everything automatically;
no manually-bumped version constant to forget.  Cache files are plain
JSON, written atomically (tmp + replace); a corrupt or stale cache is
silently ignored and rebuilt.  ``--no-cache`` bypasses all of it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.diagnostics import Diagnostic

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("build") / ".lintcache"

_CACHE_FILE = "reprolint.json"
#: Bumped when the cached payload shape or rule semantics change in a
#: way ``rules_version()`` cannot see (v2: interprocedural summaries).
_FORMAT = 2


def _lint_package_version() -> str:
    """Hash of the lint package's own sources — the rules version."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


_VERSION: Optional[str] = None


def rules_version() -> str:
    """Memoised :func:`_lint_package_version`."""
    global _VERSION
    if _VERSION is None:
        _VERSION = _lint_package_version()
    return _VERSION


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def project_key(file_shas: Dict[str, str]) -> str:
    """One hash over every ``path -> sha`` pair, order-independent."""
    digest = hashlib.sha256()
    for path in sorted(file_shas):
        digest.update(path.encode())
        digest.update(b"\x1f")
        digest.update(file_shas[path].encode())
    return digest.hexdigest()


class LintCache:
    """Load/store lint results keyed as described in the module doc."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.path = self.root / _CACHE_FILE
        self._data: Dict[str, object] = {}
        self._dirty = False
        self._load()

    # -- persistence -------------------------------------------------

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            raw = {}
        if (
            not isinstance(raw, dict)
            or raw.get("format") != _FORMAT
            or raw.get("rules_version") != rules_version()
        ):
            raw = {}
        self._data = {
            "format": _FORMAT,
            "rules_version": rules_version(),
            "files": raw.get("files", {}) if raw else {},
            "flow": raw.get("flow", {}) if raw else {},
        }

    def save(self) -> None:
        """Write the cache atomically; failures are non-fatal."""
        if not self._dirty:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=".reprolint-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._data, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            pass
        self._dirty = False

    # -- per-file entries --------------------------------------------

    @staticmethod
    def _file_key(path: str, sha: str, codes_key: str) -> str:
        return f"{path}\x1f{sha}\x1f{codes_key}"

    def get_file(
        self, path: str, sha: str, codes_key: str
    ) -> Optional[List[Diagnostic]]:
        files = self._data["files"]
        assert isinstance(files, dict)
        entry = files.get(self._file_key(path, sha, codes_key))
        if entry is None:
            return None
        return _decode(entry)

    def put_file(
        self,
        path: str,
        sha: str,
        codes_key: str,
        diagnostics: Sequence[Diagnostic],
    ) -> None:
        files = self._data["files"]
        assert isinstance(files, dict)
        files[self._file_key(path, sha, codes_key)] = [
            d.to_json() for d in diagnostics
        ]
        self._dirty = True

    # -- flow (project-wide) entries ---------------------------------

    def get_flow(
        self, key: str, codes_key: str
    ) -> Optional[List[Diagnostic]]:
        flow = self._data["flow"]
        assert isinstance(flow, dict)
        entry = flow.get(f"{key}\x1f{codes_key}")
        if entry is None:
            return None
        return _decode(entry)

    def put_flow(
        self, key: str, codes_key: str, diagnostics: Sequence[Diagnostic]
    ) -> None:
        flow = self._data["flow"]
        assert isinstance(flow, dict)
        # A new project key supersedes every older flow entry: keep the
        # cache from accreting one stale blob per historical tree state.
        stale = [k for k in flow if not k.startswith(f"{key}\x1f")]
        for k in stale:
            del flow[k]
        flow[f"{key}\x1f{codes_key}"] = [d.to_json() for d in diagnostics]
        self._dirty = True


def _decode(entry: object) -> Optional[List[Diagnostic]]:
    if not isinstance(entry, list):
        return None
    try:
        return [Diagnostic.from_json(item) for item in entry]
    except (KeyError, TypeError, ValueError):
        return None
