"""The concurrency/service rule family (REP201–REP205).

PR 6 added a distributed campaign service — an asyncio coordinator, a
length-delimited socket protocol with hand-maintained schemas, and
workers that fork killable children.  Each of those ingredients has a
classic failure mode that is invisible to per-node pattern matching but
*statically decidable* with the call graph and the interprocedural
summaries (:mod:`repro.lint.summaries`):

* **REP201 async-blocking-call** — a blocking call (``time.sleep``,
  sync socket work, ``subprocess``, fsync'd file I/O) lexically inside
  an ``async def``, or reachable from one through resolvable *sync*
  callees, stalls the event loop: every connected peer's heartbeat
  stops while it runs.
* **REP202 discarded-awaitable** — calling a coroutine function
  without awaiting it does nothing (the coroutine object is created
  and dropped); discarding a ``create_task`` result lets the task be
  garbage-collected mid-flight and silently swallows its exceptions.
* **REP203 fork-safety** — ``os.fork`` (or a ``Process``/``Pool`` on a
  ``multiprocessing.get_context("fork")`` context) duplicates the
  calling process wholesale: a running event loop, held locks, and
  module-level mutable state all land in the child.  Forking is fine
  from a clean frame; forking *under* an async stack or next to
  threading primitives is how deadlocks and double-writes are born.
* **REP204 clock-domain-mixing** — ``time.time()`` and
  ``time.monotonic()`` are unrelated axes (NTP steps the former).
  Lease deadlines in the service are monotonic by contract; wall-clock
  values must never meet them in arithmetic or comparisons.  Rides the
  taint engine with a domain tag per token.
* **REP205 protocol-drift** — every statically-known message literal
  (a dict with a constant ``"type"``) is cross-checked against the
  ``SCHEMAS`` table of the same package, both directions: a field the
  schema does not declare, a missing required field, or an unknown
  type each get a diagnostic — so a new field cannot ship validated on
  one peer and unknown on the other.

All matching is on names and the call graph — this module must never
import ``asyncio`` itself (REP007 confines that to the service).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    FunctionInfo,
    LintProject,
    ModuleTable,
    StateKind,
    expand_dotted,
    local_imports,
)
from repro.lint.diagnostics import Diagnostic, FlowRule, register
from repro.lint.flow import TaintToken, analyze_function
from repro.lint.flowrules import (
    _SummarySpec,
    _sorted_functions,
    _sorted_tables,
    lookup_module_state,
)
from repro.lint.summaries import SummaryTable
from repro.lint.rules import dotted_name, _identifier
from repro.lint.summaries import (
    blocking_call_desc,
    classify_clock_call,
    project_summaries,
    shown_callable,
    walk_own,
)

# --------------------------------------------------------------- REP201


@register
class AsyncBlockingCall(FlowRule):
    """Blocking calls must not run on the event loop.

    A coroutine that calls ``time.sleep``/``subprocess``/fsync'd I/O —
    directly, or through any chain of resolvable synchronous helpers —
    freezes every other connection on the loop for the duration: missed
    heartbeats, expired leases, spurious reassignment.  The summary
    table propagates "reaches a blocking call" bottom-up over the call
    graph, so ``await``-free wrappers are seen through.  Use
    ``asyncio.to_thread`` (or an executor) for genuinely blocking work.
    """

    code = "REP201"
    name = "async-blocking-call"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        summaries = project_summaries(project)
        for table in _sorted_tables(project):
            for info in _sorted_functions(table):
                if not isinstance(info.node, ast.AsyncFunctionDef):
                    continue
                extra = local_imports(info.node)
                for node in walk_own(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    direct = blocking_call_desc(table, node, extra)
                    if direct is not None:
                        yield self.diagnostic(
                            table.module, node,
                            f"blocking {direct} inside async "
                            f"{info.qualname}() stalls the event loop; "
                            "use the asyncio equivalent or "
                            "asyncio.to_thread",
                        )
                        continue
                    resolved = project.resolve_call(
                        table, node, extra, info.class_name
                    )
                    summary = summaries.for_function(resolved)
                    if (summary is None or summary.is_async
                            or summary.blocking is None):
                        continue
                    yield self.diagnostic(
                        table.module, node,
                        f"async {info.qualname}() calls "
                        f"{shown_callable(node)}(), which blocks "
                        f"({summary.blocking}); the event loop stalls "
                        "for the duration — move it to "
                        "asyncio.to_thread or an executor",
                    )


# --------------------------------------------------------------- REP202


_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


@register
class DiscardedAwaitable(FlowRule):
    """Coroutines must be awaited; task handles must be kept.

    ``self._flush()`` where ``_flush`` is ``async def`` creates a
    coroutine object and immediately drops it — the body never runs
    (CPython warns at runtime only if warnings are on, and only at GC
    time).  ``asyncio.create_task(...)`` with the result discarded is
    subtler: the event loop keeps only a weak reference, so the task
    can be garbage-collected mid-flight, and any exception it raises is
    silently lost.  Keep the handle (and add a done-callback or await
    it during shutdown).
    """

    code = "REP202"
    name = "discarded-awaitable"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for table in _sorted_tables(project):
            # Module/class level, without descending into functions...
            yield from self._check_region(
                project, table, walk_own(table.module.tree), None, None
            )
            # ...then each registered function (covers nested defs).
            for info in _sorted_functions(table):
                extra = local_imports(info.node)
                yield from self._check_region(
                    project, table, ast.walk(info.node), extra,
                    info.class_name,
                )

    def _check_region(
        self,
        project: LintProject,
        table: ModuleTable,
        nodes: Iterator[ast.AST],
        extra: Optional[Dict[str, str]],
        self_class: Optional[str],
    ) -> Iterator[Diagnostic]:
        for node in nodes:
            if isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Call):
                yield from self._check_bare_call(
                    project, table, node.value, extra, self_class
                )
            elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if (targets
                        and len(targets) == len(node.targets)
                        and all(t.startswith("_") for t in targets)
                        and _spawner_name(node.value) is not None):
                    yield self.diagnostic(
                        table.module, node.value,
                        f"task handle from {_spawner_name(node.value)}() "
                        "is discarded; the event loop holds only a weak "
                        "reference, so the task can be garbage-collected "
                        "mid-flight and its exceptions vanish — keep a "
                        "real reference",
                    )

    def _check_bare_call(
        self,
        project: LintProject,
        table: ModuleTable,
        call: ast.Call,
        extra: Optional[Dict[str, str]],
        self_class: Optional[str],
    ) -> Iterator[Diagnostic]:
        spawner = _spawner_name(call)
        if spawner is not None:
            yield self.diagnostic(
                table.module, call,
                f"result of {spawner}() is discarded; the event loop "
                "holds only a weak reference, so the task can be "
                "garbage-collected mid-flight and its exceptions vanish "
                "— keep a real reference",
            )
            return
        resolved = project.resolve_call(table, call, extra, self_class)
        if resolved is not None and isinstance(
                resolved.node, ast.AsyncFunctionDef):
            yield self.diagnostic(
                table.module, call,
                f"coroutine {resolved.qualname}() is created and never "
                "awaited — the body does not run; 'await' it or "
                "schedule it with asyncio.create_task",
            )


def _spawner_name(call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    if dotted.rsplit(".", 1)[-1] in _TASK_SPAWNERS:
        return dotted
    return None


# --------------------------------------------------------------- REP203


_THREADING_CTORS = frozenset(
    {"Thread", "Lock", "RLock", "Condition", "Semaphore",
     "BoundedSemaphore", "Event", "Barrier", "Timer"}
)
_FORK_SPAWNERS = frozenset({"Process", "Pool"})
_SHARED_STATE_KINDS = {
    StateKind.MUTABLE: "module-level mutable state",
    StateKind.RNG: "a shared module-level RNG",
    StateKind.FILE: "a module-level open file handle",
}


def _fork_site_desc(
    project: LintProject,
    table: ModuleTable,
    call: ast.Call,
    extra: Optional[Dict[str, str]],
) -> Optional[str]:
    """Describe ``call`` when it forks the process, else ``None``."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    expanded = expand_dotted(table, dotted, extra)
    if expanded in ("os.fork", "os.forkpty"):
        return f"{dotted}()"
    parts = dotted.split(".")
    if len(parts) == 2 and parts[1] in _FORK_SPAWNERS:
        state = lookup_module_state(
            project, table, parts[0], extra or {}
        )
        if state is not None and state[1] is StateKind.FORK:
            return f"{dotted}() [fork context]"
    return None


@register
class ForkSafety(FlowRule):
    """Forks must happen from clean frames.

    ``fork()`` duplicates the whole process: a running event loop's
    selector and queues, every lock in whatever state it happens to be
    in, and all module-level mutable state appear in the child.  Three
    checks: (a) a fork site reachable from an ``async def`` (the loop
    is live when the fork happens); (b) threading primitives
    constructed in a module that also forks (a lock held at fork time
    deadlocks the child forever); (c) mutable module state in a forking
    module (both sides mutate their copy, silently diverging).
    """

    code = "REP203"
    name = "fork-safety"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        yield from self._check_async_reach(project)
        yield from self._check_forking_modules(project)

    def _check_async_reach(
        self, project: LintProject
    ) -> Iterator[Diagnostic]:
        roots: List[FunctionInfo] = []
        for table in _sorted_tables(project):
            for info in _sorted_functions(table):
                if isinstance(info.node, ast.AsyncFunctionDef):
                    roots.append(info)
        if not roots:
            return
        reached = project.reachable(roots)
        seen: Set[Tuple[str, int]] = set()
        for fq in sorted(reached):
            info, path = reached[fq]
            table = project.by_path[info.module.rel_path]
            extra = local_imports(info.node)
            chain = " -> ".join(p.rsplit(".", 1)[-1] for p in path)
            for node in walk_own(info.node):
                if not isinstance(node, ast.Call):
                    continue
                desc = _fork_site_desc(project, table, node, extra)
                if desc is None:
                    continue
                key = (table.module.rel_path, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.diagnostic(
                    table.module, node,
                    f"fork via {desc} is reachable from the event loop "
                    f"(via {chain}); the child inherits the running "
                    "loop's internals — fork from a clean frame or use "
                    "a spawn context",
                )

    def _module_fork_sites(
        self, project: LintProject, table: ModuleTable
    ) -> List[Tuple[ast.Call, str]]:
        sites: List[Tuple[ast.Call, str]] = []
        for node in walk_own(table.module.tree):
            if isinstance(node, ast.Call):
                desc = _fork_site_desc(project, table, node, None)
                if desc is not None:
                    sites.append((node, desc))
        for info in _sorted_functions(table):
            extra = local_imports(info.node)
            for node in walk_own(info.node):
                if isinstance(node, ast.Call):
                    desc = _fork_site_desc(project, table, node, extra)
                    if desc is not None:
                        sites.append((node, desc))
        sites.sort(key=lambda pair: (pair[0].lineno, pair[0].col_offset))
        return sites

    def _check_forking_modules(
        self, project: LintProject
    ) -> Iterator[Diagnostic]:
        for table in _sorted_tables(project):
            sites = self._module_fork_sites(project, table)
            if not sites:
                continue
            first_site, first_desc = sites[0]
            # (b) threading primitives in a forking module.
            for node in ast.walk(table.module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                expanded = expand_dotted(table, dotted)
                if (expanded.startswith("threading.")
                        and expanded.split(".")[-1] in _THREADING_CTORS):
                    yield self.diagnostic(
                        table.module, node,
                        f"{dotted}() is created in a module that forks "
                        f"(via {first_desc} at line "
                        f"{first_site.lineno}); a lock or thread alive "
                        "at fork time is duplicated in an undefined "
                        "state and can deadlock the child",
                    )
            # (c) shared module state duplicated into the child.
            for name in sorted(table.state):
                entry = table.state[name]
                what = _SHARED_STATE_KINDS.get(entry.kind)
                if what is None:
                    continue
                yield self.diagnostic(
                    table.module, first_site,
                    f"{first_desc} duplicates {what} '{name}' into the "
                    "child; parent and child mutate independent copies "
                    "— pass state explicitly through the fork boundary",
                )


# --------------------------------------------------------------- REP204


_MONOTONIC_HINTS = frozenset({"expires_at", "ready_at", "deadline"})


class _ClockMixSpec(_SummarySpec):
    """Taint spec: clock reads as sources, cross-domain meets as sinks."""

    def __init__(
        self,
        project: LintProject,
        table: ModuleTable,
        info: FunctionInfo,
        summaries: Optional[SummaryTable],
    ) -> None:
        super().__init__(project, table, info, summaries)
        self.domains: Dict[Tuple[int, int], str] = {}

    def source(self, call: ast.Call) -> Optional[str]:
        domain = classify_clock_call(self.table, call, self.extra)
        desc: Optional[str] = None
        if domain is not None:
            desc = f"{dotted_name(call.func)}()"
        else:
            resolved, summary = self._callee_summary(call)
            if resolved is not None and summary is not None:
                found = summary.returns & {"wallclock", "monotonic"}
                if len(found) == 1:
                    domain = next(iter(found))
                    desc = f"{resolved.qualname}()"
        if domain is None or desc is None:
            return None
        self.domains[(call.lineno, call.col_offset)] = domain
        return desc

    def on_mix(
        self,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
        left_tokens: Sequence[TaintToken],
        right_tokens: Sequence[TaintToken],
    ) -> Optional[str]:
        left_side = self._side_domain(left, left_tokens)
        right_side = self._side_domain(right, right_tokens)
        if left_side is None or right_side is None:
            return None
        if left_side[0] == right_side[0]:
            return None
        wall = left_side if left_side[0] == "wallclock" else right_side
        mono = right_side if wall is left_side else left_side
        met = ("compared" if isinstance(node, ast.Compare)
               else "mixed in arithmetic")
        return (
            f"wall-clock value ({wall[1]}) {met} with monotonic value "
            f"({mono[1]}); time.time() and time.monotonic() are "
            "unrelated axes — lease/deadline math must stay monotonic"
        )

    def _side_domain(
        self, expr: ast.expr, tokens: Sequence[TaintToken]
    ) -> Optional[Tuple[str, str]]:
        for token in tokens:
            domain = self.domains.get(token.site)
            if domain is not None:
                return domain, f"from {token.desc}"
        name = _identifier(expr)
        if name is not None:
            lowered = name.lower()
            if ("monotonic" in lowered or lowered in _MONOTONIC_HINTS):
                return "monotonic", f"'{name}'"
            if "wall" in lowered or "epoch" in lowered:
                return "wallclock", f"'{name}'"
        return None


@register
class ClockDomainMixing(FlowRule):
    """Wall-clock and monotonic values must never meet.

    The coordinator's lease bookkeeping is built on ``time.monotonic()``
    because NTP can step ``time.time()`` by seconds in either direction
    — a wall-clock value compared against a monotonic deadline expires
    leases early or never.  This rule tags every host-clock read (and
    every summary-proven clock-returning helper) with its domain and
    fires when two different domains meet in arithmetic or comparison.
    Identifier conventions (``expires_at``/``ready_at``/``deadline``
    are monotonic; ``*wall*``/``*epoch*`` are wall) extend coverage to
    values whose mint site is out of scope.
    """

    code = "REP204"
    name = "clock-domain-mixing"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        summaries = project_summaries(project)
        for table in _sorted_tables(project):
            for info in _sorted_functions(table):
                spec = _ClockMixSpec(project, table, info, summaries)
                analysis = analyze_function(info.node, spec)
                for hit in analysis.sink_hits:
                    yield self.diagnostic(
                        table.module, hit.node, hit.detail
                    )


# --------------------------------------------------------------- REP205


@register
class ProtocolDrift(FlowRule):
    """Message constructors must match the SCHEMAS table exactly.

    The wire protocol is validated strictly on receive: an unknown
    field or a missing required field kills the connection at
    ``validate()`` — on the *other* peer, possibly running a different
    checkout.  Every statically-known message literal (a dict with a
    constant ``"type"`` key and all-constant keys) in the package that
    owns a ``SCHEMAS`` table is cross-checked both directions, so
    schema drift is caught at lint time on the machine that edits
    either side.  Dynamically-built dicts (``**fields``, computed
    keys) are out of scope by design — keep constructors literal.
    """

    code = "REP205"
    name = "protocol-drift"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for owner, schemas in _schema_tables(project):
            package = (
                owner.modname.rsplit(".", 1)[0]
                if "." in owner.modname else ""
            )
            for modname in sorted(project.tables):
                table = project.tables[modname]
                table_pkg = (
                    modname.rsplit(".", 1)[0] if "." in modname else ""
                )
                if table_pkg != package:
                    continue
                yield from self._check_module(table, owner, schemas)

    def _check_module(
        self,
        table: ModuleTable,
        owner: ModuleTable,
        schemas: Dict[str, Dict[str, bool]],
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(table.module.tree):
            if not isinstance(node, ast.Dict):
                continue
            literal = _message_literal(node)
            if literal is None:
                continue
            msg_type, fields = literal
            schema = schemas.get(msg_type)
            if schema is None:
                yield self.diagnostic(
                    table.module, node,
                    f"message type '{msg_type}' is not declared in "
                    f"SCHEMAS ({owner.modname}); the receiving peer "
                    "rejects the frame at validate()",
                )
                continue
            for field in fields:
                if field not in schema:
                    yield self.diagnostic(
                        table.module, node,
                        f"message constructor for '{msg_type}' sets "
                        f"field '{field}' that SCHEMAS does not "
                        "declare; the peer's validate() rejects the "
                        "frame — declare it (with its kind) in "
                        f"{owner.modname}",
                    )
            present = set(fields)
            for field in sorted(schema):
                if schema[field] and field not in present:
                    yield self.diagnostic(
                        table.module, node,
                        f"message constructor for '{msg_type}' omits "
                        f"required field '{field}' "
                        f"(SCHEMAS[{msg_type!r}] in {owner.modname})",
                    )


def _schema_tables(
    project: LintProject,
) -> List[Tuple[ModuleTable, Dict[str, Dict[str, bool]]]]:
    """Every module defining a parseable top-level ``SCHEMAS`` dict."""
    found: List[Tuple[ModuleTable, Dict[str, Dict[str, bool]]]] = []
    for modname in sorted(project.tables):
        table = project.tables[modname]
        for stmt in table.module.tree.body:
            value: Optional[ast.expr] = None
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "SCHEMAS"):
                value = stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "SCHEMAS"):
                value = stmt.value
            if not isinstance(value, ast.Dict):
                continue
            schemas = _parse_schemas(value)
            if schemas is not None:
                found.append((table, schemas))
    return found


def _parse_schemas(
    node: ast.Dict,
) -> Optional[Dict[str, Dict[str, bool]]]:
    """Parse ``{type: {field: (kind, required)}}``; None if not that."""
    schemas: Dict[str, Dict[str, bool]] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Dict)):
            return None
        fields: Dict[str, bool] = {}
        for fkey, fvalue in zip(value.keys, value.values):
            if not (isinstance(fkey, ast.Constant)
                    and isinstance(fkey.value, str)):
                return None
            required = True
            if (isinstance(fvalue, ast.Tuple)
                    and len(fvalue.elts) == 2
                    and isinstance(fvalue.elts[1], ast.Constant)):
                required = bool(fvalue.elts[1].value)
            fields[fkey.value] = required
        schemas[key.value] = fields
    return schemas or None


def _message_literal(
    node: ast.Dict,
) -> Optional[Tuple[str, List[str]]]:
    """``("hello", [fields...])`` for an all-constant message dict."""
    msg_type: Optional[str] = None
    fields: List[str] = []
    for key, value in zip(node.keys, node.values):
        if key is None:  # ``**spread`` — dynamically built, skip
            return None
        if not (isinstance(key, ast.Constant)
                and isinstance(key.value, str)):
            return None
        if key.value == "type":
            if not (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                return None
            msg_type = value.value
        else:
            fields.append(key.value)
    if msg_type is None:
        return None
    return msg_type, fields
