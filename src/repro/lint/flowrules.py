"""The flow-sensitive rule family (REP101–REP104).

These rules run over the whole lint run at once (see
:class:`repro.lint.diagnostics.FlowRule`), combining the
intra-procedural taint engine (:mod:`repro.lint.flow`) with the
cross-module call graph (:mod:`repro.lint.callgraph`):

* **REP101 latency-taint** — the flow-sensitive superset of REP002: a
  latency value (from ``PCMArray.write/copy/swap/read_with_latency``,
  ``MemoryController.write``, scheme ``remap`` hooks, *or any helper
  wrapper that returns one of those*) must reach an accumulator, a
  return, an escaping store or an explicit ``_ =`` discard on **every**
  normal path.  REP002 remains the syntactic fallback for bare-Expr
  discards of the named methods; REP101 covers aliases, branches and
  wrapper indirection.
* **REP102 rng-provenance** — a generator built outside
  ``repro.util.rng`` (no seed, or a hard-coded constant seed) must not
  flow into a stochastic component (``faults`` / ``wearlevel`` /
  ``attacks`` / ``traffic``).
* **REP103 campaign-determinism** — everything reachable from a
  ``register_task_kind`` target runs inside worker processes in
  parallel; module-level mutable state, shared module-level RNGs,
  module-level file handles and ``global`` rebinding make those
  attempts schedule-dependent.
* **REP104 wall-clock-taint** — host-clock values (``time.time`` and
  friends) must never flow into simulated-latency arithmetic, even in
  files that legitimately read the wall clock (the REP005 waivers in
  ``repro.campaign``).

See ``docs/lint.md`` ("Flow rules") for examples and suppression
guidance.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.callgraph import (
    FunctionInfo,
    LintProject,
    ModuleTable,
    StateKind,
    expand_dotted,
    find_task_registrations,
    local_imports,
)
from repro.lint.diagnostics import Diagnostic, FlowRule, register
from repro.lint.flow import PositionalHit, TaintSpec, TaintToken, analyze_function
from repro.lint.rules import WallClock, dotted_name, _identifier
from repro.lint.summaries import (
    LATENCY_FUNCTIONS,
    LATENCY_METHODS,
    STOCHASTIC_PARTS as _STOCHASTIC_PARTS,
    FunctionSummary,
    SummaryTable,
    fresh_rng_desc,
    is_latency_method_call,
    project_summaries,
    shown_callable as _shown_callable,
)

__all__ = [
    "LatencyTaint", "RngProvenance", "CampaignDeterminism",
    "WallClockTaint", "is_latency_method_call",
    "latency_returning_functions", "rep101_diagnostics",
]


def latency_returning_functions(project: LintProject) -> Set[str]:
    """Fully-qualified names of helpers that return a latency value.

    Backed by the interprocedural summary table (bottom-up over call
    graph SCCs, see :mod:`repro.lint.summaries`).
    """
    return {
        fq for fq, summary in project_summaries(project).items()
        if "latency" in summary.returns
    }


class _SummarySpec(TaintSpec):
    """Shared plumbing for summary-aware taint specs.

    Holds the resolution context (project/table/function) and
    implements :meth:`passthrough_params` from callee summaries, so a
    token passed through ``y = scale(lat)`` survives the call instead
    of being consumed by it.  ``summaries=None`` runs the spec in
    intra-procedural mode (the pre-summary behaviour) — used by the
    superset regression test and nothing else.
    """

    def __init__(
        self,
        project: LintProject,
        table: ModuleTable,
        info: FunctionInfo,
        summaries: Optional[SummaryTable],
    ) -> None:
        self.project = project
        self.table = table
        self.info = info
        self.summaries = summaries
        self.extra = local_imports(info.node)

    def _resolve(self, call: ast.Call) -> Optional[FunctionInfo]:
        return self.project.resolve_call(
            self.table, call, self.extra, self.info.class_name
        )

    def _callee_summary(
        self, call: ast.Call
    ) -> Tuple[Optional[FunctionInfo], Optional[FunctionSummary]]:
        if self.summaries is None:
            return None, None
        resolved = self._resolve(call)
        return resolved, self.summaries.for_function(resolved)

    def passthrough_params(
        self, call: ast.Call
    ) -> Optional[FrozenSet[int]]:
        resolved, summary = self._callee_summary(call)
        if summary is None or not summary.passthrough:
            return None
        offset = _self_offset(resolved)
        return frozenset(
            p - offset for p in summary.passthrough if p - offset >= 0
        )


def _self_offset(resolved: Optional[FunctionInfo]) -> int:
    """Caller arg position -> callee param index shift for methods."""
    if resolved is not None and resolved.class_name is not None:
        return 1
    return 0


# --------------------------------------------------------------- REP101


class _LatencySpec(_SummarySpec):
    """Taint spec: latency sources, everything-is-a-valid-use sinks."""

    def source(self, call: ast.Call) -> Optional[str]:
        if is_latency_method_call(call):
            return f"{_shown_callable(call)}()"
        resolved, summary = self._callee_summary(call)
        if (resolved is not None and summary is not None
                and "latency" in summary.returns):
            return f"{resolved.qualname}() [returns latency]"
        return None

    def skip_bare_expr_source(self, call: ast.Call) -> bool:
        """Bare-statement discards of the *named* methods stay REP002's
        (syntactic) findings; REP101 keeps wrapper discards."""
        return is_latency_method_call(call)


@register
class LatencyTaint(FlowRule):
    """Latency values must be consumed on every path.

    The write path's return value *is* the paper's timing side channel.
    REP002 already catches a bare ``controller.write(la, data)``
    statement; this rule follows the value after it is *assigned* —
    through aliases, branches and helper wrappers — and fires when any
    normal path to the end of the function drops it unconsumed.  Consume
    means: accumulate (``total += lat``), return, pass to a call, store
    into an object, branch on it, or discard explicitly (``_ = ...``).
    """

    code = "REP101"
    name = "latency-taint"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        yield from rep101_diagnostics(self, project, interprocedural=True)


def rep101_diagnostics(
    rule: FlowRule,
    project: LintProject,
    interprocedural: bool = True,
) -> Iterator[Diagnostic]:
    """REP101 findings; ``interprocedural=False`` disables summaries.

    The intra-procedural mode exists only so the regression suite can
    prove the summary-aware pass reports a *superset* of the old one.
    """
    summaries = project_summaries(project) if interprocedural else None
    for table in _sorted_tables(project):
        for info in _sorted_functions(table):
            spec = _LatencySpec(project, table, info, summaries)
            analysis = analyze_function(info.node, spec)
            for token in analysis.pending_at_exit:
                holder = (
                    f"assigned to '{token.first_holder}' "
                    if token.first_holder else "discarded unnamed "
                )
                yield rule.diagnostic(
                    table.module,
                    _at(token.site),
                    f"latency from {token.desc} {holder}in "
                    f"{info.qualname}() is dropped on some path; "
                    "accumulate it, return it, or discard explicitly "
                    "with '_ = ...'",
                )


# --------------------------------------------------------------- REP102


class _RngSpec(_SummarySpec):
    """Taint spec: fresh/hard-coded generators, stochastic-call sinks."""

    def source(self, call: ast.Call) -> Optional[str]:
        desc = fresh_rng_desc(call)
        if desc is not None:
            return desc
        resolved, summary = self._callee_summary(call)
        if (resolved is not None and summary is not None
                and "rng" in summary.returns):
            return f"{resolved.qualname}() [returns unseeded generator]"
        return None

    def on_call_pos(
        self,
        call: ast.Call,
        hits: Sequence[PositionalHit],
    ) -> Optional[str]:
        resolved = self._resolve(call)
        if self.summaries is not None:
            positions = self.summaries.rng_sink_positions(
                self.table, call, resolved, self.extra
            )
        else:
            positions = _intra_rng_sink_positions(
                self.table, call, resolved, self.extra
            )
        if positions is None:
            return None
        dotted = dotted_name(call.func)
        callee = (
            resolved.qualname if resolved is not None
            else dotted if dotted is not None else "<call>"
        )
        if isinstance(positions, str):
            token = hits[0].token
            return (
                f"generator from {token.desc} reaches stochastic "
                f"{callee}(); derive it from repro.util.rng "
                "(derive_seed / as_generator) so replays stay seeded"
            )
        hit = _match_positions(hits, positions, resolved)
        if hit is None:
            return None
        slot = f"'{hit.kw}'" if hit.kw is not None else f"#{hit.pos}"
        return (
            f"generator from {hit.token.desc} reaches a stochastic "
            f"component through {callee}() (argument {slot}); derive it "
            "from repro.util.rng (derive_seed / as_generator) so "
            "replays stay seeded"
        )


def _intra_rng_sink_positions(
    table: ModuleTable,
    call: ast.Call,
    resolved: Optional[FunctionInfo],
    extra: Dict[str, str],
) -> Optional[str]:
    """Pre-summary REP102 sink test: stochastic modules only."""
    if resolved is not None:
        if set(resolved.modname.split(".")) & _STOCHASTIC_PARTS:
            return "any"
        return None
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    expanded = expand_dotted(table, dotted, extra)
    if expanded != dotted and set(expanded.split(".")) & _STOCHASTIC_PARTS:
        return "any"
    return None


def _match_positions(
    hits: Sequence[PositionalHit],
    positions: FrozenSet[int],
    resolved: Optional[FunctionInfo],
) -> Optional[PositionalHit]:
    """First tainted argument landing on a summary-flagged parameter."""
    offset = _self_offset(resolved)
    params: List[str] = []
    if resolved is not None:
        args = getattr(resolved.node, "args", None)
        if args is not None:
            params = [a.arg for a in args.posonlyargs + args.args]
    for hit in hits:
        if hit.pos is not None and (hit.pos + offset) in positions:
            return hit
        if (hit.kw is not None and hit.kw in params
                and params.index(hit.kw) in positions):
            return hit
    return None


@register
class RngProvenance(FlowRule):
    """Generators reaching stochastic components must come from
    ``repro.util.rng``.

    Campaign replays rely on every stochastic component being seeded
    through ``derive_seed``/``as_generator``.  A ``default_rng()`` (or
    a hard-coded ``default_rng(1234)``) constructed locally and handed
    to a fault model, wear-leveler or attack silently severs a whole
    subtree of an experiment from its root seed.
    """

    code = "REP102"
    name = "rng-provenance"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        summaries = project_summaries(project)
        for table in _sorted_tables(project):
            if table.module.is_rng_module:
                continue
            for info in _sorted_functions(table):
                spec = _RngSpec(project, table, info, summaries)
                analysis = analyze_function(info.node, spec)
                for hit in analysis.sink_hits:
                    yield self.diagnostic(table.module, hit.node, hit.detail)


# --------------------------------------------------------------- REP103


@register
class CampaignDeterminism(FlowRule):
    """Campaign task functions must be schedule-independent.

    Everything reachable from a ``register_task_kind`` target executes
    inside worker processes, many attempts at once.  Module-level
    mutable state (even *reads* — another worker's import may have
    mutated it), shared module-level RNG streams, module-level open
    file handles and ``global`` rebinding all make the result of one
    attempt depend on what the scheduler ran before it, which is
    exactly what the campaign layer's derive-seed contract forbids.
    """

    code = "REP103"
    name = "campaign-determinism"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        registrations = find_task_registrations(project)
        roots: List[FunctionInfo] = []
        kind_of: Dict[str, str] = {}
        for table, call, kind, target in registrations:
            label = kind if kind is not None else "?"
            if target is None:
                yield self.diagnostic(
                    table.module, call,
                    f"task kind '{label}' is registered with a callable "
                    "that is not a module-level function; closures and "
                    "lambdas capture schedule-dependent state and do not "
                    "survive worker spawn",
                )
                continue
            roots.append(target)
            kind_of.setdefault(target.fq, label)
        if not roots:
            return
        reached = project.reachable(roots)
        seen: Set[Tuple[str, int, str]] = set()
        for fq in sorted(reached):
            info, path = reached[fq]
            table = project.by_path[info.module.rel_path]
            via = kind_of.get(path[0], "?")
            chain = " -> ".join(p.rsplit(".", 1)[-1] for p in path)
            for diag in self._check_function(
                    project, table, info, via, chain, seen):
                yield diag

    def _check_function(
        self,
        project: LintProject,
        table: ModuleTable,
        info: FunctionInfo,
        kind: str,
        chain: str,
        seen: Set[Tuple[str, int, str]],
    ) -> Iterator[Diagnostic]:
        bound = _locally_bound_names(info.node)
        extra = local_imports(info.node)
        declared_global: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                for name in node.names:
                    key = (table.module.rel_path, node.lineno, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.diagnostic(
                        table.module, node,
                        f"campaign task '{kind}' rebinds module-level "
                        f"'{name}' via 'global' (reached via {chain}); "
                        "worker attempts become schedule-dependent",
                    )
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Name):
                continue
            name = node.id
            if name in bound and name not in declared_global:
                continue
            state = self._lookup_state(project, table, name, extra)
            if state is None or state[1] is StateKind.OTHER:
                continue
            owner, kind_found = state
            key = (table.module.rel_path, node.lineno, name)
            if key in seen:
                continue
            seen.add(key)
            what = {
                StateKind.MUTABLE: "module-level mutable state",
                StateKind.RNG: "a shared module-level RNG",
                StateKind.FILE: "a module-level open file handle",
            }[kind_found]
            yield self.diagnostic(
                table.module, node,
                f"campaign task '{kind}' touches {what} "
                f"'{name}' (defined in {owner}; reached via {chain}); "
                "parallel attempts become schedule-dependent — pass the "
                "state through params/seed instead",
            )

    def _lookup_state(
        self,
        project: LintProject,
        table: ModuleTable,
        name: str,
        extra: Dict[str, str],
    ) -> Optional[Tuple[str, StateKind]]:
        return lookup_module_state(project, table, name, extra)


def lookup_module_state(
    project: LintProject,
    table: ModuleTable,
    name: str,
    extra: Dict[str, str],
) -> Optional[Tuple[str, StateKind]]:
    """Resolve ``name`` to classified module-level state, if it is any.

    Checks the module's own state first, then chases one import hop to
    the owning module (``from repro.x import STATE``).  Returns the
    owner's module name and the state's :class:`StateKind`.
    """
    local = table.state.get(name)
    if local is not None:
        return table.modname, local.kind
    target = extra.get(name) or table.imports.get(name)
    if target is None or "." not in target:
        return None
    modname, symbol = target.rsplit(".", 1)
    owner = project.tables.get(modname)
    if owner is None:
        return None
    remote = owner.state.get(symbol)
    if remote is None:
        return None
    return owner.modname, remote.kind


def _locally_bound_names(fn: ast.AST) -> Set[str]:
    """Every name bound inside ``fn`` (params, assignments, loop and
    ``with`` targets, except-clauses, nested defs, local imports)."""
    bound: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            bound.update(a.arg for a in group)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass
    return bound


# --------------------------------------------------------------- REP104


_WALL_CLOCK_LEAVES = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns"}
)


def _is_sim_latency_name(name: Optional[str]) -> bool:
    """Names that denote *simulated* time (not host durations)."""
    if name is None:
        return False
    lowered = name.lower()
    return (
        "latency" in lowered
        or lowered.endswith("_ns")
        or lowered == "ns"
        or "elapsed_ns" in lowered
        or "simulated" in lowered
    )


class _WallClockSpec(_SummarySpec):
    """Taint spec: host-clock sources, simulated-latency sinks."""

    def source(self, call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is not None:
            if dotted in WallClock._BANNED_DOTTED:
                return f"{dotted}()"
            expanded = expand_dotted(self.table, dotted, self.extra)
            if expanded != dotted:
                if expanded in WallClock._BANNED_DOTTED:
                    return f"{dotted}()"
                if ("." not in dotted and expanded.startswith("time.")
                        and expanded.split(".")[-1] in _WALL_CLOCK_LEAVES):
                    return f"{dotted}()"
        resolved, summary = self._callee_summary(call)
        if (resolved is not None and summary is not None
                and summary.returns & {"wallclock", "monotonic"}):
            return f"{resolved.qualname}() [returns host-clock value]"
        return None

    def on_bind(
        self, name: str, tokens: Sequence[TaintToken], node: ast.AST
    ) -> Optional[str]:
        if not _is_sim_latency_name(name):
            return None
        return (
            f"wall-clock value from {tokens[0].desc} flows into "
            f"simulated-latency name '{name}'; simulated time must come "
            "from elapsed_ns, never the host clock"
        )

    def on_binop(
        self,
        binop: ast.BinOp,
        tokens: Sequence[TaintToken],
        other: ast.AST,
    ) -> Optional[str]:
        if not _is_sim_latency_name(_identifier(other)):
            return None
        return (
            f"wall-clock value from {tokens[0].desc} mixed into "
            f"arithmetic with simulated-latency "
            f"'{_identifier(other)}'; host time and simulated time "
            "must never meet"
        )


@register
class WallClockTaint(FlowRule):
    """Host-clock values must never reach simulated-latency arithmetic.

    REP005 bans wall-clock reads in simulator code wholesale, but the
    campaign/progress layers legitimately waive it for host-side
    throughput accounting.  This rule guards the boundary those waivers
    open: a ``time.perf_counter()`` value that flows into a
    ``*latency*`` / ``*_ns`` computation corrupts the side channel no
    matter which file it happens in.
    """

    code = "REP104"
    name = "wall-clock-taint"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        summaries = project_summaries(project)
        for table in _sorted_tables(project):
            for info in _sorted_functions(table):
                spec = _WallClockSpec(project, table, info, summaries)
                analysis = analyze_function(info.node, spec)
                for hit in analysis.sink_hits:
                    yield self.diagnostic(table.module, hit.node, hit.detail)


# --------------------------------------------------------------- shared


def _sorted_tables(project: LintProject) -> List[ModuleTable]:
    return [project.tables[name] for name in sorted(project.tables)]


def _sorted_functions(table: ModuleTable) -> List[FunctionInfo]:
    infos = list(table.functions.values())
    infos.sort(key=lambda i: (i.node.lineno, i.qualname))  # type: ignore[attr-defined]
    return infos


class _Anchor:
    """Minimal AST-node stand-in carrying a location."""

    def __init__(self, line: int, col: int) -> None:
        self.lineno = line
        self.col_offset = col


def _at(site: Tuple[int, int]) -> ast.AST:
    anchor = _Anchor(site[0], site[1])
    return anchor  # type: ignore[return-value]
