"""The flow-sensitive rule family (REP101–REP104).

These rules run over the whole lint run at once (see
:class:`repro.lint.diagnostics.FlowRule`), combining the
intra-procedural taint engine (:mod:`repro.lint.flow`) with the
cross-module call graph (:mod:`repro.lint.callgraph`):

* **REP101 latency-taint** — the flow-sensitive superset of REP002: a
  latency value (from ``PCMArray.write/copy/swap/read_with_latency``,
  ``MemoryController.write``, scheme ``remap`` hooks, *or any helper
  wrapper that returns one of those*) must reach an accumulator, a
  return, an escaping store or an explicit ``_ =`` discard on **every**
  normal path.  REP002 remains the syntactic fallback for bare-Expr
  discards of the named methods; REP101 covers aliases, branches and
  wrapper indirection.
* **REP102 rng-provenance** — a generator built outside
  ``repro.util.rng`` (no seed, or a hard-coded constant seed) must not
  flow into a stochastic component (``faults`` / ``wearlevel`` /
  ``attacks``).
* **REP103 campaign-determinism** — everything reachable from a
  ``register_task_kind`` target runs inside worker processes in
  parallel; module-level mutable state, shared module-level RNGs,
  module-level file handles and ``global`` rebinding make those
  attempts schedule-dependent.
* **REP104 wall-clock-taint** — host-clock values (``time.time`` and
  friends) must never flow into simulated-latency arithmetic, even in
  files that legitimately read the wall clock (the REP005 waivers in
  ``repro.campaign``).

See ``docs/lint.md`` ("Flow rules") for examples and suppression
guidance.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    FunctionInfo,
    LintProject,
    ModuleTable,
    StateKind,
    find_task_registrations,
    local_imports,
)
from repro.lint.diagnostics import Diagnostic, FlowRule, register
from repro.lint.flow import TaintSpec, TaintToken, analyze_function
from repro.lint.rules import DiscardedLatency, WallClock, dotted_name, _identifier

#: Methods whose return value is a latency (REP002's list).
LATENCY_METHODS = DiscardedLatency._LATENCY_METHODS
#: Module-level latency-carrying functions (bare-name calls count too).
LATENCY_FUNCTIONS = DiscardedLatency._LATENCY_FUNCTIONS
_FILELIKE = DiscardedLatency._FILELIKE

#: ``copy``/``swap`` exist on dicts, lists and ndarrays too; only treat
#: them as latency sources on receivers that look like memory devices.
_AMBIGUOUS_METHODS = frozenset({"copy", "swap"})
_PCM_RECEIVERS = ("array", "controller", "oracle", "pcm", "mem")


def is_latency_method_call(call: ast.Call) -> bool:
    """Syntactic test: does this call return a latency by convention?"""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in LATENCY_FUNCTIONS
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in LATENCY_FUNCTIONS:
        return True
    if func.attr not in LATENCY_METHODS:
        return False
    receiver = _identifier(func.value)
    if receiver is not None:
        lowered = receiver.lower().lstrip("_")
        if lowered in _FILELIKE:
            return False
        if func.attr in _AMBIGUOUS_METHODS:
            return any(part in lowered for part in _PCM_RECEIVERS)
    return True


def _shown_callable(call: ast.Call) -> str:
    """Human-readable name of a latency call (Name or Attribute form)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    assert isinstance(func, ast.Attribute)
    receiver = _identifier(func.value)
    return f"{receiver}.{func.attr}" if receiver else func.attr


def latency_returning_functions(project: LintProject) -> Set[str]:
    """Fixpoint: fully-qualified names of helpers that return latency.

    A function returns latency when some ``return`` expression contains
    a latency-method call, a call to an already-known wrapper, or a
    name assigned from either anywhere in the function body.
    """
    known: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for table in project.tables.values():
            for info in table.functions.values():
                if info.fq in known:
                    continue
                if _returns_latency(project, table, info, known):
                    known.add(info.fq)
                    changed = True
    return known


def _call_is_latency(
    project: LintProject,
    table: ModuleTable,
    info: FunctionInfo,
    call: ast.Call,
    known: Set[str],
    extra: Dict[str, str],
) -> bool:
    if is_latency_method_call(call):
        return True
    resolved = project.resolve_call(table, call, extra, info.class_name)
    return resolved is not None and resolved.fq in known


def _returns_latency(
    project: LintProject,
    table: ModuleTable,
    info: FunctionInfo,
    known: Set[str],
) -> bool:
    extra = local_imports(info.node)
    tainted: Set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_is_latency(project, table, info, node.value, known,
                                extra):
                tainted.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Call) and _call_is_latency(
                    project, table, info, sub, known, extra):
                return True
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
    return False


# --------------------------------------------------------------- REP101


class _LatencySpec(TaintSpec):
    """Taint spec: latency sources, everything-is-a-valid-use sinks."""

    def __init__(
        self,
        project: LintProject,
        table: ModuleTable,
        info: FunctionInfo,
        wrappers: Set[str],
    ) -> None:
        self.project = project
        self.table = table
        self.info = info
        self.wrappers = wrappers
        self.extra = local_imports(info.node)

    def source(self, call: ast.Call) -> Optional[str]:
        if is_latency_method_call(call):
            return f"{_shown_callable(call)}()"
        resolved = self.project.resolve_call(
            self.table, call, self.extra, self.info.class_name
        )
        if resolved is not None and resolved.fq in self.wrappers:
            return f"{resolved.qualname}() [returns latency]"
        return None

    def skip_bare_expr_source(self, call: ast.Call) -> bool:
        """Bare-statement discards of the *named* methods stay REP002's
        (syntactic) findings; REP101 keeps wrapper discards."""
        return is_latency_method_call(call)


@register
class LatencyTaint(FlowRule):
    """Latency values must be consumed on every path.

    The write path's return value *is* the paper's timing side channel.
    REP002 already catches a bare ``controller.write(la, data)``
    statement; this rule follows the value after it is *assigned* —
    through aliases, branches and helper wrappers — and fires when any
    normal path to the end of the function drops it unconsumed.  Consume
    means: accumulate (``total += lat``), return, pass to a call, store
    into an object, branch on it, or discard explicitly (``_ = ...``).
    """

    code = "REP101"
    name = "latency-taint"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        wrappers = latency_returning_functions(project)
        for table in _sorted_tables(project):
            for info in _sorted_functions(table):
                spec = _LatencySpec(project, table, info, wrappers)
                analysis = analyze_function(info.node, spec)
                for token in analysis.pending_at_exit:
                    holder = (
                        f"assigned to '{token.first_holder}' "
                        if token.first_holder else "discarded unnamed "
                    )
                    yield self.diagnostic(
                        table.module,
                        _at(token.site),
                        f"latency from {token.desc} {holder}in "
                        f"{info.qualname}() is dropped on some path; "
                        "accumulate it, return it, or discard explicitly "
                        "with '_ = ...'",
                    )


# --------------------------------------------------------------- REP102


_STOCHASTIC_PARTS = frozenset({"faults", "wearlevel", "attacks"})
_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Generator"})


class _RngSpec(TaintSpec):
    """Taint spec: fresh/hard-coded generators, stochastic-call sinks."""

    def __init__(
        self, project: LintProject, table: ModuleTable, info: FunctionInfo
    ) -> None:
        self.project = project
        self.table = table
        self.info = info
        self.extra = local_imports(info.node)

    def source(self, call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        leaf = dotted.split(".")[-1]
        if leaf not in _RNG_CONSTRUCTORS:
            return None
        if leaf == "Generator" and not dotted.startswith(
                ("np.random", "numpy.random")):
            return None
        args = list(call.args) + [kw.value for kw in call.keywords]
        if args and not all(isinstance(a, ast.Constant) for a in args):
            # Seeded from a variable (a threaded seed, derive_seed(...),
            # a Generator): provenance flows from the caller — blessed.
            return None
        detail = "no seed" if not args else "hard-coded seed"
        return f"{dotted}() [{detail}]"

    def on_call_arg(
        self,
        call: ast.Call,
        tokens: Sequence[TaintToken],
        node: ast.AST,
    ) -> Optional[str]:
        resolved = self.project.resolve_call(
            self.table, call, self.extra, self.info.class_name
        )
        if resolved is not None:
            parts = set(resolved.modname.split("."))
            callee = resolved.qualname
        else:
            # Callee not in the linted tree: fall back to the import
            # path the name came from, so partial trees still check.
            dotted = dotted_name(call.func)
            if dotted is None:
                return None
            head, _, _ = dotted.partition(".")
            target = self.extra.get(head) or self.table.imports.get(head)
            if target is None:
                return None
            parts = set(target.split("."))
            callee = dotted
        if not parts & _STOCHASTIC_PARTS:
            return None
        return (
            f"generator from {tokens[0].desc} reaches stochastic "
            f"{callee}(); derive it from repro.util.rng "
            "(derive_seed / as_generator) so replays stay seeded"
        )


@register
class RngProvenance(FlowRule):
    """Generators reaching stochastic components must come from
    ``repro.util.rng``.

    Campaign replays rely on every stochastic component being seeded
    through ``derive_seed``/``as_generator``.  A ``default_rng()`` (or
    a hard-coded ``default_rng(1234)``) constructed locally and handed
    to a fault model, wear-leveler or attack silently severs a whole
    subtree of an experiment from its root seed.
    """

    code = "REP102"
    name = "rng-provenance"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for table in _sorted_tables(project):
            if table.module.is_rng_module:
                continue
            for info in _sorted_functions(table):
                spec = _RngSpec(project, table, info)
                analysis = analyze_function(info.node, spec)
                for hit in analysis.sink_hits:
                    yield self.diagnostic(table.module, hit.node, hit.detail)


# --------------------------------------------------------------- REP103


@register
class CampaignDeterminism(FlowRule):
    """Campaign task functions must be schedule-independent.

    Everything reachable from a ``register_task_kind`` target executes
    inside worker processes, many attempts at once.  Module-level
    mutable state (even *reads* — another worker's import may have
    mutated it), shared module-level RNG streams, module-level open
    file handles and ``global`` rebinding all make the result of one
    attempt depend on what the scheduler ran before it, which is
    exactly what the campaign layer's derive-seed contract forbids.
    """

    code = "REP103"
    name = "campaign-determinism"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        registrations = find_task_registrations(project)
        roots: List[FunctionInfo] = []
        kind_of: Dict[str, str] = {}
        for table, call, kind, target in registrations:
            label = kind if kind is not None else "?"
            if target is None:
                yield self.diagnostic(
                    table.module, call,
                    f"task kind '{label}' is registered with a callable "
                    "that is not a module-level function; closures and "
                    "lambdas capture schedule-dependent state and do not "
                    "survive worker spawn",
                )
                continue
            roots.append(target)
            kind_of.setdefault(target.fq, label)
        if not roots:
            return
        reached = project.reachable(roots)
        seen: Set[Tuple[str, int, str]] = set()
        for fq in sorted(reached):
            info, path = reached[fq]
            table = project.by_path[info.module.rel_path]
            via = kind_of.get(path[0], "?")
            chain = " -> ".join(p.rsplit(".", 1)[-1] for p in path)
            for diag in self._check_function(
                    project, table, info, via, chain, seen):
                yield diag

    def _check_function(
        self,
        project: LintProject,
        table: ModuleTable,
        info: FunctionInfo,
        kind: str,
        chain: str,
        seen: Set[Tuple[str, int, str]],
    ) -> Iterator[Diagnostic]:
        bound = _locally_bound_names(info.node)
        extra = local_imports(info.node)
        declared_global: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                for name in node.names:
                    key = (table.module.rel_path, node.lineno, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.diagnostic(
                        table.module, node,
                        f"campaign task '{kind}' rebinds module-level "
                        f"'{name}' via 'global' (reached via {chain}); "
                        "worker attempts become schedule-dependent",
                    )
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Name):
                continue
            name = node.id
            if name in bound and name not in declared_global:
                continue
            state = self._lookup_state(project, table, name, extra)
            if state is None or state[1] is StateKind.OTHER:
                continue
            owner, kind_found = state
            key = (table.module.rel_path, node.lineno, name)
            if key in seen:
                continue
            seen.add(key)
            what = {
                StateKind.MUTABLE: "module-level mutable state",
                StateKind.RNG: "a shared module-level RNG",
                StateKind.FILE: "a module-level open file handle",
            }[kind_found]
            yield self.diagnostic(
                table.module, node,
                f"campaign task '{kind}' touches {what} "
                f"'{name}' (defined in {owner}; reached via {chain}); "
                "parallel attempts become schedule-dependent — pass the "
                "state through params/seed instead",
            )

    def _lookup_state(
        self,
        project: LintProject,
        table: ModuleTable,
        name: str,
        extra: Dict[str, str],
    ) -> Optional[Tuple[str, StateKind]]:
        local = table.state.get(name)
        if local is not None:
            return table.modname, local.kind
        target = extra.get(name) or table.imports.get(name)
        if target is None or "." not in target:
            return None
        modname, symbol = target.rsplit(".", 1)
        owner = project.tables.get(modname)
        if owner is None:
            return None
        remote = owner.state.get(symbol)
        if remote is None:
            return None
        return owner.modname, remote.kind


def _locally_bound_names(fn: ast.AST) -> Set[str]:
    """Every name bound inside ``fn`` (params, assignments, loop and
    ``with`` targets, except-clauses, nested defs, local imports)."""
    bound: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            bound.update(a.arg for a in group)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass
    return bound


# --------------------------------------------------------------- REP104


_WALL_CLOCK_LEAVES = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns"}
)


def _is_sim_latency_name(name: Optional[str]) -> bool:
    """Names that denote *simulated* time (not host durations)."""
    if name is None:
        return False
    lowered = name.lower()
    return (
        "latency" in lowered
        or lowered.endswith("_ns")
        or lowered == "ns"
        or "elapsed_ns" in lowered
        or "simulated" in lowered
    )


class _WallClockSpec(TaintSpec):
    """Taint spec: host-clock sources, simulated-latency sinks."""

    def __init__(self, table: ModuleTable, info: FunctionInfo) -> None:
        self.table = table
        self.info = info
        self.extra = local_imports(info.node)

    def source(self, call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        if dotted in WallClock._BANNED_DOTTED:
            return f"{dotted}()"
        parts = dotted.split(".")
        alias = self.extra.get(parts[0]) or self.table.imports.get(parts[0])
        if alias is not None:
            expanded = ".".join([alias] + parts[1:])
            if expanded in WallClock._BANNED_DOTTED:
                return f"{dotted}()"
            if (len(parts) == 1 and expanded.startswith("time.")
                    and expanded.split(".")[-1] in _WALL_CLOCK_LEAVES):
                return f"{dotted}()"
        return None

    def on_bind(
        self, name: str, tokens: Sequence[TaintToken], node: ast.AST
    ) -> Optional[str]:
        if not _is_sim_latency_name(name):
            return None
        return (
            f"wall-clock value from {tokens[0].desc} flows into "
            f"simulated-latency name '{name}'; simulated time must come "
            "from elapsed_ns, never the host clock"
        )

    def on_binop(
        self,
        binop: ast.BinOp,
        tokens: Sequence[TaintToken],
        other: ast.AST,
    ) -> Optional[str]:
        if not _is_sim_latency_name(_identifier(other)):
            return None
        return (
            f"wall-clock value from {tokens[0].desc} mixed into "
            f"arithmetic with simulated-latency "
            f"'{_identifier(other)}'; host time and simulated time "
            "must never meet"
        )


@register
class WallClockTaint(FlowRule):
    """Host-clock values must never reach simulated-latency arithmetic.

    REP005 bans wall-clock reads in simulator code wholesale, but the
    campaign/progress layers legitimately waive it for host-side
    throughput accounting.  This rule guards the boundary those waivers
    open: a ``time.perf_counter()`` value that flows into a
    ``*latency*`` / ``*_ns`` computation corrupts the side channel no
    matter which file it happens in.
    """

    code = "REP104"
    name = "wall-clock-taint"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for table in _sorted_tables(project):
            for info in _sorted_functions(table):
                spec = _WallClockSpec(table, info)
                analysis = analyze_function(info.node, spec)
                for hit in analysis.sink_hits:
                    yield self.diagnostic(table.module, hit.node, hit.detail)


# --------------------------------------------------------------- shared


def _sorted_tables(project: LintProject) -> List[ModuleTable]:
    return [project.tables[name] for name in sorted(project.tables)]


def _sorted_functions(table: ModuleTable) -> List[FunctionInfo]:
    infos = list(table.functions.values())
    infos.sort(key=lambda i: (i.node.lineno, i.qualname))  # type: ignore[attr-defined]
    return infos


class _Anchor:
    """Minimal AST-node stand-in carrying a location."""

    def __init__(self, line: int, col: int) -> None:
        self.lineno = line
        self.col_offset = col


def _at(site: Tuple[int, int]) -> ast.AST:
    anchor = _Anchor(site[0], site[1])
    return anchor  # type: ignore[return-value]
