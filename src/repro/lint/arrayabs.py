"""Array-abstraction layer: numpy dtype / shape-class / alias tracking.

The vectorized hot paths (``PCMArray.write_many``, the batched scheme
API, the round-based simulators) lean on three numpy properties the
rest of reprolint cannot see:

* **dtype width** — wear and write-count accumulators must be
  ``int64``: at paper scale (1 GB device, endurance E=10**8) a 32-bit
  counter silently wraps (REP301), and float32 latency sums lose
  integer precision past 2**24 ns (REP303);
* **scalar vs array shape class** — ``wear[idx] += 1`` is a silent
  lost-update when ``idx`` is an array with duplicate entries; only
  ``np.add.at`` accumulates per occurrence (REP302);
* **view/alias provenance** — ``np.asarray`` and basic slicing return
  views, so writes through the result mutate the source.

This module computes, per function, a flow-insensitive abstract
environment mapping variable names (and ``self.attr`` paths) to
:class:`ArrayValue` facts, seeded from the numpy constructor calls
(``np.zeros/empty/asarray/ascontiguousarray`` dtype kwargs and
friends).  Facts cross function boundaries two ways, both riding the
PR-7 interprocedural machinery:

* :func:`array_summaries` runs a bottom-up fixpoint over every
  statically-known function and records the abstract value of its
  return expression(s), so ``w = make_wear_map(n)`` sees the dtype
  chosen inside the helper;
* pure passthrough helpers (``FunctionSummary.passthrough`` from
  :mod:`repro.lint.summaries`) propagate the abstract value of the
  passed-through argument.

The lattice is deliberately shallow: a joined disagreement drops to
"unknown" rather than tracking unions, and every rule built on top
only *fires* on known facts — unresolved values stay silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.lint.callgraph import (
    FunctionInfo,
    LintProject,
    ModuleTable,
    local_imports,
)
from repro.lint.rules import dotted_name
from repro.lint.summaries import SummaryTable, project_summaries, walk_own

__all__ = [
    "ArrayValue", "UNKNOWN", "join", "int_max", "is_narrow_int",
    "is_narrow_float", "dtype_from_expr", "build_env", "array_summaries",
    "key_for",
]

#: Integer dtype -> bit width (signed and unsigned kept separate so
#: ``int_max`` is exact).
INT_WIDTHS: Dict[str, int] = {
    "int8": 8, "int16": 16, "int32": 32, "int64": 64,
    "uint8": 8, "uint16": 16, "uint32": 32, "uint64": 64,
    "intp": 64, "uintp": 64,
}
FLOAT_WIDTHS: Dict[str, int] = {"float16": 16, "float32": 32, "float64": 64}

NARROW_INT: FrozenSet[str] = frozenset(
    d for d, w in INT_WIDTHS.items() if w < 64
)
NARROW_FLOAT: FrozenSet[str] = frozenset({"float16", "float32"})

_DTYPE_NAMES: FrozenSet[str] = (
    frozenset(INT_WIDTHS) | frozenset(FLOAT_WIDTHS) | frozenset({"bool"})
)

_NUMPY_HEADS = frozenset({"np", "numpy"})


def int_max(dtype: str) -> Optional[int]:
    """Largest value representable by an integer ``dtype`` (else None)."""
    width = INT_WIDTHS.get(dtype)
    if width is None:
        return None
    if dtype.startswith("u"):
        return 2 ** width - 1
    return 2 ** (width - 1) - 1


def is_narrow_int(dtype: Optional[str]) -> bool:
    return dtype in NARROW_INT


def is_narrow_float(dtype: Optional[str]) -> bool:
    return dtype in NARROW_FLOAT


@dataclass(frozen=True)
class ArrayValue:
    """Abstract facts about one value.

    ``dtype`` is a numpy dtype name or None (unknown); ``kind`` is the
    shape class (``array``/``scalar``/``set``/``dict``/``slice``/
    ``unknown``); ``unique`` means *proven duplicate-free* (an
    ``np.arange``/``np.unique``/``np.argsort`` result, a slice...), the
    property REP302 needs before allowing fancy-index ``+=``; ``bases``
    is view/alias provenance — the names this value may share memory
    with.
    """

    dtype: Optional[str] = None
    kind: str = "unknown"
    unique: bool = False
    bases: FrozenSet[str] = frozenset()

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_scalar(self) -> bool:
        return self.kind == "scalar"


UNKNOWN = ArrayValue()
_SCALAR = ArrayValue(kind="scalar")
_ARRAY = ArrayValue(kind="array")


def join(a: Optional[ArrayValue], b: Optional[ArrayValue]) -> ArrayValue:
    """Least upper bound: disagreement widens to unknown."""
    if a is None:
        return b if b is not None else UNKNOWN
    if b is None:
        return a
    return ArrayValue(
        dtype=a.dtype if a.dtype == b.dtype else None,
        kind=a.kind if a.kind == b.kind else "unknown",
        unique=a.unique and b.unique,
        bases=a.bases | b.bases,
    )


def dtype_from_expr(node: Optional[ast.expr]) -> Optional[str]:
    """Parse a ``dtype=`` argument: ``np.int32``, ``"int32"``, ``bool``,
    ``int``/``float`` (numpy maps the builtins to the 64-bit kinds on
    every platform this repo targets)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _DTYPE_NAMES else None
    dotted = dotted_name(node)
    if dotted is None:
        return None
    leaf = dotted.split(".")[-1]
    if leaf in _DTYPE_NAMES:
        return leaf
    if leaf == "int":
        return "int64"
    if leaf == "float":
        return "float64"
    return None


def key_for(node: ast.expr) -> Optional[str]:
    """Environment key of an assignable expression (``x``, ``self.x``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        return dotted
    return None


def _kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _dtype_arg(call: ast.Call, pos: Optional[int] = None) -> Optional[str]:
    """The ``dtype`` of a constructor call (kwarg, or positional ``pos``)."""
    node = _kwarg(call, "dtype")
    if node is None and pos is not None and len(call.args) > pos:
        node = call.args[pos]
    return dtype_from_expr(node)


def _binop_dtype(
    left: ArrayValue, right: ArrayValue
) -> Optional[str]:
    """Result dtype of an arithmetic combination, when decidable.

    Matching known dtypes keep it; a known numpy operand combined with
    a plain Python scalar keeps the numpy dtype (numpy value-based
    casting); everything else is unknown.
    """
    if left.dtype is not None and left.dtype == right.dtype:
        return left.dtype
    if left.dtype is not None and right.dtype is None and right.is_scalar:
        return left.dtype
    if right.dtype is not None and left.dtype is None and left.is_scalar:
        return right.dtype
    return None


#: Numpy array constructors handled by :func:`_numpy_call_value`, with
#: their default dtype when the ``dtype`` kwarg is absent.
_FRESH_DEFAULTS: Dict[str, Optional[str]] = {
    "zeros": "float64", "ones": "float64", "empty": "float64",
    "full": "float64", "linspace": "float64",
}

#: ``np.f(x)`` calls whose result carries ``x``'s dtype.
_DTYPE_OF_ARG: FrozenSet[str] = frozenset({
    "zeros_like", "ones_like", "empty_like", "full_like",
    "cumsum", "sort", "ravel", "copy", "abs",
})

#: ``np.f(x)`` results that may alias ``x`` (views or conditional
#: no-copies).
_VIEWISH: FrozenSet[str] = frozenset({
    "asarray", "ascontiguousarray", "asfortranarray", "ravel",
})

_ITER_HAZARD_KINDS: FrozenSet[str] = frozenset({"set", "dict"})


class EnvBuilder:
    """Builds abstract environments for the functions of one project.

    ``project``/``summaries``/``array_sums`` give the interprocedural
    view; any of them may be None, dropping back to intra-procedural
    facts (used by the syntactic REP305 and by unit tests).
    """

    def __init__(
        self,
        project: Optional[LintProject] = None,
        table: Optional[ModuleTable] = None,
        info: Optional[FunctionInfo] = None,
        summaries: Optional[SummaryTable] = None,
        array_sums: Optional[Dict[str, ArrayValue]] = None,
    ) -> None:
        self.project = project
        self.table = table
        self.info = info
        self.summaries = summaries
        self.array_sums = array_sums
        self.extra = local_imports(info.node) if info is not None else {}

    # -- expression evaluation ---------------------------------------

    def eval(self, node: ast.expr, env: Dict[str, ArrayValue]) -> ArrayValue:
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            key = key_for(node)
            if key is not None and key in env:
                return env[key]
            return UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return ArrayValue(dtype="bool", kind="scalar")
            if isinstance(node.value, (int, float)):
                return _SCALAR
            return UNKNOWN
        if isinstance(node, (ast.Set, ast.SetComp)):
            return ArrayValue(kind="set")
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return ArrayValue(kind="dict")
        if isinstance(node, ast.Call):
            return self._call_value(node, env)
        if isinstance(node, ast.Subscript):
            return self._subscript_value(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            kind = "array" if "array" in (left.kind, right.kind) else (
                "scalar" if left.is_scalar and right.is_scalar else "unknown"
            )
            return ArrayValue(dtype=_binop_dtype(left, right), kind=kind)
        if isinstance(node, ast.Compare):
            left = self.eval(node.left, env)
            kind = left.kind if left.kind in ("array", "scalar") else "unknown"
            return ArrayValue(dtype="bool", kind=kind)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, ast.Slice):
            return ArrayValue(kind="slice", unique=True)
        return UNKNOWN

    def _subscript_value(
        self, node: ast.Subscript, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        base = self.eval(node.value, env)
        index = node.slice
        base_key = key_for(node.value)
        base_names = frozenset([base_key] if base_key else []) | base.bases
        if isinstance(index, ast.Slice):
            # Basic slicing returns a view sharing the base's memory;
            # a slice of a duplicate-free index array stays so.
            return ArrayValue(base.dtype, base.kind, base.unique, base_names)
        idx = self.eval(index, env)
        if idx.is_scalar or isinstance(index, ast.Constant):
            return ArrayValue(base.dtype, "scalar", False, frozenset())
        if idx.is_array:
            # Fancy indexing copies; uniqueness of the *values* is lost.
            return ArrayValue(base.dtype, "array", False, frozenset())
        return ArrayValue(base.dtype, "unknown", False, base_names)

    def _call_value(
        self, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        dotted = dotted_name(call.func)
        if dotted is not None:
            parts = dotted.split(".")
            head, leaf = parts[0], parts[-1]
            if head in _NUMPY_HEADS and len(parts) >= 2:
                return self._numpy_call_value(call, leaf, env)
            if len(parts) == 1:
                builtin = self._builtin_value(call, leaf, env)
                if builtin is not None:
                    return builtin
        if isinstance(call.func, ast.Attribute):
            method = self._method_value(call, call.func, env)
            if method is not None:
                return method
        return self._resolved_value(call, env)

    def _numpy_call_value(
        self, call: ast.Call, leaf: str, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        arg0 = self.eval(call.args[0], env) if call.args else UNKNOWN
        arg0_key = key_for(call.args[0]) if call.args else None
        if leaf in _FRESH_DEFAULTS:
            dtype = _dtype_arg(call) or _FRESH_DEFAULTS[leaf]
            return ArrayValue(dtype, "array")
        if leaf == "arange":
            return ArrayValue(_dtype_arg(call) or "int64", "array",
                              unique=True)
        if leaf in ("array", "asarray", "ascontiguousarray",
                    "asfortranarray"):
            dtype = _dtype_arg(call) or arg0.dtype
            bases: FrozenSet[str] = frozenset()
            if leaf in _VIEWISH:
                bases = (frozenset([arg0_key] if arg0_key else [])
                         | arg0.bases)
            return ArrayValue(dtype, "array", arg0.unique, bases)
        if leaf == "fromiter":
            return ArrayValue(_dtype_arg(call, pos=1), "array")
        if leaf in _DTYPE_OF_ARG:
            dtype = _dtype_arg(call) or arg0.dtype
            unique = arg0.unique and leaf in ("sort", "copy")
            bases = ((frozenset([arg0_key] if arg0_key else [])
                      | arg0.bases) if leaf == "ravel" else frozenset())
            return ArrayValue(dtype, "array", unique, bases)
        if leaf == "unique":
            return ArrayValue(arg0.dtype, "array", unique=True)
        if leaf in ("argsort", "flatnonzero", "searchsorted"):
            return ArrayValue("int64", "array",
                              unique=leaf != "searchsorted")
        if leaf == "bincount":
            return ArrayValue("int64", "array")
        if leaf in ("sum", "min", "max", "prod", "dot"):
            return ArrayValue(arg0.dtype, "scalar")
        if leaf == "mean":
            return ArrayValue("float64", "scalar")
        if leaf in INT_WIDTHS or leaf in FLOAT_WIDTHS or leaf == "bool_":
            return ArrayValue(leaf.rstrip("_"), "scalar")
        if leaf in ("concatenate", "stack", "hstack", "vstack", "where",
                    "repeat", "tile", "clip", "minimum", "maximum"):
            return _ARRAY
        return UNKNOWN

    def _builtin_value(
        self, call: ast.Call, leaf: str, env: Dict[str, ArrayValue]
    ) -> Optional[ArrayValue]:
        arg0 = self.eval(call.args[0], env) if call.args else UNKNOWN
        if leaf in ("set", "frozenset"):
            return ArrayValue(kind="set")
        if leaf == "dict":
            return ArrayValue(kind="dict")
        if leaf == "list":
            # list(s) of a set/dict preserves the nondeterministic
            # iteration order — keep the hazard kind for REP305.
            if arg0.kind in _ITER_HAZARD_KINDS:
                return arg0
            return UNKNOWN
        if leaf == "sorted":
            return ArrayValue(unique=arg0.unique)
        if leaf in ("int", "float", "len", "round", "abs", "bool"):
            return _SCALAR
        if leaf == "range":
            return ArrayValue("int64", "unknown", unique=True)
        return None

    def _method_value(
        self, call: ast.Call, func: ast.Attribute, env: Dict[str, ArrayValue]
    ) -> Optional[ArrayValue]:
        recv = self.eval(func.value, env)
        attr = func.attr
        if attr == "astype":
            dtype = _dtype_arg(call, pos=0)
            return ArrayValue(dtype, "array", recv.unique)
        if attr == "copy":
            return ArrayValue(recv.dtype, recv.kind, recv.unique)
        if attr in ("sum", "min", "max", "item", "prod"):
            return ArrayValue(recv.dtype, "scalar")
        if attr in ("any", "all"):
            return ArrayValue("bool", "scalar")
        if attr == "mean":
            return ArrayValue("float64", "scalar")
        if attr == "argsort":
            return ArrayValue("int64", "array", unique=True)
        if attr in ("keys", "values", "items"):
            if recv.kind == "dict" or recv.kind == "unknown":
                return ArrayValue(kind="dict")
        if attr in ("reshape", "view"):
            key = key_for(func.value)
            bases = frozenset([key] if key else []) | recv.bases
            return ArrayValue(recv.dtype, "array", recv.unique, bases)
        return None

    def _resolved_value(
        self, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        """Interprocedural lookup: return summary, else passthrough."""
        if self.project is None or self.table is None:
            return UNKNOWN
        class_name = self.info.class_name if self.info is not None else None
        resolved = self.project.resolve_call(
            self.table, call, self.extra, class_name
        )
        if resolved is None:
            return UNKNOWN
        if self.array_sums is not None:
            summary = self.array_sums.get(resolved.fq)
            if summary is not None and summary != UNKNOWN:
                return summary
        if self.summaries is not None:
            fn_summary = self.summaries.for_function(resolved)
            if fn_summary is not None and fn_summary.passthrough:
                offset = 1 if resolved.class_name is not None else 0
                passed = [
                    self.eval(call.args[p - offset], env)
                    for p in fn_summary.passthrough
                    if 0 <= p - offset < len(call.args)
                ]
                if passed:
                    value = passed[0]
                    for extra in passed[1:]:
                        value = join(value, extra)
                    return value
        return UNKNOWN

    # -- environment construction ------------------------------------

    def env_for(self, fn: ast.AST) -> Dict[str, ArrayValue]:
        """Flow-insensitive abstract environment of one function.

        Rebinding joins (so a name holding int32 on one branch and
        int64 on the other reads as unknown dtype); a short fixpoint
        propagates through assignment chains.
        """
        env: Dict[str, ArrayValue] = {}
        self._seed_params(fn, env)
        for _ in range(4):
            changed = False
            assigned: Dict[str, ArrayValue] = {}
            for node in walk_own(fn):
                for key, value in self._bindings(node, env):
                    if key in assigned:
                        assigned[key] = join(assigned[key], value)
                    else:
                        assigned[key] = value
            for key, value in assigned.items():
                if env.get(key) != value:
                    env[key] = value
                    changed = True
            if not changed:
                break
        return env

    def _seed_params(self, fn: ast.AST, env: Dict[str, ArrayValue]) -> None:
        args = getattr(fn, "args", None)
        if args is None:
            return
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            ann = dotted_name(arg.annotation)
            if ann is None:
                continue
            leaf = ann.split(".")[-1]
            if leaf == "ndarray":
                env[arg.arg] = _ARRAY
            elif leaf in ("int", "float"):
                env[arg.arg] = _SCALAR
            elif leaf == "slice":
                env[arg.arg] = ArrayValue(kind="slice", unique=True)

    def _bindings(
        self, node: ast.AST, env: Dict[str, ArrayValue]
    ) -> List[Tuple[str, ArrayValue]]:
        out: List[Tuple[str, ArrayValue]] = []
        if isinstance(node, ast.Assign):
            value = self.eval(node.value, env)
            for target in node.targets:
                key = key_for(target)
                if key is not None:
                    out.append((key, value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            key = key_for(node.target)
            if key is not None:
                out.append((key, self.eval(node.value, env)))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            key = key_for(node.target)
            if key is not None:
                out.append((key, UNKNOWN))
        return out


def _return_value(
    builder: EnvBuilder, fn: ast.AST
) -> ArrayValue:
    env = builder.env_for(fn)
    value: Optional[ArrayValue] = None
    seen = False
    for node in walk_own(fn):
        if isinstance(node, ast.Return):
            seen = True
            if node.value is None:
                value = join(value, UNKNOWN)
            else:
                value = join(value, builder.eval(node.value, env))
    if not seen or value is None:
        return UNKNOWN
    # Provenance names are meaningless outside the defining frame.
    if value.bases:
        value = ArrayValue(value.dtype, value.kind, value.unique)
    return value


def array_summaries(project: LintProject) -> Dict[str, ArrayValue]:
    """Abstract return values of every statically-known function.

    Computed as a whole-project fixpoint (bounded — abstraction chains
    in this repo are short) and memoised on the project.
    """
    cached = project.array_summary_cache
    if isinstance(cached, dict):
        return cached
    summaries = project_summaries(project)
    result: Dict[str, ArrayValue] = {}
    infos: List[Tuple[ModuleTable, FunctionInfo]] = []
    for modname in sorted(project.tables):
        table = project.tables[modname]
        for qual in sorted(table.functions):
            infos.append((table, table.functions[qual]))
    for _ in range(4):
        changed = False
        for table, info in infos:
            builder = EnvBuilder(project, table, info, summaries, result)
            value = _return_value(builder, info.node)
            if result.get(info.fq, UNKNOWN) != value:
                result[info.fq] = value
                changed = True
        if not changed:
            break
    project.array_summary_cache = result
    return result


def build_env(
    project: LintProject, table: ModuleTable, info: FunctionInfo
) -> Dict[str, ArrayValue]:
    """Abstract environment of one project function (interprocedural)."""
    builder = EnvBuilder(
        project, table, info,
        project_summaries(project), array_summaries(project),
    )
    return builder.env_for(info.node)
