"""``python -m repro.lint`` entry point."""

import sys

from repro.lint.runner import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
