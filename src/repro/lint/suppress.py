"""Inline suppression comments for reprolint.

Two forms, mirroring pylint's pragmas:

* ``# reprolint: disable=REP001`` — suppress the named rule(s) on the
  physical line carrying the comment (comma-separate several codes, or
  use ``all``).  When the comment stands alone on its line, it covers
  the *next* line instead — use this for statements too long to carry a
  trailing comment.  Trailing prose after the codes is allowed and
  encouraged: state *why* the violation is intentional.
* ``# reprolint: disable-file=REP002`` — suppress the rule(s) for the
  whole file; place it anywhere (conventionally in the module docstring
  region).

Comments are located with :mod:`tokenize` so ``#`` characters inside
string literals cannot masquerade as pragmas.

Every pragma is tracked individually (:class:`PragmaEntry`), recording
which of its codes actually shielded a diagnostic during a run — that
is what ``--check-suppressions`` reads to report stale pragmas that no
longer suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Sentinel meaning "every rule".
ALL_CODES = "all"


@dataclass
class PragmaEntry:
    """One ``# reprolint: disable[-file]=...`` comment in one file."""

    #: line the pragma comment itself sits on (diagnostic anchor).
    pragma_line: int
    #: line the pragma shields, or ``None`` for a file-wide pragma.
    target: Optional[int]
    codes: FrozenSet[str]
    #: codes (or :data:`ALL_CODES`) that suppressed at least one
    #: diagnostic during the run.
    used: Set[str] = field(default_factory=set)

    def matches_line(self, line: int) -> bool:
        return self.target is None or self.target == line

    def stale_codes(self) -> List[str]:
        """The codes this pragma names that shielded nothing."""
        if ALL_CODES in self.codes:
            return [] if self.used else [ALL_CODES]
        return sorted(self.codes - self.used)


@dataclass
class SuppressionMap:
    """Which rule codes are suppressed where, for one source file."""

    entries: List[PragmaEntry] = field(default_factory=list)

    @property
    def by_line(self) -> Dict[int, Set[str]]:
        """line -> codes disabled there (compat view over entries)."""
        view: Dict[int, Set[str]] = {}
        for entry in self.entries:
            if entry.target is not None:
                view.setdefault(entry.target, set()).update(entry.codes)
        return view

    @property
    def file_wide(self) -> Set[str]:
        """Codes disabled for the entire file (compat view)."""
        wide: Set[str] = set()
        for entry in self.entries:
            if entry.target is None:
                wide.update(entry.codes)
        return wide

    def is_suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is disabled at ``line``; marks usage."""
        hit = False
        for entry in self.entries:
            if not entry.matches_line(line):
                continue
            if ALL_CODES in entry.codes:
                entry.used.add(ALL_CODES)
                hit = True
            elif code in entry.codes:
                entry.used.add(code)
                hit = True
        return hit

    def iter_stale(self) -> Iterator[Tuple[PragmaEntry, str]]:
        """``(entry, code)`` pairs that suppressed nothing this run."""
        for entry in self.entries:
            for code in entry.stale_codes():
                yield entry, code


def _comments(source: str) -> List[Tuple[int, int, str]]:
    """``(line, col, comment_text)`` triples, via tokenize (regex fallback)."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Damaged file: fall back to a crude per-line scan so pragmas
        # still work while the syntax error itself gets reported.
        return [
            (idx, line.index("#"), line[line.index("#"):])
            for idx, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract every reprolint pragma from ``source``."""
    smap = SuppressionMap()
    lines = source.splitlines()
    for line, col, comment in _comments(source):
        match = _PRAGMA.search(comment)
        if match is None:
            continue
        codes: FrozenSet[str] = frozenset(
            ALL_CODES if code.strip().lower() == ALL_CODES
            else code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if match.group("kind") == "disable-file":
            smap.entries.append(PragmaEntry(line, None, codes))
            continue
        # A standalone pragma (nothing but whitespace before the ``#``)
        # shields the statement on the following line.
        text_before = lines[line - 1][:col] if line - 1 < len(lines) else ""
        target = line + 1 if not text_before.strip() else line
        smap.entries.append(PragmaEntry(line, target, codes))
    return smap
