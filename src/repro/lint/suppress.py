"""Inline suppression comments for reprolint.

Two forms, mirroring pylint's pragmas:

* ``# reprolint: disable=REP001`` — suppress the named rule(s) on the
  physical line carrying the comment (comma-separate several codes, or
  use ``all``).  When the comment stands alone on its line, it covers
  the *next* line instead — use this for statements too long to carry a
  trailing comment.  Trailing prose after the codes is allowed and
  encouraged: state *why* the violation is intentional.
* ``# reprolint: disable-file=REP002`` — suppress the rule(s) for the
  whole file; place it anywhere (conventionally in the module docstring
  region).

Comments are located with :mod:`tokenize` so ``#`` characters inside
string literals cannot masquerade as pragmas.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Sentinel meaning "every rule".
ALL_CODES = "all"


@dataclass
class SuppressionMap:
    """Which rule codes are suppressed where, for one source file."""

    #: line number -> codes disabled on that line (``ALL_CODES`` = any).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: codes disabled for the entire file.
    file_wide: Set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is disabled at ``line``."""
        if ALL_CODES in self.file_wide or code in self.file_wide:
            return True
        active = self.by_line.get(line)
        if active is None:
            return False
        return ALL_CODES in active or code in active


def _comments(source: str) -> List[Tuple[int, int, str]]:
    """``(line, col, comment_text)`` triples, via tokenize (regex fallback)."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Damaged file: fall back to a crude per-line scan so pragmas
        # still work while the syntax error itself gets reported.
        return [
            (idx, line.index("#"), line[line.index("#"):])
            for idx, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract every reprolint pragma from ``source``."""
    smap = SuppressionMap()
    lines = source.splitlines()
    for line, col, comment in _comments(source):
        match = _PRAGMA.search(comment)
        if match is None:
            continue
        codes: FrozenSet[str] = frozenset(
            ALL_CODES if code.strip().lower() == ALL_CODES
            else code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if match.group("kind") == "disable-file":
            smap.file_wide.update(codes)
            continue
        # A standalone pragma (nothing but whitespace before the ``#``)
        # shields the statement on the following line.
        text_before = lines[line - 1][:col] if line - 1 < len(lines) else ""
        target = line + 1 if not text_before.strip() else line
        smap.by_line.setdefault(target, set()).update(codes)
    return smap
