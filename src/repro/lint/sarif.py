"""SARIF 2.1.0 output for reprolint (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests; emitting it lets the CI lint job
surface reprolint findings as inline pull-request annotations.  Only
the small, stable core of the spec is produced: one ``run`` with the
tool's rule metadata and one ``result`` per diagnostic.

The JSON is rendered with sorted keys and a fixed indent so repeated
runs over an unchanged tree are byte-identical (the same stability
contract the text and JSON formats keep).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.diagnostics import Diagnostic, Rule, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


#: Anchor base for per-rule documentation (docs/lint.md section
#: anchors); lets code scanning link each finding to its rule docs.
_HELP_BASE = "https://github.com/docs/lint.md"


def _rule_entry(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        "helpUri": f"{_HELP_BASE}#{rule.code.lower()}-{rule.name}",
    }


def _result_entry(diag: Diagnostic) -> Dict[str, object]:
    return {
        "ruleId": diag.code,
        "level": _LEVELS.get(diag.severity, "error"),
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": diag.line,
                        "startColumn": diag.col,
                    },
                }
            }
        ],
    }


def to_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Sequence[Rule],
    tool_version: str = "1.0.0",
) -> Dict[str, object]:
    """Build the SARIF document as a JSON-able dict."""
    driver: Dict[str, object] = {
        "name": "reprolint",
        "informationUri": "https://github.com/",
        "version": tool_version,
        "rules": [_rule_entry(rule)
                  for rule in sorted(rules, key=lambda r: r.code)],
    }
    results: List[Dict[str, object]] = [
        _result_entry(diag) for diag in diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Sequence[Rule],
    tool_version: str = "1.0.0",
) -> str:
    """The SARIF document as a deterministic JSON string."""
    return json.dumps(
        to_sarif(diagnostics, rules, tool_version),
        indent=2,
        sort_keys=True,
    )
