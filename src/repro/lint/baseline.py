"""Warn-only baselines: land a new rule family, ratchet it to zero.

A baseline file records the diagnostics a tree is *known* to produce,
keyed by ``path|code|message`` with an occurrence count (line numbers
are deliberately excluded — inserting a line above a known finding must
not break the build).  ``--baseline check`` then reports only findings
**not** in the baseline, so a new rule family can merge while its
existing findings are paid down incrementally.

The ratchet has teeth in both directions: a baseline entry that no
longer matches anything is reported as *stale* and fails the check, so
the file can only ever shrink — fixed findings cannot silently regress
back in under an over-broad baseline.

Format (JSON, stable ordering)::

    {"format": 1, "entries": {"src/x.py|REP201|msg...": 2, ...}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic

_FORMAT = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or has the wrong format."""


def baseline_key(diag: Diagnostic) -> str:
    """Stable identity of a finding: location-insensitive on purpose."""
    return f"{diag.path}|{diag.code}|{diag.message}"


def write_baseline(
    diagnostics: Sequence[Diagnostic], path: Path
) -> int:
    """Record ``diagnostics`` as the accepted baseline; returns count."""
    entries: Dict[str, int] = {}
    for diag in diagnostics:
        key = baseline_key(diag)
        entries[key] = entries.get(key, 0) + 1
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"format": _FORMAT, "entries": dict(sorted(entries.items()))}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def load_baseline(path: Path) -> Dict[str, int]:
    """Load a baseline written by :func:`write_baseline`."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}")
    if (not isinstance(payload, dict)
            or payload.get("format") != _FORMAT
            or not isinstance(payload.get("entries"), dict)):
        raise BaselineError(
            f"{path} is not a format-{_FORMAT} reprolint baseline"
        )
    entries: Dict[str, int] = {}
    for key, count in payload["entries"].items():
        if not isinstance(key, str) or not isinstance(count, int):
            raise BaselineError(f"{path}: malformed entry {key!r}")
        entries[key] = count
    return entries


def apply_baseline(
    diagnostics: Sequence[Diagnostic], entries: Dict[str, int]
) -> Tuple[List[Diagnostic], List[str]]:
    """Split findings against a baseline.

    Returns ``(new, stale)``: diagnostics not covered by the baseline
    (each key covers up to its recorded count), and baseline keys whose
    findings no longer occur at all — fixed findings that must now be
    removed from the file so they cannot regress.
    """
    remaining = dict(entries)
    new: List[Diagnostic] = []
    for diag in sorted(diagnostics):
        key = baseline_key(diag)
        budget = remaining.get(key, 0)
        if budget > 0:
            remaining[key] = budget - 1
        else:
            new.append(diag)
    stale = sorted(
        key for key, count in remaining.items()
        if count == entries.get(key)  # never matched even once
    )
    return new, stale
