"""Interprocedural function summaries for the flow rules.

The intra-procedural taint engine (:mod:`repro.lint.flow`) stops at
call boundaries: ``lat = helper(...)`` is opaque unless something knows
what ``helper`` does with and to its values.  This module computes one
:class:`FunctionSummary` per statically-known function, bottom-up over
the strongly connected components of the project call graph, so the
REP1xx/REP2xx rules can ask:

* **returns** — which taint dimensions the return value carries
  (``latency``, ``rng``, ``wallclock``, ``monotonic``);
* **passthrough** — which positional parameters flow *unmodified* to a
  return (``def scaled(lat): return lat * 2``), so a caller's taint
  token survives the call instead of being consumed by it;
* **rng_sink_params** — which parameters reach a stochastic component
  (directly or through further calls), the interprocedural half of
  REP102;
* **blocking** — a description of the first blocking call (sleep,
  subprocess, fsync, sync socket work) the function can reach without
  leaving synchronous code, for REP201.

SCC order makes the analysis one pass for acyclic call graphs; inside a
cycle the member summaries are iterated to a fixpoint (the dimensions
are finite sets and ``blocking`` is first-wins, so iteration always
terminates).  Unresolvable calls (methods on arbitrary objects,
builtins, callables passed as values) contribute nothing — the
summaries are deliberately a *may* under-approximation that never
guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.callgraph import (
    FunctionInfo,
    LintProject,
    ModuleTable,
    expand_dotted,
    local_imports,
)
from repro.lint.rules import DiscardedLatency, dotted_name, _identifier

# --------------------------------------------------------- call classing

#: Methods whose return value is a latency (REP002's list).
LATENCY_METHODS = DiscardedLatency._LATENCY_METHODS
#: Module-level latency-carrying functions (bare-name calls count too).
LATENCY_FUNCTIONS = DiscardedLatency._LATENCY_FUNCTIONS
_FILELIKE = DiscardedLatency._FILELIKE

#: ``copy``/``swap`` exist on dicts, lists and ndarrays too; only treat
#: them as latency sources on receivers that look like memory devices.
_AMBIGUOUS_METHODS = frozenset({"copy", "swap"})
_PCM_RECEIVERS = ("array", "controller", "oracle", "pcm", "mem")

#: Module-path components that mark a stochastic component (REP102).
STOCHASTIC_PARTS = frozenset({"faults", "wearlevel", "attacks", "traffic"})

_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Generator"})

#: Host-clock reads split by domain (REP204): values from the two sets
#: live on unrelated axes and must never meet arithmetically.
WALL_CLOCK_DOTTED = frozenset(
    {"time.time", "time.time_ns",
     "datetime.now", "datetime.utcnow", "datetime.today",
     "datetime.datetime.now", "datetime.datetime.utcnow",
     "datetime.datetime.today", "datetime.date.today", "date.today"}
)
MONOTONIC_DOTTED = frozenset(
    {"time.monotonic", "time.monotonic_ns", "time.perf_counter",
     "time.perf_counter_ns", "time.process_time",
     "time.process_time_ns"}
)

#: Calls that block the calling thread (REP201).  Exact dotted names
#: after alias expansion, plus whole-module prefixes.
BLOCKING_DOTTED = frozenset(
    {"time.sleep", "os.system", "os.fsync", "os.fdatasync",
     "os.wait", "os.waitpid", "os.wait3", "os.wait4",
     "socket.socket", "socket.create_connection",
     "socket.getaddrinfo", "socket.gethostbyname"}
)
BLOCKING_PREFIXES = ("subprocess.",)


def is_latency_method_call(call: ast.Call) -> bool:
    """Syntactic test: does this call return a latency by convention?"""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in LATENCY_FUNCTIONS
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in LATENCY_FUNCTIONS:
        return True
    if func.attr not in LATENCY_METHODS:
        return False
    receiver = _identifier(func.value)
    if receiver is not None:
        lowered = receiver.lower().lstrip("_")
        if lowered in _FILELIKE:
            return False
        if func.attr in _AMBIGUOUS_METHODS:
            return any(part in lowered for part in _PCM_RECEIVERS)
    return True


def shown_callable(call: ast.Call) -> str:
    """Human-readable name of a call (Name or Attribute form)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        receiver = _identifier(func.value)
        return f"{receiver}.{func.attr}" if receiver else func.attr
    return "<call>"


def fresh_rng_desc(call: ast.Call) -> Optional[str]:
    """Describe a generator constructed with no seed or a constant seed."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    leaf = dotted.split(".")[-1]
    if leaf not in _RNG_CONSTRUCTORS:
        return None
    if leaf == "Generator" and not dotted.startswith(
            ("np.random", "numpy.random")):
        return None
    args = list(call.args) + [kw.value for kw in call.keywords]
    if args and not all(isinstance(a, ast.Constant) for a in args):
        # Seeded from a variable (a threaded seed, derive_seed(...), a
        # Generator): provenance flows from the caller — blessed.
        return None
    detail = "no seed" if not args else "hard-coded seed"
    return f"{dotted}() [{detail}]"


def classify_clock_call(
    table: ModuleTable,
    call: ast.Call,
    extra: Optional[Dict[str, str]] = None,
) -> Optional[str]:
    """``"wallclock"`` / ``"monotonic"`` for host-clock reads, else None."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    for candidate in (dotted, expand_dotted(table, dotted, extra)):
        if candidate in WALL_CLOCK_DOTTED:
            return "wallclock"
        if candidate in MONOTONIC_DOTTED:
            return "monotonic"
    return None


def blocking_call_desc(
    table: ModuleTable,
    call: ast.Call,
    extra: Optional[Dict[str, str]] = None,
) -> Optional[str]:
    """Describe a directly blocking call (``time.sleep``, fsync, ...)."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    expanded = expand_dotted(table, dotted, extra)
    for candidate in (dotted, expanded):
        if candidate in BLOCKING_DOTTED:
            return f"{dotted}()"
        if candidate.startswith(BLOCKING_PREFIXES):
            return f"{dotted}()"
    return None


def walk_own(fn: ast.AST, include_self: bool = False) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas.

    A nested function's body runs when *it* is called, not when the
    enclosing function is — blocking calls and fork sites inside it
    must not be attributed to the outer frame.
    """
    if include_self:
        yield fn
    queue: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while queue:
        node = queue.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


# ------------------------------------------------------------- summaries


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural facts about one statically-known function."""

    fq: str
    #: Taint dimensions carried by the return value
    #: (``latency`` / ``rng`` / ``wallclock`` / ``monotonic``).
    returns: FrozenSet[str]
    #: Positional parameter indices (including ``self`` at 0 for
    #: methods) that flow unmodified to a return expression and are
    #: used nowhere else.
    passthrough: FrozenSet[int]
    #: Positional parameter indices that reach a stochastic component.
    rng_sink_params: FrozenSet[int]
    #: Description of the first blocking call reachable without leaving
    #: synchronous code; ``None`` when the function never blocks.
    blocking: Optional[str]
    is_async: bool


_EMPTY: FrozenSet[str] = frozenset()
_EMPTY_IDX: FrozenSet[int] = frozenset()


def _positional_params(fn: ast.AST) -> List[str]:
    args = getattr(fn, "args", None)
    if args is None:
        return []
    return [a.arg for a in args.posonlyargs + args.args]


def _tarjan_sccs(
    nodes: Sequence[str], edges: Dict[str, List[str]]
) -> List[List[str]]:
    """Strongly connected components, emitted callees-before-callers."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child = work[-1]
            if child == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = edges.get(node, [])
            descended = False
            while child < len(succs):
                succ = succs[child]
                child += 1
                if succ not in index:
                    work[-1] = (node, child)
                    work.append((succ, 0))
                    descended = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if descended:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


class SummaryTable:
    """All function summaries of one :class:`LintProject`."""

    def __init__(self, project: LintProject) -> None:
        self.project = project
        self._summaries: Dict[str, FunctionSummary] = {}
        self._infos: Dict[str, FunctionInfo] = {}
        self._extra: Dict[str, Dict[str, str]] = {}
        self._build()

    # -- lookup ------------------------------------------------------

    def get(self, fq: str) -> Optional[FunctionSummary]:
        return self._summaries.get(fq)

    def for_function(
        self, info: Optional[FunctionInfo]
    ) -> Optional[FunctionSummary]:
        if info is None:
            return None
        return self._summaries.get(info.fq)

    def items(self) -> List[Tuple[str, FunctionSummary]]:
        return sorted(self._summaries.items())

    # -- construction ------------------------------------------------

    def _build(self) -> None:
        for table in self.project.tables.values():
            for info in table.functions.values():
                self._infos[info.fq] = info
        edges: Dict[str, List[str]] = {}
        for fq in sorted(self._infos):
            info = self._infos[fq]
            callees: Set[str] = set()
            for _, resolved in self.project.iter_calls(info):
                if resolved is not None and resolved.fq in self._infos:
                    callees.add(resolved.fq)
            edges[fq] = sorted(callees)
        for scc in _tarjan_sccs(sorted(self._infos), edges):
            changed = True
            while changed:
                changed = False
                for fq in scc:
                    summary = self._compute(self._infos[fq])
                    if self._summaries.get(fq) != summary:
                        self._summaries[fq] = summary
                        changed = True

    def _local_imports(self, info: FunctionInfo) -> Dict[str, str]:
        cached = self._extra.get(info.fq)
        if cached is None:
            cached = local_imports(info.node)
            self._extra[info.fq] = cached
        return cached

    def _compute(self, info: FunctionInfo) -> FunctionSummary:
        table = self.project.by_path[info.module.rel_path]
        extra = self._local_imports(info)
        is_async = isinstance(info.node, ast.AsyncFunctionDef)
        previous = self._summaries.get(info.fq)
        blocking = previous.blocking if previous is not None else None
        if blocking is None and not is_async:
            blocking = self._find_blocking(info, table, extra)
        return FunctionSummary(
            fq=info.fq,
            returns=self._return_dims(info, table, extra),
            passthrough=self._passthrough_params(info),
            rng_sink_params=self._rng_sinks(info, table, extra),
            blocking=blocking,
            is_async=is_async,
        )

    # -- returns -----------------------------------------------------

    def call_dims(
        self,
        table: ModuleTable,
        info: FunctionInfo,
        call: ast.Call,
        extra: Dict[str, str],
    ) -> FrozenSet[str]:
        """Taint dimensions of one call's return value."""
        dims: Set[str] = set()
        if is_latency_method_call(call):
            dims.add("latency")
        if fresh_rng_desc(call) is not None:
            dims.add("rng")
        clock = classify_clock_call(table, call, extra)
        if clock is not None:
            dims.add(clock)
        resolved = self.project.resolve_call(
            table, call, extra, info.class_name
        )
        if resolved is not None:
            summary = self._summaries.get(resolved.fq)
            if summary is not None:
                dims |= summary.returns
        return frozenset(dims)

    def _return_dims(
        self,
        info: FunctionInfo,
        table: ModuleTable,
        extra: Dict[str, str],
    ) -> FrozenSet[str]:
        tainted: Dict[str, Set[str]] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                dims = self.call_dims(table, info, node.value, extra)
                if dims:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.setdefault(
                                target.id, set()).update(dims)
        returned: Set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    returned |= self.call_dims(table, info, sub, extra)
                elif isinstance(sub, ast.Name):
                    returned |= tainted.get(sub.id, set())
        return frozenset(returned)

    # -- passthrough -------------------------------------------------

    def _passthrough_params(self, info: FunctionInfo) -> FrozenSet[int]:
        params = _positional_params(info.node)
        through: Set[int] = set()
        for idx, name in enumerate(params):
            if name in ("self", "cls"):
                continue
            if _is_pure_passthrough(info.node, name):
                through.add(idx)
        return frozenset(through)

    # -- rng sinks ---------------------------------------------------

    def _rng_sinks(
        self,
        info: FunctionInfo,
        table: ModuleTable,
        extra: Dict[str, str],
    ) -> FrozenSet[int]:
        params = _positional_params(info.node)
        index_of = {name: i for i, name in enumerate(params)}
        if not index_of:
            return _EMPTY_IDX
        sinks: Set[int] = set()
        for call, resolved in self.project.iter_calls(info):
            positions = self.rng_sink_positions(table, call, resolved, extra)
            if positions is None:
                continue
            any_position = isinstance(positions, str)
            position_set = (
                positions if isinstance(positions, frozenset)
                else frozenset()
            )
            offset = _callee_self_offset(resolved)
            callee_params = (
                _positional_params(resolved.node)
                if resolved is not None else []
            )
            for i, arg in enumerate(call.args):
                if not isinstance(arg, ast.Name) or arg.id not in index_of:
                    continue
                if any_position or (i + offset) in position_set:
                    sinks.add(index_of[arg.id])
            for kw in call.keywords:
                if (not isinstance(kw.value, ast.Name)
                        or kw.value.id not in index_of):
                    continue
                if any_position:
                    sinks.add(index_of[kw.value.id])
                elif kw.arg is not None and kw.arg in callee_params:
                    if callee_params.index(kw.arg) in position_set:
                        sinks.add(index_of[kw.value.id])
        return frozenset(sinks)

    def rng_sink_positions(
        self,
        table: ModuleTable,
        call: ast.Call,
        resolved: Optional[FunctionInfo],
        extra: Dict[str, str],
    ) -> Union[None, str, FrozenSet[int]]:
        """Is this call an RNG sink — and on which callee params?

        Returns ``None`` (not a sink), the string ``"any"`` (a call
        into a stochastic module: every argument position counts), or a
        frozenset of callee parameter indices (an interprocedural sink
        through the callee's own summary).
        """
        if resolved is not None:
            if set(resolved.modname.split(".")) & STOCHASTIC_PARTS:
                return "any"
            summary = self._summaries.get(resolved.fq)
            if summary is not None and summary.rng_sink_params:
                return summary.rng_sink_params
            return None
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        expanded = expand_dotted(table, dotted, extra)
        if expanded != dotted and set(expanded.split(".")) & STOCHASTIC_PARTS:
            # Callee not in the linted tree: classify by the import path
            # the name came from, so partial trees still check.
            return "any"
        return None

    # -- blocking ----------------------------------------------------

    def _find_blocking(
        self,
        info: FunctionInfo,
        table: ModuleTable,
        extra: Dict[str, str],
    ) -> Optional[str]:
        candidates: List[Tuple[int, int, str]] = []
        for node in walk_own(info.node):
            if not isinstance(node, ast.Call):
                continue
            direct = blocking_call_desc(table, node, extra)
            if direct is not None:
                candidates.append((node.lineno, node.col_offset, direct))
                continue
            resolved = self.project.resolve_call(
                table, node, extra, info.class_name
            )
            if resolved is None:
                continue
            summary = self._summaries.get(resolved.fq)
            if summary is None or summary.is_async:
                continue
            if summary.blocking is not None:
                desc = f"{shown_callable(node)}() -> {summary.blocking}"
                candidates.append((node.lineno, node.col_offset, desc))
        if not candidates:
            return None
        return min(candidates)[2]


def _is_pure_passthrough(fn: ast.AST, param: str) -> bool:
    """True when ``param`` (and its aliases) only flow to a return."""
    aliases: Set[str] = {param}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases
                    and node.targets[0].id not in aliases):
                aliases.add(node.targets[0].id)
                changed = True
    allowed_loads: Set[int] = set()
    allowed_stores: Set[int] = set()
    returned = False
    for node in ast.walk(fn):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases):
            allowed_loads.add(id(node.value))
            allowed_stores.add(id(node.targets[0]))
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id in aliases:
                    allowed_loads.add(id(sub))
                    returned = True
    for node in ast.walk(fn):
        if not isinstance(node, ast.Name) or node.id not in aliases:
            continue
        if isinstance(node.ctx, ast.Load):
            if id(node) not in allowed_loads:
                return False
        elif id(node) not in allowed_stores:
            return False
    return returned


def _callee_self_offset(resolved: Optional[FunctionInfo]) -> int:
    """Caller arg index -> callee param index shift (``self`` binding)."""
    if resolved is not None and resolved.class_name is not None:
        return 1
    return 0


def project_summaries(project: LintProject) -> SummaryTable:
    """The (memoised) summary table of one lint project."""
    cached = project.summary_cache
    if isinstance(cached, SummaryTable):
        return cached
    built = SummaryTable(project)
    project.summary_cache = built
    return built
