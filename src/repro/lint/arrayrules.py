"""The numpy array-safety rule family (REP301/REP302/REP303/REP305).

Built on the array-abstraction layer (:mod:`repro.lint.arrayabs`):
per-variable dtype / shape-class / alias facts, seeded from numpy
constructor calls and propagated through the interprocedural
summaries.  The address-domain family (REP304/REP306) lives in
:mod:`repro.lint.domains`.

* **REP301 narrow-accumulator** — wear/write-count state must be
  ``int64``.  At paper scale a 1 GB device with endurance E=10**8
  takes ~8·10**8 writes per line before failure and >10**13 writes
  device-wide; ``int32`` wraps at 2.1·10**9, ``int16`` at 32767.
  Also flags narrow integer values meeting constants their dtype
  cannot represent.
* **REP302 duplicate-index accumulation** — ``arr[idx] += k`` applies
  each duplicate index *once* (numpy fancy-index stores collapse);
  address arrays routinely carry duplicates (two writes to one line
  in a chunk), so accumulation must go through ``np.add.at`` unless
  the index is provably duplicate-free.
* **REP303 silent-downcast** — latency (``*_ns``) and wear arithmetic
  must not pass through ``float32``/``float16``: integer nanosecond
  counts lose exactness above 2**24 and wear counts above 2**24
  writes, quietly skewing lifetime results.
* **REP305 nondeterministic-array** — arrays built by iterating a
  ``set``/``dict``, by the legacy ``np.random.*`` global generator,
  or by an unstable sort of address/group keys are not reproducible
  run-to-run; the simulator's bit-identical-results contract (REP103,
  the campaign determinism audit) extends to array construction.

See ``docs/lint.md`` ("The array rules") for the full rationale and
fix patterns.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.arrayabs import (
    INT_WIDTHS,
    NARROW_FLOAT,
    NARROW_INT,
    ArrayValue,
    EnvBuilder,
    array_summaries,
    int_max,
    key_for,
)
from repro.lint.callgraph import FunctionInfo, LintProject, ModuleTable
from repro.lint.diagnostics import (
    Diagnostic,
    FlowRule,
    LintModule,
    Rule,
    register,
)
from repro.lint.rules import dotted_name
from repro.lint.summaries import project_summaries, walk_own

__all__ = [
    "NarrowAccumulator", "DuplicateIndexAccumulation", "SilentDowncast",
    "NondeterministicArray",
]

#: Accumulator names that must be 64-bit (leaf of the assigned name).
_WEAR_NAME = re.compile(r"(^|_)(wear|write_?counts?|writes|endurance)")
#: Latency/wear names whose arithmetic must stay wide.
_LATENCY_NAME = re.compile(
    r"(_ns$|^ns_|(^|_)lat(ency)?(_|$)|(^|_)wear)"
)
#: Plural address-array spellings (REP302's possibly-duplicate set).
_ADDRESS_PLURAL = re.compile(r"(^|_)(las|pas|ias|addrs|idxs|indices)$")
#: Address/group key names whose sort order must be tie-stable.
_SORT_KEY = re.compile(r"(^|_)(la|ia|pa|addr|group|key)s?\d*$")

_NUMPY_HEADS = frozenset({"np", "numpy"})

#: ``np.random.<leaf>`` legacy global-generator calls REP305 flags.
_LEGACY_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "permutation", "shuffle", "standard_normal",
    "bytes", "seed",
})

#: numpy calls that materialise their first argument into an array.
_ARRAY_SINKS = frozenset({
    "array", "asarray", "ascontiguousarray", "asfortranarray",
    "fromiter", "sort", "concatenate", "stack", "hstack", "vstack",
})


def _leaf(key: str) -> str:
    return key.split(".")[-1].lower()


def _np_leaf(call: ast.Call) -> Optional[str]:
    """Leaf name of an ``np.<...>`` call, else None."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[0] in _NUMPY_HEADS:
        return parts[-1]
    return None


def _project_functions(
    project: LintProject,
) -> Iterator[Tuple[ModuleTable, FunctionInfo]]:
    for modname in sorted(project.tables):
        table = project.tables[modname]
        infos = sorted(
            table.functions.values(),
            key=lambda i: (getattr(i.node, "lineno", 0), i.qualname),
        )
        for info in infos:
            yield table, info


def _builder(
    project: LintProject, table: ModuleTable, info: FunctionInfo
) -> EnvBuilder:
    return EnvBuilder(
        project, table, info,
        project_summaries(project), array_summaries(project),
    )


def _assignment_targets(
    node: ast.AST,
) -> List[Tuple[ast.expr, Optional[ast.expr]]]:
    """(target, value) pairs of one binding statement."""
    if isinstance(node, ast.Assign):
        return [(t, node.value) for t in node.targets]
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [(node.target, node.value)]
    if isinstance(node, ast.AugAssign):
        return [(node.target, node.value)]
    return []


def _target_key(target: ast.expr) -> Optional[str]:
    """Env key of an assignment target; subscript stores key the base."""
    if isinstance(target, ast.Subscript):
        return key_for(target.value)
    return key_for(target)


@register
class NarrowAccumulator(FlowRule):
    """Wear/write-count accumulators narrower than int64 overflow at
    endurance scale.

    A PCM line endures ~10**8 writes; device-wide campaign totals pass
    10**13.  ``np.zeros(n, dtype=np.int32)`` as a wear map wraps
    silently (numpy integer overflow does not raise), corrupting every
    lifetime metric downstream.  The rule also flags narrow integer
    values compared or combined with constants beyond their dtype's
    range (``np.int16(...)`` meeting ``10**8`` is always a bug).
    """

    code = "REP301"
    name = "narrow-accumulator"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for table, info in _project_functions(project):
            builder = _builder(project, table, info)
            env = builder.env_for(info.node)
            yield from self._check_function(builder, env, info)

    def _check_function(
        self,
        builder: EnvBuilder,
        env: Dict[str, ArrayValue],
        info: FunctionInfo,
    ) -> Iterator[Diagnostic]:
        seen: Set[Tuple[int, int]] = set()
        for node in walk_own(info.node):
            for target, value in _assignment_targets(node):
                key = _target_key(target)
                if key is None or value is None:
                    continue
                if not _WEAR_NAME.search(_leaf(key)):
                    continue
                abstract = builder.eval(value, env)
                if abstract.dtype in NARROW_INT:
                    site = (node.lineno, node.col_offset)
                    if site not in seen:
                        seen.add(site)
                        yield self.diagnostic(
                            info.module, node,
                            f"wear/write-count accumulator '{key}' is "
                            f"{abstract.dtype}; endurance-scale counts "
                            "(E=10**8 per line, >10**13 device-wide) "
                            "overflow it silently — use int64",
                        )
            if isinstance(node, (ast.BinOp, ast.Compare, ast.Call)):
                yield from self._check_range(builder, env, info, node, seen)

    def _check_range(
        self,
        builder: EnvBuilder,
        env: Dict[str, ArrayValue],
        info: FunctionInfo,
        node: ast.AST,
        seen: Set[Tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        if isinstance(node, ast.BinOp):
            pairs = [(node.left, node.right), (node.right, node.left)]
        elif isinstance(node, ast.Compare):
            for comparator in node.comparators:
                pairs.append((node.left, comparator))
                pairs.append((comparator, node.left))
        elif isinstance(node, ast.Call):
            # np.int16(100_000_000): the cast itself truncates.
            leaf = _np_leaf(node)
            if (leaf in INT_WIDTHS and leaf in NARROW_INT and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, int)):
                limit = int_max(leaf)
                if limit is not None and abs(node.args[0].value) > limit:
                    site = (node.lineno, node.col_offset)
                    if site not in seen:
                        seen.add(site)
                        yield self.diagnostic(
                            info.module, node,
                            f"{leaf} cannot represent "
                            f"{node.args[0].value} (max {limit}); the "
                            "cast truncates silently",
                        )
            return
        for narrow_expr, const_expr in pairs:
            if not (isinstance(const_expr, ast.Constant)
                    and isinstance(const_expr.value, int)
                    and not isinstance(const_expr.value, bool)):
                continue
            abstract = builder.eval(narrow_expr, env)
            if abstract.dtype not in NARROW_INT:
                continue
            limit = int_max(abstract.dtype)
            if limit is None or abs(const_expr.value) <= limit:
                continue
            site = (node.lineno, node.col_offset)
            if site not in seen:
                seen.add(site)
                yield self.diagnostic(
                    info.module, node,
                    f"{abstract.dtype} value meets constant "
                    f"{const_expr.value}, beyond its range (max "
                    f"{limit}); widen to int64 before endurance-scale "
                    "arithmetic",
                )


@register
class DuplicateIndexAccumulation(FlowRule):
    """``arr[idx] += k`` silently drops duplicate indices; accumulate
    with ``np.add.at``.

    Numpy fancy-index in-place arithmetic buffers the gather, so two
    occurrences of the same index contribute *one* increment — the
    exact failure mode of per-line wear accounting when a write chunk
    touches a line twice.  The rule allows provably duplicate-free
    indices (slices, ``np.arange``/``np.unique``/``np.argsort``
    results, boolean masks) and fires on known integer index arrays
    and address-plural names (``las``/``pas``/``ias``...).
    """

    code = "REP302"
    name = "duplicate-index-accumulation"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for table, info in _project_functions(project):
            builder = _builder(project, table, info)
            env = builder.env_for(info.node)
            for node in walk_own(info.node):
                if not isinstance(node, ast.AugAssign):
                    continue
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                if not isinstance(node.target, ast.Subscript):
                    continue
                index = node.target.slice
                if isinstance(index, (ast.Slice, ast.Constant)):
                    continue
                idx_val = builder.eval(index, env)
                if (idx_val.is_scalar or idx_val.unique
                        or idx_val.dtype == "bool"
                        or idx_val.kind == "slice"):
                    continue
                named_plural = False
                idx_key = key_for(index)
                if idx_key is not None:
                    named_plural = bool(
                        _ADDRESS_PLURAL.search(_leaf(idx_key))
                    )
                if not idx_val.is_array and not named_plural:
                    continue
                base = key_for(node.target.value) or "<array>"
                shown = idx_key or "<index>"
                yield self.diagnostic(
                    info.module, node,
                    f"'{base}[{shown}] += ...' applies duplicate "
                    "indices once (fancy-index stores collapse); use "
                    f"np.add.at({base}, {shown}, ...) or prove the "
                    "index duplicate-free (np.unique/arange/mask)",
                )


@register
class SilentDowncast(FlowRule):
    """Latency/wear arithmetic must not pass through float32/float16.

    ``float32`` has a 24-bit significand: nanosecond latencies above
    ~16.7 ms and wear counts above 2**24 writes stop incrementing
    exactly (``x + 1 == x``), so lifetime and latency statistics drift
    without any error.  Keep ``*_ns``/wear arrays in float64 or int64.
    """

    code = "REP303"
    name = "silent-downcast"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        for table, info in _project_functions(project):
            builder = _builder(project, table, info)
            env = builder.env_for(info.node)
            for node in walk_own(info.node):
                for target, value in _assignment_targets(node):
                    key = _target_key(target)
                    if key is None or value is None:
                        continue
                    if not _LATENCY_NAME.search(_leaf(key)):
                        continue
                    abstract = builder.eval(value, env)
                    if abstract.dtype in NARROW_FLOAT:
                        yield self.diagnostic(
                            info.module, node,
                            f"'{key}' holds latency/wear data as "
                            f"{abstract.dtype}; the 24-bit significand "
                            "loses integer precision past 2**24 "
                            "(~16.7 ms of ns, 16.7M writes) — use "
                            "float64 or int64",
                        )


@register
class NondeterministicArray(Rule):
    """Array construction must be reproducible run-to-run.

    Three nondeterminism leaks into arrays: iterating a ``set`` (hash-
    randomised for strings) or ``dict`` into ``np.array``/
    ``np.fromiter``; the legacy ``np.random.*`` global generator
    (unseeded process-global state — use ``repro.util.rng``); and
    unstable sorts of address/group keys, where ties land in
    implementation-defined order (pass ``kind="stable"``, as
    ``grouped_cumcount`` does).
    """

    code = "REP305"
    name = "nondeterministic-array"

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        if module.is_rng_module:
            return
        builder = EnvBuilder()
        scopes: List[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            env = builder.env_for(scope)
            for node in walk_own(scope):
                if isinstance(node, ast.Call):
                    yield from self._check_call(builder, env, module, node)

    def _check_call(
        self,
        builder: EnvBuilder,
        env: Dict[str, ArrayValue],
        module: LintModule,
        call: ast.Call,
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(call.func)
        parts = dotted.split(".") if dotted else []
        # -- legacy global np.random.* ------------------------------
        if (len(parts) >= 3 and parts[0] in _NUMPY_HEADS
                and parts[1] == "random" and parts[-1] in _LEGACY_RANDOM):
            yield self.diagnostic(
                module, call,
                f"legacy global generator np.random.{parts[-1]}() is "
                "process-global mutable state; draw from a "
                "repro.util.rng generator instead",
            )
            return
        leaf = _np_leaf(call)
        # -- set/dict iteration into an array -----------------------
        if leaf in _ARRAY_SINKS and call.args:
            first = builder.eval(call.args[0], env)
            if first.kind in ("set", "dict"):
                yield self.diagnostic(
                    module, call,
                    f"np.{leaf}() iterates a {first.kind}; iteration "
                    "order is not reproducible across runs "
                    "(PYTHONHASHSEED) — sort into a list first",
                )
        # -- unstable sorts of address/group keys -------------------
        subject: Optional[ast.expr] = None
        if leaf in ("sort", "argsort", "lexsort") and call.args:
            subject = call.args[0]
        elif (isinstance(call.func, ast.Attribute)
                and call.func.attr in ("sort", "argsort")):
            recv = builder.eval(call.func.value, env)
            if recv.is_array:
                subject = call.func.value
        if subject is not None and not self._stable_kind(call):
            key = key_for(subject)
            if key is not None and _SORT_KEY.search(_leaf(key)):
                yield self.diagnostic(
                    module, call,
                    f"unstable sort of '{key}': equal keys land in "
                    "implementation-defined order, so downstream "
                    "results depend on sort internals — pass "
                    "kind=\"stable\"",
                )

    @staticmethod
    def _stable_kind(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
                return kw.value.value in ("stable", "mergesort")
        return False
