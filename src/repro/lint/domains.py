"""Address-domain analysis: LA / IA / PA typing of address values.

Every address in this codebase lives in exactly one of three domains:

* **LA** — logical address, what the workload and the attacker see
  (``MemoryController.write(la, ...)``, trace entries);
* **IA** — intermediate address, the output of a randomization stage
  (RBSG's ``randomize``, Security RBSG's outer dynamic-Feistel
  mapper) and the input of the physical-placement stage;
* **PA** — physical address, what indexes ``PCMArray`` storage and
  the wear map.

The paper's whole mechanism is the LA→IA→PA pipeline, so confusing
the domains is the characteristic bug class of this repo: indexing a
wear array with an LA, translating an already-translated PA again,
handing an IA to ``write_many``.  All three produce in-range integers
and fail silently.

This module extracts **domain signatures** from scheme shape (every
:class:`~repro.wearlevel.base.WearLeveler` subclass gets
``translate(la) -> pa``, ``record_write(la)``, ...; mapper classes
mint IA; RBSG-family stage helpers like ``randomize``/``_phys_of_ia``
carry their stage's domains), types values through a per-function
abstract environment (parameters and attributes named ``la``/``ia``/
``pa`` seed their domain; calls return their signature's domain;
arithmetic drops it), propagates return domains project-wide through
the PR-7 interprocedural summary machinery, and enforces the
discipline with two rules:

* **REP304 address-domain-confusion** — cross-domain argument flows,
  LA/IA/PA values mixed in one arithmetic expression, and wear/
  endurance arrays indexed by a non-PA;
* **REP306 batched-contract-drift** — a scheme overriding scalar
  ``translate`` without ``translate_many`` (the inherited batched
  path silently computes the *old* mapping), or whose batched methods
  touch RNG state the scalar path does not (batched vs scalar replay
  diverges).

See ``docs/lint.md`` ("The array rules") for the full domain table.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    FunctionInfo,
    LintProject,
    ModuleTable,
    expand_dotted,
    local_imports,
)
from repro.lint.diagnostics import Diagnostic, FlowRule, register
from repro.lint.rules import dotted_name
from repro.lint.summaries import SummaryTable, project_summaries, walk_own

__all__ = [
    "LA", "IA", "PA", "DomainSig", "DomainIndex", "domain_index",
    "AddressDomainConfusion", "BatchedContractDrift",
]

LA = "LA"
IA = "IA"
PA = "PA"

#: ``la``/``las``/``wear_pas``/``ia0``... — the naming convention that
#: seeds parameter and attribute domains.
_ADDR_NAME = re.compile(r"(?:^|_)(la|ia|pa)s?\d*$")

#: Wear-state arrays that must be indexed by PA only.
_WEAR_ARRAY = re.compile(r"wear|endurance")


@dataclass(frozen=True)
class DomainSig:
    """Domain signature of one method: positional parameter domains
    (``self`` excluded) and the return domain."""

    params: Tuple[Optional[str], ...]
    returns: Optional[str]


_LA_IN_PA_OUT = DomainSig((LA,), PA)
_LA_IN = DomainSig((LA,), None)

#: Methods every WearLeveler (and subclass) exposes.
_SCHEME_SIGS: Dict[str, DomainSig] = {
    "translate": _LA_IN_PA_OUT,
    "translate_many": _LA_IN_PA_OUT,
    "record_write": _LA_IN,
    "record_writes_many": _LA_IN,
    "writes_until_next_remap": _LA_IN,
    "consume_chunk": _LA_IN_PA_OUT,  # returns (pas, n); see unpacking
}

#: RBSG-family intermediate-stage helpers, matched by name on scheme
#: receivers (``self.randomize(...)`` inside RBSG, Security RBSG's
#: ``_phys_of_ia``...).  These are where IA is minted and consumed.
_STAGE_SIGS: Dict[str, DomainSig] = {
    "randomize": DomainSig((LA,), IA),
    "randomize_many": DomainSig((LA,), IA),
    "derandomize": DomainSig((IA,), LA),
    "region_of": DomainSig((IA,), None),
    "subregion_of": DomainSig((IA,), None),
    "subregion_of_la": DomainSig((LA,), None),
    "_phys_of_ia": DomainSig((IA,), PA),
    "_phys_of_ias": DomainSig((IA,), PA),
}

#: Outer randomization mappers (LA -> IA minting stage).
_MAPPER_SIGS: Dict[str, DomainSig] = {
    "translate": DomainSig((LA,), IA),
    "translate_many": DomainSig((LA,), IA),
    "encrypt": DomainSig((LA,), IA),
    "decrypt": DomainSig((IA,), LA),
}

#: Physical storage: every address argument is a PA.
_PCM_SIGS: Dict[str, DomainSig] = {
    "write": DomainSig((PA, None), None),
    "write_many": DomainSig((PA, None), None),
    "read": DomainSig((PA,), None),
    "read_with_latency": DomainSig((PA,), None),
    "bulk_wear": DomainSig((PA,), None),
    "mark_stuck": DomainSig((PA,), None),
}

#: The memory controller fronts the scheme: it *consumes* LAs.
_CONTROLLER_SIGS: Dict[str, DomainSig] = {
    "write": DomainSig((LA, None), None),
    "read": DomainSig((LA,), None),
    "write_chunk": DomainSig((LA, None), None),
}

_KIND_SIGS: Dict[str, Dict[str, DomainSig]] = {
    "scheme": {**_SCHEME_SIGS, **_STAGE_SIGS},
    "mapper": _MAPPER_SIGS,
    "pcm": _PCM_SIGS,
    "controller": _CONTROLLER_SIGS,
}

_MAPPER_CLASS = re.compile(r"(Mapper|Feistel\w*|Randomizer)$")

#: Receiver-variable spellings accepted when no class can be resolved.
_RECEIVER_HINTS: Dict[str, str] = {
    "scheme": "scheme", "wl": "scheme", "leveler": "scheme",
    "wear_leveler": "scheme",
    "mapper": "mapper", "outer": "mapper", "randomizer": "mapper",
    "pcm": "pcm",
    "controller": "controller", "mc": "controller",
}

#: numpy / builtin calls whose result keeps the first argument's domain.
_DOMAIN_PASSTHROUGH = frozenset({
    "asarray", "ascontiguousarray", "array", "sort", "unique", "copy",
    "int", "int64", "intp",
})


def name_domain(name: str) -> Optional[str]:
    """Domain implied by an identifier (``las`` -> LA, ``wear_pas`` ->
    PA, anything else None)."""
    match = _ADDR_NAME.search(name.lower())
    if match is None:
        return None
    return match.group(1).upper()


class DomainIndex:
    """Project-wide class/signature index for the address domains."""

    def __init__(self, project: LintProject) -> None:
        self.project = project
        #: fq class name -> (table, bare name)
        self.classes: Dict[str, Tuple[ModuleTable, str]] = {}
        for modname in sorted(project.tables):
            table = project.tables[modname]
            for cls in table.class_bases:
                self.classes[f"{modname}.{cls}"] = (table, cls)
        self._kind_cache: Dict[str, Optional[str]] = {}

    # -- class classification ----------------------------------------

    def class_kind(self, dotted: str) -> Optional[str]:
        """Kind of a class reference: scheme / mapper / pcm /
        controller, else None.  Accepts fq names, imported names and
        bare leaves; unknown classes are untyped."""
        leaf = dotted.split(".")[-1]
        if leaf == "WearLeveler":
            return "scheme"
        if leaf == "PCMArray":
            return "pcm"
        if leaf == "MemoryController":
            return "controller"
        fq = self._resolve_class(dotted)
        if fq is not None:
            if self._is_wear_leveler(fq):
                return "scheme"
            if _MAPPER_CLASS.search(fq.split(".")[-1]):
                return "mapper"
            return None
        if _MAPPER_CLASS.search(leaf):
            return "mapper"
        return None

    def _resolve_class(self, dotted: str) -> Optional[str]:
        if dotted in self.classes:
            return dotted
        # An imported/bare spelling: unique leaf match across the
        # project (schemes have distinctive names; ambiguity -> None).
        leaf = dotted.split(".")[-1]
        hits = [fq for fq in self.classes if fq.split(".")[-1] == leaf]
        if len(hits) == 1:
            return hits[0]
        return None

    def _is_wear_leveler(self, fq: str, _depth: int = 0) -> bool:
        if _depth > 8:
            return False
        cached = self._kind_cache.get(fq)
        if cached is not None:
            return cached == "scheme"
        entry = self.classes.get(fq)
        if entry is None:
            return False
        table, cls = entry
        verdict = False
        for base in table.class_bases.get(cls, []):
            expanded = expand_dotted(table, base)
            if expanded.split(".")[-1] == "WearLeveler":
                verdict = True
                break
            base_fq = self._resolve_class(expanded)
            if base_fq is not None and self._is_wear_leveler(
                    base_fq, _depth + 1):
                verdict = True
                break
        self._kind_cache[fq] = "scheme" if verdict else "other"
        return verdict

    def scheme_classes(self) -> List[Tuple[ModuleTable, str]]:
        """Every WearLeveler subclass in the project (base excluded)."""
        out: List[Tuple[ModuleTable, str]] = []
        for fq in sorted(self.classes):
            table, cls = self.classes[fq]
            if cls != "WearLeveler" and self._is_wear_leveler(fq):
                out.append((table, cls))
        return out

    def sigs_for_kind(self, kind: Optional[str]) -> Dict[str, DomainSig]:
        if kind is None:
            return {}
        return _KIND_SIGS.get(kind, {})


def domain_index(project: LintProject) -> DomainIndex:
    cached = project.domain_summary_cache
    if isinstance(cached, DomainIndex):
        return cached
    built = DomainIndex(project)
    project.domain_summary_cache = built
    return built


class _DomainScope:
    """Per-function domain environment and expression typing."""

    def __init__(
        self,
        index: DomainIndex,
        table: ModuleTable,
        info: FunctionInfo,
        summaries: Optional[SummaryTable],
        returns: Optional[Dict[str, Optional[str]]],
    ) -> None:
        self.index = index
        self.table = table
        self.info = info
        self.summaries = summaries
        self.returns = returns if returns is not None else {}
        self.extra = local_imports(info.node)
        #: variable / ``self.attr`` -> domain
        self.env: Dict[str, Optional[str]] = {}
        #: variable -> dotted class (from annotations / constructors)
        self.var_class: Dict[str, str] = {}
        self._seed_params()
        self._fixpoint()

    # -- seeding and fixpoint ----------------------------------------

    def _seed_params(self) -> None:
        args = getattr(self.info.node, "args", None)
        if args is None:
            return
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            domain = name_domain(arg.arg)
            if domain is not None:
                self.env[arg.arg] = domain
            if arg.annotation is not None:
                ann = dotted_name(arg.annotation)
                if ann is not None and ann.split(".")[-1][:1].isupper():
                    self.var_class[arg.arg] = expand_dotted(
                        self.table, ann, self.extra
                    )

    def _fixpoint(self) -> None:
        for _ in range(4):
            changed = False
            for node in walk_own(self.info.node):
                for key, domain in self._bindings(node):
                    if self.env.get(key, "∅") != domain:
                        # A rebinding to a different domain widens to
                        # None rather than oscillating.
                        if key in self.env and self.env[key] != domain:
                            domain = None
                        self.env[key] = domain
                        changed = True
            if not changed:
                break

    def _bindings(
        self, node: ast.AST
    ) -> List[Tuple[str, Optional[str]]]:
        out: List[Tuple[str, Optional[str]]] = []
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            self._track_class(target, node.value)
            if isinstance(target, ast.Tuple):
                out.extend(self._tuple_bindings(target, node.value))
            else:
                key = self._key(target)
                if key is not None:
                    out.append((key, self.eval(node.value)))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            key = self._key(node.target)
            if key is not None:
                out.append((key, self.eval(node.value)))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            key = self._key(node.target)
            if key is not None:
                # ``for la in las``: elements carry the array's domain.
                out.append((key, self.eval(node.iter)))
        return out

    def _tuple_bindings(
        self, target: ast.Tuple, value: ast.expr
    ) -> List[Tuple[str, Optional[str]]]:
        out: List[Tuple[str, Optional[str]]] = []
        if isinstance(value, ast.Call):
            sig = self.sig_for_call(value)
            if sig is not None and sig[0] is _LA_IN_PA_OUT:
                # ``pas, n = scheme.consume_chunk(las)``
                keys = [self._key(el) for el in target.elts]
                if keys and keys[0] is not None:
                    out.append((keys[0], sig[0].returns))
                for key in keys[1:]:
                    if key is not None:
                        out.append((key, None))
                return out
        if isinstance(value, ast.Tuple) and len(value.elts) == len(
                target.elts):
            for el, val in zip(target.elts, value.elts):
                key = self._key(el)
                if key is not None:
                    out.append((key, self.eval(val)))
            return out
        for el in target.elts:
            key = self._key(el)
            if key is not None:
                out.append((key, None))
        return out

    def _track_class(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if not isinstance(value, ast.Call):
            return
        dotted = dotted_name(value.func)
        if dotted is None or not dotted.split(".")[-1][:1].isupper():
            return
        self.var_class[target.id] = expand_dotted(
            self.table, dotted, self.extra
        )

    @staticmethod
    def _key(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return dotted_name(node)
        return None

    # -- typing --------------------------------------------------------

    def eval(self, node: ast.expr) -> Optional[str]:
        """Domain of one expression, or None when unknown/mixed."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            key = dotted_name(node)
            if key is not None and key in self.env:
                return self.env[key]
            return name_domain(node.attr)
        if isinstance(node, ast.Subscript):
            # ``las[i]`` / ``las[mask]`` / ``las[:n]`` stay LAs.
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self._call_domain(node)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.IfExp):
            body = self.eval(node.body)
            orelse = self.eval(node.orelse)
            return body if body == orelse else None
        return None

    def _call_domain(self, call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is not None and call.args:
            leaf = dotted.split(".")[-1]
            if leaf in _DOMAIN_PASSTHROUGH:
                return self.eval(call.args[0])
        sig = self.sig_for_call(call)
        if sig is not None:
            return sig[0].returns
        resolved = self._resolve(call)
        if resolved is not None:
            domain = self.returns.get(resolved.fq)
            if domain is not None:
                return domain
            if self.summaries is not None:
                summary = self.summaries.for_function(resolved)
                if summary is not None and summary.passthrough:
                    offset = 1 if resolved.class_name is not None else 0
                    for p in summary.passthrough:
                        pos = p - offset
                        if 0 <= pos < len(call.args):
                            return self.eval(call.args[pos])
        return None

    def _resolve(self, call: ast.Call) -> Optional[FunctionInfo]:
        return self.index.project.resolve_call(
            self.table, call, self.extra, self.info.class_name
        )

    # -- signatures ----------------------------------------------------

    def receiver_kind(self, recv: ast.expr) -> Optional[str]:
        """Classify the receiver of a method call."""
        if isinstance(recv, ast.Subscript):
            # ``self.regions[r].translate(...)``: element type.
            return self.receiver_kind(recv.value)
        if isinstance(recv, ast.Name):
            if recv.id in ("self", "cls"):
                cls = self.info.class_name
                if cls is None:
                    return None
                return self.index.class_kind(
                    f"{self.table.modname}.{cls}"
                )
            cls_dotted = self.var_class.get(recv.id)
            if cls_dotted is not None:
                kind = self.index.class_kind(cls_dotted)
                if kind is not None:
                    return kind
            return _RECEIVER_HINTS.get(recv.id.lower())
        if isinstance(recv, ast.Attribute):
            if (isinstance(recv.value, ast.Name)
                    and recv.value.id in ("self", "cls")
                    and self.info.class_name is not None):
                ann = self.table.attr_types.get(
                    self.info.class_name, {}
                ).get(recv.attr)
                if ann is not None:
                    expanded = expand_dotted(self.table, ann, self.extra)
                    kind = self.index.class_kind(expanded)
                    if kind is not None:
                        return kind
            return _RECEIVER_HINTS.get(recv.attr.lower())
        return None

    def sig_for_call(
        self, call: ast.Call
    ) -> Optional[Tuple[DomainSig, str]]:
        """Domain signature of a method call, with a shown name."""
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        kind = self.receiver_kind(call.func.value)
        sig = self.index.sigs_for_kind(kind).get(method)
        if sig is None:
            return None
        shown = dotted_name(call.func) or method
        return self._refine_params(call, sig), f"{shown}()"

    def _refine_params(self, call: ast.Call, sig: DomainSig) -> DomainSig:
        """A concrete callee's own parameter names win over the generic
        kind table: ``MultiWaySR.subregion_of(la)`` takes an LA even
        though the RBSG-family stage helper of that name consumes an
        IA.  When the names agree with the table (or declare nothing)
        the table signature is returned unchanged, preserving identity
        for the ``consume_chunk`` unpacking special case."""
        resolved = self._resolve(call)
        if resolved is None:
            return sig
        args = getattr(resolved.node, "args", None)
        if args is None:
            return sig
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        domains = tuple(name_domain(p) for p in params)
        if not any(domains) or domains[: len(sig.params)] == sig.params:
            return sig
        return DomainSig(domains, sig.returns)

    def expected_param_domains(
        self, call: ast.Call
    ) -> Optional[Tuple[Tuple[Optional[str], ...], str]]:
        """Expected positional-argument domains of one call.

        Receiver signatures win; otherwise a resolved project callee
        contributes expectations from its *parameter names* (``def
        helper(pa): ...`` expects a PA first argument) — this is what
        makes the check project-wide rather than schema-limited.
        """
        sig = self.sig_for_call(call)
        if sig is not None:
            return sig[0].params, sig[1]
        resolved = self._resolve(call)
        if resolved is None:
            return None
        args = getattr(resolved.node, "args", None)
        if args is None:
            return None
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] in ("self", "cls"):
            is_method_call = isinstance(call.func, ast.Attribute)
            if is_method_call or resolved.class_name is not None:
                params = params[1:]
        domains = tuple(name_domain(p) for p in params)
        if not any(domains):
            return None
        return domains, f"{resolved.qualname}()"


def _domain_returns(
    project: LintProject, index: DomainIndex
) -> Dict[str, Optional[str]]:
    """Return-domain summaries: seeded from class signatures, then a
    bounded fixpoint over every project function's return expressions
    (a helper that returns ``self.translate(la)`` returns PA)."""
    returns: Dict[str, Optional[str]] = {}
    for fq in sorted(index.classes):
        table, cls = index.classes[fq]
        kind = index.class_kind(fq)
        for method, sig in index.sigs_for_kind(kind).items():
            if f"{cls}.{method}" in table.functions:
                returns[f"{fq}.{method}"] = sig.returns
    summaries = project_summaries(project)
    infos: List[Tuple[ModuleTable, FunctionInfo]] = []
    for modname in sorted(project.tables):
        table = project.tables[modname]
        for qual in sorted(table.functions):
            infos.append((table, table.functions[qual]))
    for _ in range(3):
        changed = False
        for table, info in infos:
            if info.fq in returns and returns[info.fq] is not None:
                continue  # signature-seeded
            scope = _DomainScope(index, table, info, summaries, returns)
            domain: Optional[str] = None
            consistent = True
            for node in walk_own(info.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    found = scope.eval(node.value)
                    if domain is None:
                        domain = found
                    elif found != domain:
                        consistent = False
            value = domain if consistent else None
            if returns.get(info.fq, "∅") != value:
                returns[info.fq] = value
                changed = True
        if not changed:
            break
    return returns


@register
class AddressDomainConfusion(FlowRule):
    """LA, IA and PA values must not cross domains.

    Flags three flows: an argument whose domain contradicts the
    callee's signature (the classic double translation —
    ``translate(translate(la))`` feeds a PA where an LA is expected),
    distinct domains mixed in one arithmetic/comparison expression,
    and a wear/endurance array indexed by an LA or IA.  Domains come
    from scheme signatures and the ``la``/``ia``/``pa`` naming
    convention; values with no known domain are never flagged.
    """

    code = "REP304"
    name = "address-domain-confusion"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        index = domain_index(project)
        summaries = project_summaries(project)
        returns = _domain_returns(project, index)
        for modname in sorted(project.tables):
            table = project.tables[modname]
            infos = sorted(
                table.functions.values(),
                key=lambda i: (getattr(i.node, "lineno", 0), i.qualname),
            )
            for info in infos:
                scope = _DomainScope(index, table, info, summaries, returns)
                yield from self._check_scope(scope, info)

    def _check_scope(
        self, scope: _DomainScope, info: FunctionInfo
    ) -> Iterator[Diagnostic]:
        for node in walk_own(info.node):
            if isinstance(node, ast.Call):
                yield from self._check_call(scope, info, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(scope, info, node)
            elif isinstance(node, (ast.BinOp, ast.Compare)):
                yield from self._check_mix(scope, info, node)

    def _check_call(
        self, scope: _DomainScope, info: FunctionInfo, call: ast.Call
    ) -> Iterator[Diagnostic]:
        expected = scope.expected_param_domains(call)
        if expected is None:
            return
        domains, shown = expected
        for pos, arg in enumerate(call.args):
            if pos >= len(domains) or isinstance(arg, ast.Starred):
                continue
            want = domains[pos]
            if want is None:
                continue
            got = scope.eval(arg)
            if got is None or got == want:
                continue
            if got == PA and want == LA:
                detail = (
                    "already-translated PA fed back into an LA "
                    "consumer (double translation)"
                )
            else:
                detail = f"{got}-domain value where {want} is expected"
            yield self.diagnostic(
                info.module, arg,
                f"argument {pos + 1} of {shown}: {detail}",
            )

    def _check_subscript(
        self, scope: _DomainScope, info: FunctionInfo, node: ast.Subscript
    ) -> Iterator[Diagnostic]:
        base_key = scope._key(node.value)
        if base_key is None:
            return
        if not _WEAR_ARRAY.search(base_key.split(".")[-1].lower()):
            return
        if isinstance(node.slice, ast.Slice):
            return
        got = scope.eval(node.slice)
        if got in (LA, IA):
            yield self.diagnostic(
                info.module, node,
                f"wear state '{base_key}' indexed by a {got}-domain "
                "address; wear is physical — translate to a PA first",
            )

    def _check_mix(
        self, scope: _DomainScope, info: FunctionInfo, node: ast.AST
    ) -> Iterator[Diagnostic]:
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        if isinstance(node, ast.BinOp):
            pairs.append((node.left, node.right))
        elif isinstance(node, ast.Compare):
            prev = node.left
            for comparator in node.comparators:
                pairs.append((prev, comparator))
                prev = comparator
        for left, right in pairs:
            got_l = scope.eval(left)
            got_r = scope.eval(right)
            if got_l is not None and got_r is not None and got_l != got_r:
                yield self.diagnostic(
                    info.module, node,
                    f"{got_l}-domain and {got_r}-domain addresses mixed "
                    "in one expression; translate into a single domain "
                    "first",
                )


#: Batched entry points vs their scalar counterparts (REP306).
_BATCHED_METHODS = frozenset({
    "translate_many", "record_writes_many", "consume_chunk",
    "writes_until_next_remap", "round_wear_profile", "apply_round",
})
_SCALAR_METHODS = frozenset({"translate", "record_write"})

_RNG_CALL_LEAVES = frozenset({
    "integers", "random", "choice", "shuffle", "permutation", "normal",
    "standard_normal", "bytes",
})


@register
class BatchedContractDrift(FlowRule):
    """Batched scheme methods must stay bit-identical to the scalar
    path.

    Two drift shapes: overriding ``translate`` without
    ``translate_many`` leaves the batched path computing a *different*
    mapping (either the base-class fallback loop — slow but correct —
    or, worse, an inherited vectorized implementation of the old
    mapping); and a batched method that reads RNG state the scalar
    path never touches makes chunked replay diverge from entry-wise
    replay, breaking the engine's batched==scalar equivalence gate.
    """

    code = "REP306"
    name = "batched-contract-drift"

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        assert isinstance(project, LintProject)
        index = domain_index(project)
        for table, cls in index.scheme_classes():
            own = {
                qual.split(".", 1)[1]: info
                for qual, info in table.functions.items()
                if qual.startswith(f"{cls}.")
            }
            if "translate" in own and "translate_many" not in own:
                yield self.diagnostic(
                    table.module, own["translate"].node,
                    f"{cls} overrides translate() without "
                    "translate_many(); the batched path no longer "
                    "matches the scalar mapping — override both",
                )
            yield from self._check_rng_drift(table, cls, own)

    def _check_rng_drift(
        self,
        table: ModuleTable,
        cls: str,
        own: Dict[str, FunctionInfo],
    ) -> Iterator[Diagnostic]:
        scalar = self._closure_touches(own, _SCALAR_METHODS)
        for method in sorted(_BATCHED_METHODS):
            if method not in own:
                continue
            batched = self._closure_touches(own, {method})
            drift = sorted(batched - scalar)
            if drift:
                shown = ", ".join(drift)
                yield self.diagnostic(
                    table.module, own[method].node,
                    f"{cls}.{method}() touches RNG state the scalar "
                    f"path does not ({shown}); batched and entry-wise "
                    "replay will diverge",
                )

    def _closure_touches(
        self, own: Dict[str, FunctionInfo], roots: Set[str]
    ) -> Set[str]:
        """RNG touches reachable from ``roots`` via self-calls."""
        seen: Set[str] = set()
        queue = [m for m in sorted(roots) if m in own]
        touches: Set[str] = set()
        while queue:
            method = queue.pop(0)
            if method in seen:
                continue
            seen.add(method)
            fn = own[method].node
            for node in walk_own(fn):
                if isinstance(node, ast.Attribute):
                    if (isinstance(node.value, ast.Name)
                            and node.value.id == "self"
                            and "rng" in node.attr.lower()):
                        touches.add(f"self.{node.attr}")
                elif isinstance(node, ast.Call):
                    dotted = dotted_name(node.func)
                    if dotted is None:
                        continue
                    parts = dotted.split(".")
                    if (len(parts) == 2 and parts[0] == "self"
                            and parts[1] in own):
                        queue.append(parts[1])
                    elif (parts[-1] in _RNG_CALL_LEAVES
                            and "rng" not in dotted.lower()
                            and parts[0] == "self"):
                        touches.add(f"{dotted}()")
        return touches
