"""Core datatypes of the ``reprolint`` static-analysis framework.

A :class:`Rule` inspects one parsed module and yields
:class:`Diagnostic` records; the :data:`REGISTRY` maps rule codes
(``REP001``...) to their singleton rule instances.  Rules register
themselves with the :func:`register` decorator at import time
(:mod:`repro.lint.rules` imports populate the registry).
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Type


class Severity(enum.Enum):
    """How strongly a diagnostic should gate a build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: CODE message``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_json` (used by the incremental cache)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            code=str(payload["code"]),
            message=str(payload["message"]),
            severity=Severity(str(payload["severity"])),
        )


@dataclass
class LintModule:
    """One parsed source file, as handed to every rule.

    ``rel_path`` is the path as given on the command line (kept relative
    so diagnostics are stable across checkouts); ``parts`` caches the
    path components rules use for scoping decisions (e.g. REP005 skips
    ``benchmarks/``, REP006 only fires inside ``wearlevel``/``pcm``/
    ``sim``).
    """

    rel_path: str
    source: str
    tree: ast.Module

    @property
    def parts(self) -> Tuple[str, ...]:
        return Path(self.rel_path).parts

    @property
    def is_rng_module(self) -> bool:
        """True for ``repro/util/rng.py`` — the one sanctioned RNG home."""
        return self.rel_path.replace("\\", "/").endswith("repro/util/rng.py")


class Rule:
    """Base class for all reprolint rules.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`severity` and a
    docstring (shown by ``--list-rules``), and implement :meth:`check`.
    """

    code: str = "REP000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        """Yield every violation of this rule found in ``module``."""
        raise NotImplementedError

    def diagnostic(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        )

    @property
    def description(self) -> str:
        """First paragraph of the rule docstring, for ``--list-rules``."""
        doc = (self.__doc__ or "").strip()
        return doc.split("\n\n")[0].replace("\n", " ")


class FlowRule(Rule):
    """Base class for flow-sensitive, project-wide rules (REP101+).

    Flow rules see the *whole* lint run at once — every parsed module,
    cross-referenced by :class:`repro.lint.callgraph.LintProject` — so
    they can follow values through helper wrappers and module
    boundaries.  The runner calls :meth:`check_project` once per run
    (when ``--flow`` is enabled, the default) instead of :meth:`check`
    per module; diagnostics still carry the path of the module they
    fire in, so inline suppressions work unchanged.
    """

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        """Flow rules run project-wide; per-module checking is a no-op."""
        return iter(())

    def check_project(self, project: object) -> Iterator[Diagnostic]:
        """Yield every violation found across ``project`` (a
        :class:`repro.lint.callgraph.LintProject`)."""
        raise NotImplementedError

    def diagnostic_at(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Diagnostic:
        """Alias of :meth:`Rule.diagnostic` (kept for call-site clarity)."""
        return self.diagnostic(module, node, message)


#: Rule code -> singleton instance; populated by :func:`register`.
REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate ``cls`` and add it to :data:`REGISTRY`."""
    instance = cls()
    if instance.code in REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    REGISTRY[instance.code] = instance
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [REGISTRY[code] for code in sorted(REGISTRY)]
