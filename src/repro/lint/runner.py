"""reprolint driver: file discovery, rule execution, caching, reporting.

Run as ``python -m repro.lint [paths...]`` or ``python -m repro lint``.
Exit status: 0 clean, 1 violations found, 2 usage error.

Three rule families run per invocation:

* the syntactic rules (REP001–REP007) check each file independently;
* the flow rules (REP101–REP104, on by default, ``--no-flow`` to skip)
  see the whole run at once through a cross-module call graph and
  interprocedural function summaries;
* the concurrency/service rules (REP201–REP205, also flow rules)
  guard the distributed campaign service: blocked event loops, dropped
  awaitables, unsafe forks, mixed clock domains and protocol drift;
* the array/address rules (REP301–REP306) enforce numpy dtype/
  aliasing discipline and the LA/IA/PA address-domain separation;
  REP305 is syntactic, the rest ride the flow pass.

``--jobs N`` fans the syntactic pass over N worker processes (0 = one
per CPU); the flow pass is whole-project and stays in the parent.
Output is byte-identical for every N — diagnostics are merged per
file and globally sorted, never emitted in completion order.

``--baseline write FILE`` records the current findings; ``--baseline
check FILE`` reports only new findings and fails on stale entries, so
a future rule family can land warn-only and be ratcheted down.

Results are cached under ``build/.lintcache`` (``--no-cache`` bypasses):
per-file for the syntactic family, whole-project for the flow family.
``--check-suppressions`` additionally reports stale
``# reprolint: disable=...`` pragmas that no longer shield anything, as
REP100 diagnostics (this mode disables the cache — usage accounting
needs every rule to actually run).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint import rules as _rules  # noqa: F401  (populates REGISTRY)
from repro.lint import flowrules as _flowrules  # noqa: F401  (REP101–REP104)
from repro.lint import asyncrules as _asyncrules  # noqa: F401  (REP201–REP205)
from repro.lint import arrayrules as _arrayrules  # noqa: F401  (REP301+)
from repro.lint import domains as _domains  # noqa: F401  (REP304/REP306)
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import LintCache, project_key, source_sha
from repro.lint.callgraph import LintProject
from repro.lint.diagnostics import (
    REGISTRY,
    Diagnostic,
    FlowRule,
    LintModule,
    Rule,
    Severity,
    all_rules,
)
from repro.lint.parallel import check_files_parallel
from repro.lint.sarif import render_sarif
from repro.lint.suppress import SuppressionMap, parse_suppressions

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "build",
                        "dist", ".pytest_cache"})

#: Diagnostic code for a stale suppression (``--check-suppressions``).
UNUSED_SUPPRESSION_CODE = "REP100"


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        else:
            raise FileNotFoundError(raw)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    #: rel_path -> that file's pragma map (with usage marks).
    suppressions: Dict[str, SuppressionMap] = field(default_factory=dict)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]


def _split_rules(
    selected: Iterable[Rule], flow: bool
) -> Tuple[List[Rule], List[FlowRule]]:
    syntactic: List[Rule] = []
    flow_rules: List[FlowRule] = []
    for rule in selected:
        if isinstance(rule, FlowRule):
            if flow:
                flow_rules.append(rule)
        else:
            syntactic.append(rule)
    return syntactic, flow_rules


def _codes_key(rules: Sequence[Rule]) -> str:
    return ",".join(sorted(r.code for r in rules))


def lint_sources(
    sources: Dict[str, str],
    selected: Optional[Iterable[Rule]] = None,
    flow: bool = True,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
) -> LintResult:
    """Lint a mapping of ``rel_path -> source``; the core engine.

    Multi-file input is what gives the flow rules their cross-module
    view; tests hand in small dict fixtures, :func:`lint_paths` hands
    in the real tree.  ``jobs > 1`` fans the per-file syntactic rules
    over worker processes; suppression accounting, caching and the
    final sort stay in the parent, so the output is byte-identical to
    a serial run.
    """
    chosen = list(all_rules() if selected is None else selected)
    syntactic, flow_rules = _split_rules(chosen, flow)
    result = LintResult(files_checked=len(sources))
    file_key = _codes_key(syntactic)

    modules: List[LintModule] = []
    pending: List[LintModule] = []
    shas: Dict[str, str] = {}
    for rel_path, source in sources.items():
        shas[rel_path] = source_sha(source)
        smap = parse_suppressions(source)
        result.suppressions[rel_path] = smap
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            result.diagnostics.append(
                Diagnostic(
                    path=rel_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    code="REP000",
                    message=f"syntax error: {exc.msg}",
                    severity=Severity.ERROR,
                )
            )
            continue
        module = LintModule(rel_path=rel_path, source=source, tree=tree)
        modules.append(module)

        cached = (
            cache.get_file(rel_path, shas[rel_path], file_key)
            if cache is not None else None
        )
        if cached is not None:
            result.diagnostics.extend(cached)
            continue
        pending.append(module)

    if pending:
        if jobs != 1 and len(pending) > 1:
            raw = check_files_parallel(
                [(m.rel_path, m.source) for m in pending],
                [rule.code for rule in syntactic],
                jobs,
            )
        else:
            raw = {
                m.rel_path: [d for rule in syntactic
                             for d in rule.check(m)]
                for m in pending
            }
        for module in pending:
            smap = result.suppressions[module.rel_path]
            file_diags = [
                d for d in raw.get(module.rel_path, [])
                if not smap.is_suppressed(d.code, d.line)
            ]
            if cache is not None:
                cache.put_file(
                    module.rel_path, shas[module.rel_path], file_key,
                    file_diags,
                )
            result.diagnostics.extend(file_diags)

    if flow_rules and modules:
        flow_key = project_key(shas)
        flow_codes = _codes_key(flow_rules)
        cached_flow = (
            cache.get_flow(flow_key, flow_codes)
            if cache is not None else None
        )
        if cached_flow is not None:
            result.diagnostics.extend(cached_flow)
        else:
            project = LintProject(modules)
            flow_diags: List[Diagnostic] = []
            for rule in flow_rules:
                for diag in rule.check_project(project):
                    smap = result.suppressions.get(diag.path)
                    if smap is not None and smap.is_suppressed(
                            diag.code, diag.line):
                        continue
                    flow_diags.append(diag)
            if cache is not None:
                cache.put_flow(flow_key, flow_codes, flow_diags)
            result.diagnostics.extend(flow_diags)

    if cache is not None:
        cache.save()
    result.diagnostics.sort()
    return result


def lint_source(
    source: str,
    rel_path: str = "<string>",
    selected: Optional[Iterable[Rule]] = None,
    flow: bool = False,
) -> List[Diagnostic]:
    """Lint one source string (flow rules opt-in for single files)."""
    return lint_sources(
        {rel_path: source}, selected=selected, flow=flow
    ).diagnostics


def lint_paths(
    paths: Sequence[str],
    selected: Optional[Iterable[Rule]] = None,
    flow: bool = True,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
) -> List[Diagnostic]:
    """Lint every python file reachable from ``paths``."""
    return lint_tree(
        paths, selected, flow=flow, cache=cache, jobs=jobs
    ).diagnostics


def lint_tree(
    paths: Sequence[str],
    selected: Optional[Iterable[Rule]] = None,
    flow: bool = True,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
) -> LintResult:
    """Like :func:`lint_paths`, returning the full :class:`LintResult`."""
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths):
        sources[path.as_posix()] = path.read_text(encoding="utf-8")
    return lint_sources(sources, selected, flow=flow, cache=cache,
                        jobs=jobs)


def unused_suppression_diagnostics(
    result: LintResult, ran_codes: Iterable[str]
) -> List[Diagnostic]:
    """REP100 diagnostics for pragmas that shielded nothing.

    A pragma code only counts as stale when the rule it names actually
    ran (or names no known rule at all — a typo is always stale).
    """
    ran = set(ran_codes)
    stale: List[Diagnostic] = []
    for rel_path in sorted(result.suppressions):
        smap = result.suppressions[rel_path]
        for entry, code in smap.iter_stale():
            if code != "all" and code in REGISTRY and code not in ran:
                continue
            scope = ("file-wide " if entry.target is None else "")
            stale.append(
                Diagnostic(
                    path=rel_path,
                    line=entry.pragma_line,
                    col=1,
                    code=UNUSED_SUPPRESSION_CODE,
                    message=(
                        f"{scope}suppression of {code} matches no "
                        "diagnostic; remove the stale pragma (or the "
                        "stale code from its list)"
                    ),
                    severity=Severity.ERROR,
                )
            )
    return stale


def _resolve_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    def split(csv: str) -> List[str]:
        return [code.strip().upper() for code in csv.split(",") if code.strip()]

    codes = set(REGISTRY)
    if select:
        wanted = split(select)
        unknown = [c for c in wanted if c not in REGISTRY]
        if unknown:
            raise KeyError(", ".join(unknown))
        codes = set(wanted)
    if ignore:
        dropped = split(ignore)
        unknown = [c for c in dropped if c not in REGISTRY]
        if unknown:
            raise KeyError(", ".join(unknown))
        codes -= set(dropped)
    return [REGISTRY[code] for code in sorted(codes)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "reprolint: AST-based simulator-invariant checker "
            "(determinism, latency accounting, hidden state)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--flow", dest="flow", action="store_true", default=True,
        help="run the flow-sensitive rules REP101-REP306 (default)",
    )
    parser.add_argument(
        "--no-flow", dest="flow", action="store_false",
        help="skip the flow-sensitive rules",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help=(
            "worker processes for the per-file syntactic pass "
            "(0 = one per CPU, default 1); the flow pass is "
            "whole-project and stays serial — output is byte-identical "
            "for every N"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental cache under build/.lintcache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache directory (default: build/.lintcache)",
    )
    parser.add_argument(
        "--baseline", nargs=2, metavar=("MODE", "FILE"),
        help=(
            "baseline support: 'write FILE' records the current "
            "findings as accepted; 'check FILE' reports only findings "
            "not in the baseline, and fails on stale baseline entries"
        ),
    )
    parser.add_argument(
        "--check-suppressions", action="store_true",
        help=(
            "also report stale '# reprolint: disable' pragmas that no "
            "longer suppress anything (REP100; disables the cache)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit",
    )
    return parser


def _print_rule_listing() -> None:
    for rule in all_rules():
        flavor = " [flow]" if isinstance(rule, FlowRule) else ""
        print(f"{rule.code} ({rule.name}) [{rule.severity}]{flavor}")
        print(f"    {rule.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rule_listing()
        return 0
    try:
        selected = _resolve_rules(args.select, args.ignore)
    except KeyError as exc:
        print(f"unknown rule code(s): {exc.args[0]}", file=sys.stderr)
        return 2
    baseline_failed = False
    use_cache = not args.no_cache and not args.check_suppressions
    cache = (
        LintCache(Path(args.cache_dir) if args.cache_dir else None)
        if use_cache else None
    )
    try:
        result = lint_tree(args.paths, selected, flow=args.flow,
                           cache=cache, jobs=args.jobs)
    except FileNotFoundError as exc:
        print(f"no such file or directory: {exc.args[0]}", file=sys.stderr)
        return 2
    diagnostics = result.diagnostics
    if args.check_suppressions:
        ran_codes = [r.code for r in selected
                     if args.flow or not isinstance(r, FlowRule)]
        diagnostics = sorted(
            diagnostics + unused_suppression_diagnostics(result, ran_codes)
        )
    n_files = result.files_checked
    if args.baseline is not None:
        mode, baseline_file = args.baseline
        if mode not in ("write", "check"):
            print(f"--baseline mode must be write|check, got '{mode}'",
                  file=sys.stderr)
            return 2
        if mode == "write":
            n_entries = write_baseline(diagnostics, Path(baseline_file))
            print(f"baseline: recorded {len(diagnostics)} finding(s) "
                  f"({n_entries} distinct) in {baseline_file}")
            return 0
        try:
            entries = load_baseline(Path(baseline_file))
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        diagnostics, stale = apply_baseline(diagnostics, entries)
        baseline_failed = bool(stale)
        for key in stale:
            print(f"stale baseline entry (no longer matches anything): "
                  f"{key}", file=sys.stderr)
        if stale:
            print(f"{len(stale)} stale baseline entr(y/ies) in "
                  f"{baseline_file}; re-run '--baseline write' after "
                  "confirming the fixes", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(
            {
                "files_checked": n_files,
                "rules": [r.code for r in selected],
                "diagnostics": [d.to_json() for d in diagnostics],
            },
            indent=2,
        ))
    elif args.format == "sarif":
        print(render_sarif(diagnostics, selected))
    else:
        for diag in diagnostics:
            print(diag.render())
        summary = (
            f"{len(diagnostics)} problem(s) in {n_files} file(s)"
            if diagnostics
            else f"clean: {n_files} file(s), {len(selected)} rule(s)"
        )
        print(summary)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    return 1 if errors or baseline_failed else 0
