"""reprolint driver: file discovery, rule execution, reporting.

Run as ``python -m repro.lint [paths...]`` or ``python -m repro lint``.
Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint import rules as _rules  # noqa: F401  (populates REGISTRY)
from repro.lint.diagnostics import (
    REGISTRY,
    Diagnostic,
    LintModule,
    Rule,
    Severity,
    all_rules,
)
from repro.lint.suppress import parse_suppressions

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "build",
                        "dist", ".pytest_cache"})


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        else:
            raise FileNotFoundError(raw)


def lint_source(
    source: str,
    rel_path: str = "<string>",
    selected: Optional[Iterable[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one source string; the core entry point tests exercise."""
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="REP000",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    module = LintModule(rel_path=rel_path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    diagnostics: List[Diagnostic] = []
    for rule in (all_rules() if selected is None else selected):
        for diag in rule.check(module):
            if not suppressions.is_suppressed(diag.code, diag.line):
                diagnostics.append(diag)
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[str],
    selected: Optional[Iterable[Rule]] = None,
) -> List[Diagnostic]:
    """Lint every python file reachable from ``paths``."""
    chosen = list(all_rules() if selected is None else selected)
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, path.as_posix(), chosen))
    return diagnostics


def _resolve_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    def split(csv: str) -> List[str]:
        return [code.strip().upper() for code in csv.split(",") if code.strip()]

    codes = set(REGISTRY)
    if select:
        wanted = split(select)
        unknown = [c for c in wanted if c not in REGISTRY]
        if unknown:
            raise KeyError(", ".join(unknown))
        codes = set(wanted)
    if ignore:
        dropped = split(ignore)
        unknown = [c for c in dropped if c not in REGISTRY]
        if unknown:
            raise KeyError(", ".join(unknown))
        codes -= set(dropped)
    return [REGISTRY[code] for code in sorted(codes)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "reprolint: AST-based simulator-invariant checker "
            "(determinism, latency accounting, hidden state)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit",
    )
    return parser


def _print_rule_listing() -> None:
    for rule in all_rules():
        print(f"{rule.code} ({rule.name}) [{rule.severity}]")
        print(f"    {rule.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rule_listing()
        return 0
    try:
        selected = _resolve_rules(args.select, args.ignore)
    except KeyError as exc:
        print(f"unknown rule code(s): {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        diagnostics = lint_paths(args.paths, selected)
    except FileNotFoundError as exc:
        print(f"no such file or directory: {exc.args[0]}", file=sys.stderr)
        return 2
    n_files = sum(1 for _ in iter_python_files(args.paths))
    if args.format == "json":
        print(json.dumps(
            {
                "files_checked": n_files,
                "rules": [r.code for r in selected],
                "diagnostics": [d.to_json() for d in diagnostics],
            },
            indent=2,
        ))
    else:
        for diag in diagnostics:
            print(diag.render())
        summary = (
            f"{len(diagnostics)} problem(s) in {n_files} file(s)"
            if diagnostics
            else f"clean: {n_files} file(s), {len(selected)} rule(s)"
        )
        print(summary)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    return 1 if errors else 0
