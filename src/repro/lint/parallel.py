"""File-level parallel fan-out for the syntactic lint pass.

``--jobs N`` runs the per-file rules (REP0xx/REP305) over worker
processes; the flow/interprocedural pass stays in the parent — it is
keyed on the whole project and cannot be sharded by file.  Output is
byte-stable regardless of worker count because nothing here orders
anything: workers return each file's raw diagnostics keyed by path,
the parent applies suppressions, fills the cache and does the final
global sort exactly as the serial path does.

This is host-side developer tooling, not simulator code: the
determinism REP007 protects (bit-identical simulation results) is
enforced downstream by the sort/cache merge, and no simulator state
exists in the workers.
"""

# reprolint: disable-file=REP007 lint worker fan-out is host tooling; byte-stable merge in runner.lint_sources keeps output order deterministic

from __future__ import annotations

import ast
import concurrent.futures
import os
from typing import Dict, List, Sequence, Tuple

from repro.lint.diagnostics import REGISTRY, Diagnostic, LintModule

#: (rel_path, source, rule codes) -> one worker unit.
_Payload = Tuple[str, str, Tuple[str, ...]]


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 means one per CPU."""
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def check_one_file(payload: _Payload) -> Tuple[str, List[Diagnostic]]:
    """Run the named syntactic rules over one source file.

    Top-level so it pickles into worker processes; importing
    :mod:`repro.lint` (already done by any entry point, and re-done in
    spawned children importing this module's callers) populates the
    registry.  Sources are parsed in the parent first, so a syntax
    error here cannot happen; a defensive empty result keeps a racing
    edit from wedging a worker.
    """
    rel_path, source, codes = payload
    import repro.lint  # noqa: F401  (spawn-start workers need the registry)
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError:
        return rel_path, []
    module = LintModule(rel_path=rel_path, source=source, tree=tree)
    diagnostics: List[Diagnostic] = []
    for code in codes:
        rule = REGISTRY.get(code)
        if rule is not None:
            diagnostics.extend(rule.check(module))
    return rel_path, diagnostics


def check_files_parallel(
    files: Sequence[Tuple[str, str]],
    codes: Sequence[str],
    jobs: int,
) -> Dict[str, List[Diagnostic]]:
    """Fan ``files`` (rel_path, source) over ``jobs`` worker processes.

    Returns the same per-file diagnostic lists the serial loop
    produces; callers merge/suppress/sort, so worker completion order
    never reaches the output.
    """
    payloads: List[_Payload] = [
        (rel_path, source, tuple(codes)) for rel_path, source in files
    ]
    jobs = min(resolve_jobs(jobs), max(len(payloads), 1))
    results: Dict[str, List[Diagnostic]] = {}
    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            rel_path, diags = check_one_file(payload)
            results[rel_path] = diags
        return results
    chunk = max(1, len(payloads) // (jobs * 4))
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        for rel_path, diags in pool.map(
            check_one_file, payloads, chunksize=chunk
        ):
            results[rel_path] = diags
    return results
