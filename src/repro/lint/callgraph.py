"""Module-level symbol tables and a cross-module call graph.

The flow rules need to see *through* module boundaries: a latency
helper defined in ``repro.sim`` and called from an attack, a campaign
task function whose inner loop lives three imports away.  This module
builds, from nothing but the parsed sources handed to one lint run:

* a :class:`ModuleTable` per file — top-level functions, class methods
  (``Class.method`` qualnames, with ``Class`` itself resolving to its
  ``__init__``), import aliases, and a classification of every
  module-level assignment (mutable literal / RNG / open file handle);
* a :class:`LintProject` — the tables keyed by dotted module name, a
  dotted-name resolver for call expressions (``helper(...)``,
  ``mod.helper(...)``, ``pkg.mod.Class(...)``, ``self.method(...)``),
  and a breadth-first :meth:`LintProject.reachable` walk that follows
  resolvable call edges, honouring function-local imports (the
  repository's cycle-avoidance idiom).

Resolution is deliberately conservative: a call that cannot be resolved
statically (a method on an arbitrary object, a callable passed as a
value) simply contributes no edge.  Flow rules treat unresolved calls
as opaque.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import LintModule
from repro.lint.rules import dotted_name


class StateKind(enum.Enum):
    """What a module-level assignment binds, as far as REP103/REP203 care."""

    MUTABLE = "mutable"  #: list/dict/set literal or mutable constructor
    RNG = "rng"  #: a numpy Generator constructed at import time
    FILE = "file"  #: an ``open(...)`` handle held at module level
    FORK = "fork"  #: a ``multiprocessing.get_context("fork")`` context
    OTHER = "other"

    def __str__(self) -> str:
        return self.value


_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque",
     "Counter", "OrderedDict"}
)
_RNG_CALLS = frozenset({"default_rng", "as_generator", "RandomState",
                        "Generator"})


def classify_value(value: ast.expr) -> StateKind:
    """Classify one module-level initializer expression."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return StateKind.MUTABLE
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        leaf = dotted.split(".")[-1] if dotted else None
        if leaf in _MUTABLE_CALLS:
            return StateKind.MUTABLE
        if leaf in _RNG_CALLS:
            return StateKind.RNG
        if leaf == "open":
            return StateKind.FILE
        if (leaf == "get_context" and value.args
                and isinstance(value.args[0], ast.Constant)
                and value.args[0].value == "fork"):
            return StateKind.FORK
    return StateKind.OTHER


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a file path (``src/repro/x.py`` -> ``repro.x``).

    A leading ``src`` component is dropped so the names line up with the
    import statements in the tree; anything else (``examples/foo.py``)
    keeps its path-derived name, which only has to be *consistent*.
    """
    parts = list(PurePosixPath(rel_path.replace("\\", "/")).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    while parts and parts[0] in ("src", ".", ".."):
        parts.pop(0)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One statically known function or method."""

    modname: str
    qualname: str  #: ``helper`` or ``Class.method``
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    module: LintModule

    @property
    def fq(self) -> str:
        return f"{self.modname}.{self.qualname}"

    @property
    def class_name(self) -> Optional[str]:
        if "." in self.qualname:
            return self.qualname.split(".", 1)[0]
        return None


@dataclass
class ModuleState:
    """One module-level binding and its classification."""

    name: str
    kind: StateKind
    node: ast.stmt


@dataclass
class ModuleTable:
    """Symbol table of one module."""

    modname: str
    module: LintModule
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local alias -> fully qualified dotted target.
    imports: Dict[str, str] = field(default_factory=dict)
    state: Dict[str, ModuleState] = field(default_factory=dict)
    #: class name -> attribute -> declared type (a dotted annotation
    #: string), harvested from annotated ``__init__`` parameters stored
    #: on ``self`` — lets ``self.store.append(...)`` resolve.  PR 9
    #: extends the harvest to constructor assignments
    #: (``self.outer = DynamicFeistelMapper(...)``) and list
    #: comprehensions of constructors (``self.regions = [SRRegion(...)
    #: for ...]`` records the *element* type), which is what lets the
    #: address-domain rules type ``self.outer.translate(...)`` calls.
    attr_types: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class name -> base-class dotted names as written (unexpanded;
    #: run them through :func:`expand_dotted` to follow imports).
    class_bases: Dict[str, List[str]] = field(default_factory=dict)


def _collect_imports(
    stmts: Iterable[ast.stmt], into: Dict[str, str]
) -> None:
    for stmt in stmts:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    into[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; dotted call names are
                    # resolved against full module names directly.
                    into[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                continue  # repo uses absolute imports; skip relative ones
            base = stmt.module or ""
            for alias in stmt.names:
                bound = alias.asname or alias.name
                into[bound] = f"{base}.{alias.name}" if base else alias.name


def local_imports(fn: ast.AST) -> Dict[str, str]:
    """Import aliases established *inside* one function body."""
    table: Dict[str, str] = {}
    stmts = [n for n in ast.walk(fn)
             if isinstance(n, (ast.Import, ast.ImportFrom))]
    _collect_imports(stmts, table)
    return table


def _annotation_dotted(node: ast.expr) -> Optional[str]:
    """Dotted class name of an annotation (``Optional[X]`` unwraps to X)."""
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base in ("Optional", "typing.Optional"):
            return _annotation_dotted(node.slice)
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if all(p.isidentifier() for p in text.split(".")):
            return text
        return None
    return dotted_name(node)


def _ctor_dotted(value: ast.expr) -> Optional[str]:
    """Dotted class name when ``value`` is a constructor call.

    ``SRRegion(...)`` and ``[SRRegion(...) for r in ...]`` both resolve
    to ``SRRegion`` (for the latter, the element type); anything whose
    callee does not look like a class (capitalised leaf) returns None.
    """
    if isinstance(value, ast.ListComp):
        value = value.elt
    if not isinstance(value, ast.Call):
        return None
    dotted = dotted_name(value.func)
    if dotted is None:
        return None
    leaf = dotted.split(".")[-1]
    if leaf[:1].isupper():
        return dotted
    return None


def _harvest_attr_types(cls: ast.ClassDef, into: Dict[str, str]) -> None:
    """``self.x = param`` bindings in ``__init__`` whose param is annotated."""
    init = next(
        (item for item in cls.body
         if isinstance(item, ast.FunctionDef) and item.name == "__init__"),
        None,
    )
    if init is None:
        return
    param_types: Dict[str, str] = {}
    for arg in init.args.posonlyargs + init.args.args + init.args.kwonlyargs:
        if arg.annotation is not None:
            ann = _annotation_dotted(arg.annotation)
            if ann is not None:
                param_types[arg.arg] = ann
    for node in ast.walk(init):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if node.annotation is not None:
                ann = _annotation_dotted(node.annotation)
                if (ann is not None and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    into.setdefault(target.attr, ann)
                continue
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Name)
                and value.id in param_types):
            into.setdefault(target.attr, param_types[value.id])
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and value is not None):
            ctor = _ctor_dotted(value)
            if ctor is not None:
                into.setdefault(target.attr, ctor)


def _record_state(
    table: ModuleTable, name: str, value: ast.expr, stmt: ast.stmt
) -> None:
    """Record one module-level binding; a classified kind is never
    downgraded to OTHER by a later rebinding (``x = ctx`` in ``try``,
    ``x = None`` in ``except`` must stay a fork context)."""
    kind = classify_value(value)
    existing = table.state.get(name)
    if existing is not None and kind is StateKind.OTHER \
            and existing.kind is not StateKind.OTHER:
        return
    table.state[name] = ModuleState(name, kind, stmt)


def _scan_body(
    table: ModuleTable, stmts: Sequence[ast.stmt], depth: int = 0
) -> None:
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.functions[stmt.name] = FunctionInfo(
                table.modname, stmt.name, stmt, table.module
            )
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{stmt.name}.{item.name}"
                    table.functions[qual] = FunctionInfo(
                        table.modname, qual, item, table.module
                    )
            attrs = table.attr_types.setdefault(stmt.name, {})
            _harvest_attr_types(stmt, attrs)
            table.class_bases[stmt.name] = [
                d for d in (dotted_name(b) for b in stmt.bases)
                if d is not None
            ]
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    _record_state(table, target.id, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                _record_state(table, stmt.target.id, stmt.value, stmt)
        elif isinstance(stmt, ast.Try) and depth < 2:
            # Module-level feature probes (``try: ctx = get_context("fork")
            # except ValueError: ctx = None``) still bind module state.
            for sub in (stmt.body, stmt.orelse, stmt.finalbody):
                _scan_body(table, sub, depth + 1)
            for handler in stmt.handlers:
                _scan_body(table, handler.body, depth + 1)
        elif isinstance(stmt, ast.If) and depth < 2:
            _scan_body(table, stmt.body, depth + 1)
            _scan_body(table, stmt.orelse, depth + 1)


def build_table(module: LintModule) -> ModuleTable:
    """Build the symbol table of one parsed module."""
    table = ModuleTable(module_name_for(module.rel_path), module)
    _collect_imports(
        (s for s in module.tree.body
         if isinstance(s, (ast.Import, ast.ImportFrom))),
        table.imports,
    )
    _scan_body(table, module.tree.body)
    return table


def expand_dotted(
    table: ModuleTable,
    dotted: str,
    extra: Optional[Dict[str, str]] = None,
) -> str:
    """Expand the leading alias of a dotted name through imports.

    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` when
    the module holds ``import numpy as np``; a name with no matching
    alias comes back unchanged.  This is the one shared notion of "what
    fully-qualified thing does this call name", used by every rule that
    must classify calls whose targets are *not* in the linted tree.
    """
    head, _, rest = dotted.partition(".")
    target = None
    if extra:
        target = extra.get(head)
    if target is None:
        target = table.imports.get(head)
    if target is None or target == head:
        return dotted
    return f"{target}.{rest}" if rest else target


@dataclass
class CallSite:
    """One resolved call edge, for path reporting."""

    caller: FunctionInfo
    callee: FunctionInfo
    node: ast.Call


class LintProject:
    """All modules of one lint run, cross-referenced."""

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules = list(modules)
        self.tables: Dict[str, ModuleTable] = {}
        self.by_path: Dict[str, ModuleTable] = {}
        for module in self.modules:
            table = build_table(module)
            self.tables[table.modname] = table
            self.by_path[module.rel_path] = table
        #: Memoisation slot for :class:`repro.lint.summaries.SummaryTable`
        #: (typed loosely to avoid a circular import).
        self.summary_cache: Optional[object] = None
        #: Memoisation slots for the array-abstraction and address-domain
        #: layers (:mod:`repro.lint.arrayabs`, :mod:`repro.lint.domains`).
        self.array_summary_cache: Optional[object] = None
        self.domain_summary_cache: Optional[object] = None

    # -- lookup ------------------------------------------------------

    def function(self, fq: str, _depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve ``pkg.mod.helper`` / ``pkg.mod.Class.method`` /
        ``pkg.mod.Class`` (the latter to its ``__init__``).

        Re-exports are chased: when a package ``__init__`` merely
        imports the symbol, resolution follows the import (bounded
        depth, cycles cut off).
        """
        if _depth > 5:
            return None
        parts = fq.split(".")
        for split in range(len(parts) - 1, 0, -1):
            modname = ".".join(parts[:split])
            table = self.tables.get(modname)
            if table is None:
                continue
            rest = parts[split:]
            qual = ".".join(rest)
            info = table.functions.get(qual)
            if info is not None:
                return info
            ctor = table.functions.get(f"{qual}.__init__")
            if ctor is not None:
                return ctor
            target = table.imports.get(rest[0])
            if target is not None and target != fq:
                tail = parts[split + 1:]
                return self.function(".".join([target] + tail), _depth + 1)
        return None

    def resolve_call(
        self,
        table: ModuleTable,
        call: ast.Call,
        extra_imports: Optional[Dict[str, str]] = None,
        self_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a call expression to a known function, if possible."""
        return self.resolve_name(
            table, call.func, extra_imports, self_class
        )

    def resolve_name(
        self,
        table: ModuleTable,
        func: ast.expr,
        extra_imports: Optional[Dict[str, str]] = None,
        self_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if (self_class is not None and len(parts) == 2
                and parts[0] in ("self", "cls")):
            info = table.functions.get(f"{self_class}.{parts[1]}")
            if info is not None:
                return info
        if (self_class is not None and len(parts) == 3
                and parts[0] in ("self", "cls")):
            # ``self.store.append(...)``: follow the attribute's declared
            # type (harvested from the annotated __init__ parameter).
            ann = table.attr_types.get(self_class, {}).get(parts[1])
            if ann is not None:
                expanded = expand_dotted(table, ann, extra_imports)
                info = self.function(f"{expanded}.{parts[2]}")
                if info is not None:
                    return info
        aliases = dict(table.imports)
        if extra_imports:
            aliases.update(extra_imports)
        head, rest = parts[0], parts[1:]
        if not rest:
            # Bare name: local function first, then an imported symbol.
            info = table.functions.get(head)
            if info is not None:
                return info
            ctor = table.functions.get(f"{head}.__init__")
            if ctor is not None:
                return ctor
            target = aliases.get(head)
            if target is not None and target != head:
                return self.function(target)
            return None
        target = aliases.get(head)
        if target is not None:
            return self.function(".".join([target] + rest))
        # Fully dotted module path used directly (``import a.b.c``).
        return self.function(dotted)

    # -- traversal ---------------------------------------------------

    def iter_calls(
        self, info: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, Optional[FunctionInfo]]]:
        """Every call inside ``info``, with its resolution (or None)."""
        table = self.by_path[info.module.rel_path]
        extra = local_imports(info.node)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(
                    table, node, extra, info.class_name
                )

    def reachable(
        self, roots: Sequence[FunctionInfo]
    ) -> Dict[str, Tuple[FunctionInfo, Tuple[str, ...]]]:
        """BFS over resolvable call edges from ``roots``.

        Returns ``fq -> (info, path)`` where ``path`` is the chain of
        fully qualified names from a root to the function (roots map to
        a one-element path).
        """
        seen: Dict[str, Tuple[FunctionInfo, Tuple[str, ...]]] = {}
        queue: List[Tuple[FunctionInfo, Tuple[str, ...]]] = [
            (root, (root.fq,)) for root in roots
        ]
        while queue:
            info, path = queue.pop(0)
            if info.fq in seen:
                continue
            seen[info.fq] = (info, path)
            for _, callee in self.iter_calls(info):
                if callee is not None and callee.fq not in seen:
                    queue.append((callee, path + (callee.fq,)))
        return seen


def find_task_registrations(
    project: LintProject,
) -> List[Tuple[ModuleTable, ast.Call, Optional[str],
                Optional[FunctionInfo]]]:
    """Every ``register_task_kind(name, fn)`` call in the project.

    Yields ``(table, call, kind_name, target)``; ``target`` is None when
    the registered callable is not a resolvable module-level function
    (a lambda, a closure, a bound method...) — REP103 flags those.
    """
    found: List[Tuple[ModuleTable, ast.Call, Optional[str],
                      Optional[FunctionInfo]]] = []
    for table in project.tables.values():
        for node in ast.walk(table.module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or dotted.split(".")[-1] != "register_task_kind":
                continue
            kind_name: Optional[str] = None
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                kind_name = node.args[0].value
            fn_expr: Optional[ast.expr] = None
            if len(node.args) >= 2:
                fn_expr = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        fn_expr = kw.value
            target = None
            if fn_expr is not None:
                target = project.resolve_name(table, fn_expr)
            found.append((table, node, kind_name, target))
    return found
