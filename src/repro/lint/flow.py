"""Intra-procedural CFG + forward-dataflow (taint) engine for reprolint.

The flow-rule family (REP101–REP104, :mod:`repro.lint.flowrules`) needs
more than per-node pattern matching: *"is this latency value consumed on
every path?"* is a property of the control-flow graph, not of any single
AST node.  This module supplies the two reusable pieces:

* :func:`build_cfg` — a statement-level control-flow graph for one
  ``ast.FunctionDef``: ``if``/``else``, ``while``/``for`` (with
  ``break``/``continue`` and loop ``else``), ``try``/``except``/
  ``finally``, ``with``, early ``return`` and ``raise``.  Normal
  termination (returns and fall-through) reaches :attr:`CFG.exit`;
  exception exits reach the separate :attr:`CFG.raise_exit`, so
  analyses can ignore abandoned-by-exception paths.
* :class:`TaintAnalysis` — a forward *may*-analysis over that CFG.  The
  abstract state maps **taint tokens** (one per source call site) to
  the set of local names currently holding the value.  Joins are set
  unions, so "pending on *some* path into this point" is represented
  exactly; loops converge because re-executing a source statement
  regenerates the *same* token (token identity = source location).

A :class:`TaintSpec` plugs the domain in: which calls create tokens,
and which uses are interesting sinks.  Consumption is conservative —
any load of a holding name (argument, arithmetic, comparison, return,
subscript, closure capture...) consumes the token on that path; plain
``y = x`` aliasing transfers the token instead, and rebinding a name
drops its holdings without consuming them.  Assigning to ``_`` (or any
underscore-prefixed name) is an explicit discard.

Everything is stdlib ``ast``; there is nothing to install.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Location of the source call that minted a token: ``(line, col)``.
TokenSite = Tuple[int, int]

#: Abstract state: pending token -> names currently holding its value.
#: A token with an empty holder set can never be consumed again on this
#: path — its value was overwritten without a use.
State = Dict[TokenSite, FrozenSet[str]]


# ------------------------------------------------------------------ CFG


@dataclass
class Block:
    """One CFG node: a single statement (or a synthetic entry/exit)."""

    bid: int
    #: ``entry`` / ``exit`` / ``raise`` / ``stmt`` / ``test`` (If, While,
    #: Match subject) / ``for`` / ``with`` / ``handler``.
    kind: str
    node: Optional[ast.AST]
    succs: List[int] = field(default_factory=list)

    def link(self, succ: int) -> None:
        if succ not in self.succs:
            self.succs.append(succ)


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    fn: ast.AST
    blocks: Dict[int, Block]
    entry: int
    exit: int
    #: Synthetic sink for ``raise`` paths (and uncaught exceptions out of
    #: ``try`` bodies).  Kept apart from :attr:`exit` so every-path rules
    #: do not flag values abandoned by an error bail-out.
    raise_exit: int

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def paths_to_exit(self) -> int:
        """Count distinct acyclic entry->exit paths (test introspection)."""
        seen: Set[int] = set()

        def walk(bid: int) -> int:
            if bid == self.exit:
                return 1
            if bid in seen:
                return 0
            seen.add(bid)
            total = sum(walk(s) for s in self.blocks[bid].succs)
            seen.discard(bid)
            return total

        return walk(self.entry)


@dataclass
class _Loop:
    header: int
    breaks: List[int] = field(default_factory=list)


class _CFGBuilder:
    """Recursive-descent CFG construction; one instance per function."""

    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        self.blocks: Dict[int, Block] = {}
        self._next = 0
        self.entry = self._new("entry", None).bid
        self.exit = self._new("exit", None).bid
        self.raise_exit = self._new("raise", None).bid
        self._loops: List[_Loop] = []
        #: Innermost active ``except`` clause entries: any statement
        #: inside the guarded body may transfer there.
        self._handlers: List[List[int]] = []

    # -- plumbing ----------------------------------------------------

    def _new(self, kind: str, node: Optional[ast.AST]) -> Block:
        block = Block(self._next, kind, node)
        self.blocks[self._next] = block
        self._next += 1
        return block

    def _connect(self, preds: Iterable[int], succ: int) -> None:
        for pred in preds:
            self.blocks[pred].link(succ)

    def _stmt_block(
        self, kind: str, node: ast.AST, preds: Sequence[int]
    ) -> Block:
        block = self._new(kind, node)
        self._connect(preds, block.bid)
        if self._handlers:
            for handler in self._handlers[-1]:
                block.link(handler)
        return block

    def _raise_targets(self) -> List[int]:
        return self._handlers[-1] if self._handlers else [self.raise_exit]

    # -- construction ------------------------------------------------

    def build(self) -> CFG:
        body = getattr(self.fn, "body", [])
        frontier = self._body(body, [self.entry])
        self._connect(frontier, self.exit)
        return CFG(self.fn, self.blocks, self.entry, self.exit,
                   self.raise_exit)

    def _body(
        self, stmts: Sequence[ast.stmt], preds: Sequence[int]
    ) -> List[int]:
        frontier = list(preds)
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._statement(stmt, frontier)
        return frontier

    def _statement(
        self, stmt: ast.stmt, preds: Sequence[int]
    ) -> List[int]:
        if isinstance(stmt, ast.Return):
            block = self._stmt_block("stmt", stmt, preds)
            block.link(self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            block = self._stmt_block("stmt", stmt, preds)
            for target in self._raise_targets():
                block.link(target)
            return []
        if isinstance(stmt, ast.Break):
            block = self._stmt_block("stmt", stmt, preds)
            if self._loops:
                self._loops[-1].breaks.append(block.bid)
            return []
        if isinstance(stmt, ast.Continue):
            block = self._stmt_block("stmt", stmt, preds)
            if self._loops:
                block.link(self._loops[-1].header)
            return []
        if isinstance(stmt, ast.If):
            test = self._stmt_block("test", stmt, preds)
            then_out = self._body(stmt.body, [test.bid])
            if stmt.orelse:
                else_out = self._body(stmt.orelse, [test.bid])
            else:
                else_out = [test.bid]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            kind = "test" if isinstance(stmt, ast.While) else "for"
            header = self._stmt_block(kind, stmt, preds)
            loop = _Loop(header.bid)
            self._loops.append(loop)
            body_out = self._body(stmt.body, [header.bid])
            self._connect(body_out, header.bid)
            self._loops.pop()
            if stmt.orelse:
                out = self._body(stmt.orelse, [header.bid])
            else:
                out = [header.bid]
            return out + loop.breaks
        if isinstance(stmt, ast.Try):
            handler_blocks = [
                self._stmt_block("handler", handler, [])
                for handler in stmt.handlers
            ]
            self._handlers.append([b.bid for b in handler_blocks])
            body_out = self._body(stmt.body, preds)
            self._handlers.pop()
            if not handler_blocks:
                # try/finally with no except: body may still raise past it.
                pass
            if stmt.orelse:
                body_out = self._body(stmt.orelse, body_out)
            handler_out: List[int] = []
            for block, handler in zip(handler_blocks, stmt.handlers):
                handler_out.extend(self._body(handler.body, [block.bid]))
            merged = body_out + handler_out
            if stmt.finalbody:
                return self._body(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            block = self._stmt_block("with", stmt, preds)
            return self._body(stmt.body, [block.bid])
        match_cls = getattr(ast, "Match", None)
        if match_cls is not None and isinstance(stmt, match_cls):
            subject = self._stmt_block("test", stmt, preds)
            out: List[int] = [subject.bid]
            for case in stmt.cases:
                out.extend(self._body(case.body, [subject.bid]))
            return out
        # Plain statement (including nested def/class, treated opaquely).
        block = self._stmt_block("stmt", stmt, preds)
        return [block.bid]


def build_cfg(fn: ast.AST) -> CFG:
    """Build the statement-level CFG of one function definition."""
    return _CFGBuilder(fn).build()


def iter_functions(tree: ast.AST) -> Iterable[ast.AST]:
    """Every ``def``/``async def`` in ``tree``, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ------------------------------------------------------- dataflow engine


def join_states(states: Sequence[State]) -> State:
    """May-join: union of pending tokens, union of holder sets."""
    merged: Dict[TokenSite, FrozenSet[str]] = {}
    for state in states:
        for site, holders in state.items():
            prev = merged.get(site)
            merged[site] = holders if prev is None else prev | holders
    return merged


def run_forward(
    cfg: CFG,
    transfer: Callable[[Block, State], State],
) -> Dict[int, State]:
    """Worklist fixpoint; returns the state at *entry* of every block."""
    in_states: Dict[int, State] = {cfg.entry: {}}
    worklist: List[int] = [cfg.entry]
    while worklist:
        bid = worklist.pop()
        block = cfg.block(bid)
        out = transfer(block, in_states.get(bid, {}))
        for succ in block.succs:
            old = in_states.get(succ)
            new = out if old is None else join_states([old, out])
            if new != old:
                in_states[succ] = new
                worklist.append(succ)
    return in_states


# ----------------------------------------------------------- taint spec


@dataclass
class TaintToken:
    """Metadata of one taint source occurrence."""

    site: TokenSite
    desc: str
    first_holder: Optional[str] = None


@dataclass
class SinkHit:
    """One tainted value reaching a spec-designated sink."""

    token: TaintToken
    node: ast.AST
    detail: str


@dataclass
class PositionalHit:
    """One tainted argument of a call, with its slot."""

    #: Positional index, or ``None`` for a keyword argument.
    pos: Optional[int]
    #: Keyword name, or ``None`` for a positional argument.
    kw: Optional[str]
    token: TaintToken


class TaintSpec:
    """Domain plug-in: what is a source, and which uses are sinks.

    Subclasses override :meth:`source`; the sink hooks default to
    "plain consumption, nothing to report" so every-path rules like
    REP101 only need sources.
    """

    def source(self, call: ast.Call) -> Optional[str]:
        """Return a description when ``call`` mints a taint token."""
        raise NotImplementedError

    def on_bind(
        self, name: str, tokens: Sequence[TaintToken], node: ast.AST
    ) -> Optional[str]:
        """Sink check when a tainted value is bound to ``name``."""
        return None

    def on_call_arg(
        self,
        call: ast.Call,
        tokens: Sequence[TaintToken],
        node: ast.AST,
    ) -> Optional[str]:
        """Sink check when a tainted value is passed to ``call``."""
        return None

    def on_binop(
        self,
        binop: ast.BinOp,
        tokens: Sequence[TaintToken],
        other: ast.AST,
    ) -> Optional[str]:
        """Sink check when a tainted value meets ``other`` arithmetically."""
        return None

    def on_call_pos(
        self,
        call: ast.Call,
        hits: Sequence["PositionalHit"],
    ) -> Optional[str]:
        """Sink check with *positions*: which arg slots carry taint.

        Unlike :meth:`on_call_arg` (any tainted argument), this hands
        the spec one :class:`PositionalHit` per tainted argument with
        its positional index or keyword name, so interprocedural rules
        can match against a callee summary's parameter sets.
        """
        return None

    def on_mix(
        self,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
        left_tokens: Sequence[TaintToken],
        right_tokens: Sequence[TaintToken],
    ) -> Optional[str]:
        """Sink check when two operands meet in a BinOp or Compare.

        Fired once per operand pair (chained comparisons pair up
        adjacent operands) whenever at least one side carries tokens;
        either token list may be empty.  Lets a spec detect *mixing* of
        taint dimensions — e.g. wall-clock arithmetic against a
        monotonic deadline — which the single-sided hooks cannot see.
        """
        return None

    def passthrough_params(
        self, call: ast.Call
    ) -> Optional[FrozenSet[int]]:
        """Caller-side positional indices that pass through ``call``.

        When a callee summary proves an argument flows unmodified to
        the return value, the engine treats ``y = f(x)`` like the alias
        ``y = x`` for that argument: the token survives the call with
        the assignment targets added as holders, instead of being
        consumed by it.  Return ``None`` (or an empty set) for ordinary
        consuming calls.
        """
        return None


_DISCARD_PREFIX = "_"


def _is_discard_name(name: str) -> bool:
    return name.startswith(_DISCARD_PREFIX)


class TaintAnalysis:
    """Run one :class:`TaintSpec` over one function CFG.

    Two passes: a worklist fixpoint to stabilise the per-block entry
    states, then one deterministic reporting sweep that replays the
    transfer function with sink hooks armed.  ``pending_at_exit`` holds
    the tokens that reach the *normal* exit unconsumed on at least one
    path (exception exits are deliberately ignored).
    """

    def __init__(self, cfg: CFG, spec: TaintSpec) -> None:
        self.cfg = cfg
        self.spec = spec
        self.tokens: Dict[TokenSite, TaintToken] = {}
        self.sink_hits: List[SinkHit] = []
        self._recording = False

    # -- public API --------------------------------------------------

    def run(self) -> "TaintAnalysis":
        in_states = run_forward(self.cfg, self._transfer)
        self._recording = True
        for bid in sorted(in_states):
            self._transfer(self.cfg.block(bid), in_states[bid])
        self._recording = False
        exit_state = in_states.get(self.cfg.exit, {})
        self.pending_at_exit: List[TaintToken] = [
            self.tokens[site] for site in sorted(exit_state)
            if site in self.tokens
        ]
        return self

    # -- transfer function -------------------------------------------

    def _transfer(self, block: Block, state: State) -> State:
        node = block.node
        if node is None:
            return state
        state = dict(state)
        if block.kind == "test":
            test = getattr(node, "test", None) or getattr(node, "subject", None)
            if test is not None:
                self._consume(state, test)
            return state
        if block.kind == "for":
            assert isinstance(node, (ast.For, ast.AsyncFor))
            self._consume(state, node.iter)
            self._kill_target(state, node.target)
            return state
        if block.kind == "with":
            assert isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items:
                self._consume(state, item.context_expr)
                if item.optional_vars is not None:
                    self._kill_target(state, item.optional_vars)
            return state
        if block.kind == "handler":
            assert isinstance(node, ast.ExceptHandler)
            if node.name:
                self._kill_name(state, node.name)
            return state
        return self._transfer_stmt(node, state)

    def _transfer_stmt(self, stmt: ast.AST, state: State) -> State:
        if isinstance(stmt, ast.Assign):
            self._assign(state, stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(state, [stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            # Read-modify-write: accumulating *into* a name is a use of
            # both sides (``total += latency`` is the canonical sink).
            target = stmt.target
            if (self._recording and isinstance(target, ast.Name)
                    and isinstance(stmt.value, ast.Name)):
                sites = self._sites_held_by(state, stmt.value.id)
                self._report_bind([target.id], sites, stmt)
            self._consume(state, stmt.value)
            if isinstance(target, ast.Name):
                self._consume_name(state, target.id, target)
            else:
                self._consume(state, target)
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Call):
                desc = self.spec.source(value)
                if desc is not None:
                    self._consume_children(state, value)
                    if not self._skip_bare_source(value):
                        self._mint(state, value, desc, holder=None)
                    return state
            self._consume(state, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._consume(state, stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                self._consume(state, child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda, ast.ClassDef)):
            # A nested scope may run later and read captured locals:
            # treat every free-name load as a (conservative) use.
            self._consume(state, stmt)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass,
                               ast.Global, ast.Nonlocal)):
            pass
        else:
            self._consume(state, stmt)
        return state

    # -- assignment --------------------------------------------------

    def _assign(
        self, state: State, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        name_targets = [t.id for t in targets if isinstance(t, ast.Name)]
        other_targets = [t for t in targets if not isinstance(t, ast.Name)]
        for target in other_targets:
            # Stored into an attribute/subscript/tuple: the value escapes
            # the local frame — consume uses inside the target expression
            # and kill any plain names nested in tuple targets.
            self._kill_target(state, target)

        if isinstance(value, ast.Name) and not other_targets:
            # Pure alias: the token flows to the new name(s).
            sites = self._sites_held_by(state, value.id)
            if any(_is_discard_name(n) for n in name_targets):
                # ``_ = latency`` — explicit discard consumes the value.
                for site in sites:
                    state.pop(site, None)
                sites = []
            for name in name_targets:
                self._kill_name(state, name)
            for site in sites:
                holders = state.get(site)
                if holders is not None:
                    kept = [n for n in name_targets
                            if not _is_discard_name(n)]
                    state[site] = holders | frozenset(kept)
            if sites and name_targets:
                self._report_bind(name_targets, sites, value)
            return

        if isinstance(value, ast.Call):
            desc = self.spec.source(value)
            if desc is not None:
                self._consume_children(state, value)
                for name in name_targets:
                    self._kill_name(state, name)
                holder = next(
                    (n for n in name_targets if not _is_discard_name(n)),
                    None,
                )
                if holder is not None:
                    site = self._mint(state, value, desc, holder)
                    state[site] = frozenset(
                        n for n in name_targets if not _is_discard_name(n)
                    )
                    self._report_bind(name_targets, [site], value)
                # Otherwise every target was a discard (``_ = ...``) or
                # an escaping store (``self.x = ...``): consumed.
                return
        passed = self._passed_through(state, value)
        self._consume(state, value)
        for name in name_targets:
            self._kill_name(state, name)
        # A source call nested inside the value expression taints the
        # target too (``elapsed = time.perf_counter() - start``).
        holders = frozenset(
            n for n in name_targets if not _is_discard_name(n)
        )
        if passed and holders:
            # ``y = scaled(lat)`` with a passthrough summary for the
            # callee: the token survives the call, held by both the
            # original argument name and the new target(s).  (When every
            # target is a discard the consume above stands — ``_ = ...``
            # is an explicit drop.)
            for site, prior in passed.items():
                state[site] = prior | holders
            self._report_bind(name_targets, sorted(passed), value)
        if holders:
            sites: List[TokenSite] = []
            for child in ast.walk(value):
                if not isinstance(child, ast.Call):
                    continue
                desc = self.spec.source(child)
                if desc is None:
                    continue
                site = self._mint(state, child, desc, min(holders))
                state[site] = holders
                sites.append(site)
            if sites:
                self._report_bind(name_targets, sites, value)

    def _passed_through(
        self, state: State, value: ast.expr
    ) -> Dict[TokenSite, FrozenSet[str]]:
        """Token sites that survive ``value`` via callee passthrough."""
        if not isinstance(value, ast.Call):
            return {}
        through = self.spec.passthrough_params(value)
        if not through:
            return {}
        passed: Dict[TokenSite, FrozenSet[str]] = {}
        for pos, arg in enumerate(value.args):
            if pos not in through or not isinstance(arg, ast.Name):
                continue
            for site in self._sites_held_by(state, arg.id):
                passed[site] = state[site]
        return passed

    def _report_bind(
        self,
        names: Sequence[str],
        sites: Sequence[TokenSite],
        node: ast.AST,
    ) -> None:
        if not self._recording:
            return
        tokens = [self.tokens[s] for s in sites if s in self.tokens]
        if not tokens:
            return
        for name in names:
            detail = self.spec.on_bind(name, tokens, node)
            if detail is not None:
                self.sink_hits.append(SinkHit(tokens[0], node, detail))

    # -- consumption -------------------------------------------------

    def _consume(self, state: State, expr: ast.AST) -> None:
        """Every Name load in ``expr`` consumes the tokens it holds."""
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._visit_call_sinks(state, sub)
            elif isinstance(sub, ast.BinOp):
                self._visit_binop_sinks(state, sub)
            elif isinstance(sub, ast.Compare):
                self._visit_compare_sinks(state, sub)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self._consume_name(state, sub.id, sub)

    def _consume_children(self, state: State, call: ast.Call) -> None:
        """Consume uses inside a source call's arguments."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._consume(state, arg)

    def _consume_name(
        self, state: State, name: str, node: ast.AST
    ) -> None:
        for site in self._sites_held_by(state, name):
            state.pop(site, None)

    def _arg_tokens(
        self, state: State, arg: ast.expr
    ) -> List[TaintToken]:
        """Tokens carried by one argument: held (Name) or fresh (Call)."""
        if isinstance(arg, ast.Name):
            return [
                self.tokens[site]
                for site in self._sites_held_by(state, arg.id)
                if site in self.tokens
            ]
        if isinstance(arg, ast.Call):
            desc = self.spec.source(arg)
            if desc is not None:
                return [TaintToken((arg.lineno, arg.col_offset), desc)]
        return []

    def _visit_call_sinks(self, state: State, call: ast.Call) -> None:
        if not self._recording:
            return
        tokens: List[TaintToken] = []
        hits: List[PositionalHit] = []
        for pos, arg in enumerate(call.args):
            for token in self._arg_tokens(state, arg):
                tokens.append(token)
                hits.append(PositionalHit(pos, None, token))
        for kw in call.keywords:
            for token in self._arg_tokens(state, kw.value):
                tokens.append(token)
                hits.append(PositionalHit(None, kw.arg, token))
        if not tokens:
            return
        detail = self.spec.on_call_arg(call, tokens, call)
        if detail is not None:
            self.sink_hits.append(SinkHit(tokens[0], call, detail))
        detail = self.spec.on_call_pos(call, hits)
        if detail is not None:
            self.sink_hits.append(SinkHit(hits[0].token, call, detail))

    def _visit_binop_sinks(self, state: State, binop: ast.BinOp) -> None:
        if not self._recording:
            return
        for side, other in ((binop.left, binop.right),
                            (binop.right, binop.left)):
            if not isinstance(side, ast.Name):
                continue
            tokens = [
                self.tokens[site]
                for site in self._sites_held_by(state, side.id)
                if site in self.tokens
            ]
            if not tokens:
                continue
            detail = self.spec.on_binop(binop, tokens, other)
            if detail is not None:
                self.sink_hits.append(SinkHit(tokens[0], binop, detail))
        self._visit_mix(state, binop, binop.left, binop.right)

    def _visit_compare_sinks(
        self, state: State, compare: ast.Compare
    ) -> None:
        if not self._recording:
            return
        operands = [compare.left] + list(compare.comparators)
        for left, right in zip(operands, operands[1:]):
            self._visit_mix(state, compare, left, right)

    def _visit_mix(
        self,
        state: State,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> None:
        left_tokens = self._arg_tokens(state, left)
        right_tokens = self._arg_tokens(state, right)
        if not left_tokens and not right_tokens:
            return
        detail = self.spec.on_mix(
            node, left, right, left_tokens, right_tokens
        )
        if detail is not None:
            anchor = (left_tokens or right_tokens)[0]
            self.sink_hits.append(SinkHit(anchor, node, detail))

    # -- state helpers -----------------------------------------------

    def _sites_held_by(self, state: State, name: str) -> List[TokenSite]:
        return [site for site, holders in state.items() if name in holders]

    def _kill_name(self, state: State, name: str) -> None:
        for site, holders in list(state.items()):
            if name in holders:
                state[site] = holders - {name}

    def _kill_target(self, state: State, target: ast.AST) -> None:
        """Rebinding kills Store names; Load names inside (subscript
        indices, attribute bases) are ordinary reads and consume."""
        for sub in ast.walk(target):
            if not isinstance(sub, ast.Name):
                continue
            if isinstance(sub.ctx, ast.Store):
                self._kill_name(state, sub.id)
            else:
                self._consume_name(state, sub.id, sub)

    def _mint(
        self,
        state: State,
        call: ast.Call,
        desc: str,
        holder: Optional[str],
    ) -> TokenSite:
        site = (call.lineno, call.col_offset)
        token = self.tokens.get(site)
        if token is None:
            token = TaintToken(site, desc, holder)
            self.tokens[site] = token
        state[site] = frozenset([holder] if holder else [])
        return site

    def _skip_bare_source(self, call: ast.Call) -> bool:
        """Spec hook: suppress token minting for a bare-Expr source."""
        skip = getattr(self.spec, "skip_bare_expr_source", None)
        if skip is None:
            return False
        return bool(skip(call))


def analyze_function(fn: ast.AST, spec: TaintSpec) -> TaintAnalysis:
    """CFG + fixpoint + reporting sweep for one function."""
    return TaintAnalysis(build_cfg(fn), spec).run()
