"""The simulator-invariant rules (REP001–REP007).

Every result this repository reproduces rests on two properties the test
suite cannot economically check: the simulator is **bit-deterministic
under a seed**, and it **never silently drops latency** on the
attacker-observable write path.  These rules encode those invariants —
plus three classic Python footguns that erode them indirectly, and the
architectural rule that parallelism lives only in ``repro.campaign`` —
as AST checks.

See ``docs/lint.md`` for the rationale, examples and suppression syntax
of each rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic, LintModule, Rule, register


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains to a string; None otherwise."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _identifier(node: ast.AST) -> Optional[str]:
    """Final identifier of a Name/Attribute (``x.elapsed_ns`` -> ``elapsed_ns``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# --------------------------------------------------------------- REP001


@register
class UnseededRandomness(Rule):
    """No unseeded or global-state randomness outside ``repro.util.rng``.

    A single ``np.random.rand()`` or no-argument ``default_rng()`` makes a
    run irreproducible: the RTA success rates, lifetime curves and fault
    campaigns can no longer be replayed bit-for-bit from a seed.  All
    stochastic code must thread a seed/Generator through
    ``repro.util.rng.as_generator``.
    """

    code = "REP001"
    name = "unseeded-randomness"

    #: ``default_rng``-style constructors that are fine *with* a seed.
    _SEEDABLE = {"default_rng", "as_generator", "RandomState", "Generator"}

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        if module.is_rng_module:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.diagnostic(
                            module, node,
                            "import of stdlib 'random' (unseedable global "
                            "state); use repro.util.rng.as_generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.diagnostic(
                        module, node,
                        "import from stdlib 'random' (unseedable global "
                        "state); use repro.util.rng.as_generator",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(
        self, module: LintModule, node: ast.Call
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        seeded = bool(node.args) or bool(node.keywords)
        if dotted is None:
            return
        root = dotted.split(".")[0]
        leaf = dotted.split(".")[-1]
        if dotted.startswith(("np.random.", "numpy.random.")):
            if leaf in self._SEEDABLE:
                if not seeded:
                    yield self.diagnostic(
                        module, node,
                        f"{dotted}() without a seed is irreproducible; "
                        "pass an explicit seed or Generator",
                    )
            else:
                yield self.diagnostic(
                    module, node,
                    f"{dotted}() draws from the global NumPy RNG; thread "
                    "a seeded Generator (repro.util.rng.as_generator) "
                    "instead",
                )
        elif root == "random" and "." in dotted:
            yield self.diagnostic(
                module, node,
                f"{dotted}() uses the unseeded stdlib RNG; use "
                "repro.util.rng.as_generator",
            )
        elif leaf in ("default_rng", "as_generator") and not seeded:
            # ``from numpy.random import default_rng`` /
            # ``from repro.util.rng import as_generator`` call styles,
            # including through an aliased module object.
            yield self.diagnostic(
                module, node,
                f"{dotted}() without a seed is irreproducible; pass an "
                "explicit seed or Generator",
            )


# --------------------------------------------------------------- REP002


@register
class DiscardedLatency(Rule):
    """No discarded latency on the attacker-observable write path.

    ``PCMArray.write/copy/swap/write_many/read_with_latency``,
    ``MemoryController.write/write_chunk`` and scheme ``remap`` hooks
    *return* the operation's latency in nanoseconds — the paper's timing
    side channel.  The batched drivers are sinks of the same kind:
    ``run_trace_fast`` returns the ``SimulationResult`` holding the
    elapsed time its chunks accumulated, and the fast-forward tier's
    sinks (``scheme.apply_round`` returns the round's elapsed ns,
    ``array.apply_wear_bulk`` returns the commit/refuse verdict,
    ``run_fast_forward`` returns the combined result) are just as easy
    to drop on the floor.  Calling one as a bare
    expression statement silently drops that number; an experiment that
    should observe it will quietly measure nothing.  Assign the result
    (``_ = controller.write(...)`` for an intentional discard) or
    suppress with a reason.
    """

    code = "REP002"
    name = "discarded-latency"

    _LATENCY_METHODS = frozenset(
        {
            "write", "copy", "swap", "read_with_latency", "remap",
            "write_many", "write_chunk", "apply_round", "apply_wear_bulk",
        }
    )
    #: Module-level latency-carrying functions, recognised whether called
    #: bare (``run_trace_fast(...)``) or through a module attribute
    #: (``engine.run_trace_fast(...)``).
    _LATENCY_FUNCTIONS = frozenset({"run_trace_fast", "run_fast_forward"})
    #: Receivers whose ``.write()`` is file-like, not PCM-like.
    _FILELIKE = frozenset(
        {
            "f", "fh", "fp", "fd", "file", "out", "output", "stream",
            "buf", "buffer", "stdout", "stderr", "sock", "writer", "log",
            "logger", "handle", "csvfile",
        }
    )

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            if isinstance(func, ast.Name):
                if func.id not in self._LATENCY_FUNCTIONS:
                    continue
                shown = func.id
            elif isinstance(func, ast.Attribute):
                if (func.attr not in self._LATENCY_METHODS
                        and func.attr not in self._LATENCY_FUNCTIONS):
                    continue
                receiver = _identifier(func.value)
                if (receiver is not None
                        and receiver.lower().lstrip("_") in self._FILELIKE):
                    continue
                shown = f"{receiver}.{func.attr}" if receiver else func.attr
            else:
                continue
            yield self.diagnostic(
                module, node,
                f"return value of {shown}() (latency in ns) is discarded; "
                "assign it, or suppress with "
                "'# reprolint: disable=REP002 <reason>' if the discard "
                "is intentional",
            )


# --------------------------------------------------------------- REP003


@register
class FloatTimeEquality(Rule):
    """No ``==``/``!=`` on latency- or time-valued floats.

    Simulated time is a float accumulated over millions of additions;
    exact equality is representation-dependent and breaks the moment a
    latency term is reordered or a new model adds a fractional cost.
    Compare against a tolerance (``math.isclose``/``pytest.approx``) or
    compare integer write counts instead.
    """

    code = "REP003"
    name = "float-time-equality"

    _SUBSTRINGS = ("latency", "elapsed", "duration")

    @classmethod
    def _is_timeish(cls, node: ast.AST) -> bool:
        ident = _identifier(node)
        if ident is None:
            return False
        lowered = ident.lower()
        if any(sub in lowered for sub in cls._SUBSTRINGS):
            return True
        return (
            lowered.endswith("_ns")
            or lowered in ("ns", "time")
            or lowered.endswith("_time")
            or lowered.startswith("time_")
        )

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands: Sequence[ast.AST] = [node.left, *node.comparators]
            for idx, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[idx], operands[idx + 1]
                for side in (left, right):
                    if self._is_timeish(side):
                        ident = _identifier(side)
                        yield self.diagnostic(
                            module, node,
                            f"exact float comparison on time-valued "
                            f"'{ident}'; use math.isclose or an integer "
                            "event count",
                        )
                        break


# --------------------------------------------------------------- REP004


@register
class MutableDefaultArgument(Rule):
    """No mutable default arguments.

    A ``def run(stats=[])`` shares one list across *every* call — state
    leaks between experiments that must be independent, which is exactly
    the cross-run coupling a reproduction cannot afford.  Default to
    ``None`` and allocate inside the function.
    """

    code = "REP004"
    name = "mutable-default-argument"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque",
         "Counter", "OrderedDict"}
    )

    @classmethod
    def _is_mutable(cls, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _identifier(node.func)
            return name in cls._MUTABLE_CALLS
        return False

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.diagnostic(
                        module, default,
                        f"mutable default argument in {node.name}() is "
                        "shared across calls; default to None and "
                        "allocate per call",
                    )


# --------------------------------------------------------------- REP005


@register
class WallClock(Rule):
    """No wall-clock reads in simulator code.

    The simulator's only clock is ``elapsed_ns``, advanced by the timing
    model.  ``time.time()``/``datetime.now()`` make behaviour depend on
    host speed, which both breaks determinism and pollutes
    latency-derived results.  Benchmarks (under ``benchmarks/``) and
    tests are exempt — measuring host time is their job.
    """

    code = "REP005"
    name = "wall-clock"

    _BANNED_DOTTED = frozenset(
        {
            "time.time", "time.time_ns", "time.monotonic",
            "time.monotonic_ns", "time.perf_counter",
            "time.perf_counter_ns", "time.process_time",
            "time.process_time_ns",
            "datetime.now", "datetime.utcnow", "datetime.today",
            "datetime.datetime.now", "datetime.datetime.utcnow",
            "datetime.datetime.today", "datetime.date.today",
            "date.today",
        }
    )
    _BANNED_IMPORTS = {
        "time": {"time", "time_ns", "monotonic", "monotonic_ns",
                 "perf_counter", "perf_counter_ns", "process_time",
                 "process_time_ns"},
        "datetime": set(),  # importing datetime types is fine; calls are not
    }
    _EXEMPT_PARTS = frozenset({"benchmarks", "tests"})

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        if self._EXEMPT_PARTS.intersection(module.parts):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in self._BANNED_DOTTED:
                    yield self.diagnostic(
                        module, node,
                        f"wall-clock read {dotted}() in simulator code; "
                        "simulated time must come from elapsed_ns",
                    )
            elif isinstance(node, ast.ImportFrom):
                banned = self._BANNED_IMPORTS.get(node.module or "")
                if not banned:
                    continue
                for alias in node.names:
                    if alias.name in banned:
                        yield self.diagnostic(
                            module, node,
                            f"import of wall-clock '{alias.name}' from "
                            f"'{node.module}'; simulated time must come "
                            "from elapsed_ns",
                        )


# --------------------------------------------------------------- REP006


@register
class ModuleLevelMutableState(Rule):
    """No module-level mutable state in
    ``wearlevel``/``pcm``/``sim``/``traffic``.

    A module-level list/dict/set in the simulation packages survives
    across experiments in one process: run A's wear history can leak
    into run B, silently breaking seed-replay.  Use a tuple/frozenset
    for constants, or move the state into a class the experiment
    constructs.  Dunder names (``__all__``) are exempt.
    """

    code = "REP006"
    name = "module-level-mutable-state"

    _SCOPED_PARTS = frozenset({"wearlevel", "pcm", "sim", "traffic"})
    _MUTABLE_CALLS = MutableDefaultArgument._MUTABLE_CALLS

    def _module_statements(self, tree: ast.Module) -> Iterator[ast.stmt]:
        """Module body, descending one level into top-level If/Try."""
        for stmt in tree.body:
            yield stmt
            if isinstance(stmt, ast.If):
                yield from stmt.body
                yield from stmt.orelse
            elif isinstance(stmt, ast.Try):
                yield from stmt.body
                for handler in stmt.handlers:
                    yield from handler.body
                yield from stmt.orelse
                yield from stmt.finalbody

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        if not self._SCOPED_PARTS.intersection(module.parts):
            return
        for stmt in self._module_statements(module.tree):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [
                t.id for t in targets
                if isinstance(t, ast.Name)
            ]
            if not names or all(
                n.startswith("__") and n.endswith("__") for n in names
            ):
                continue
            if MutableDefaultArgument._is_mutable(value):
                yield self.diagnostic(
                    module, stmt,
                    f"module-level mutable state '{', '.join(names)}' "
                    "couples runs in one process; use a tuple/frozenset "
                    "or construct it per experiment",
                )


# --------------------------------------------------------------- REP007


@register
class ParallelismOutsideCampaign(Rule):
    """Process parallelism lives in ``repro.campaign``; sockets/async in
    ``repro.campaign.service``.

    ``repro.campaign.runner`` is the one audited fan-out: it derives
    per-task seeds from task identity (not from scheduling), checkpoints
    durably, and isolates worker crashes.  An ad-hoc ``Pool`` or
    ``ProcessPoolExecutor`` elsewhere re-introduces exactly the
    schedule-dependent seeding and silent partial results the campaign
    layer exists to prevent — route the work through
    ``repro.campaign.run_collect``/``run_tasks`` instead.

    The same argument confines ``asyncio``/``socket`` to
    ``repro.campaign.service``: the distributed coordinator/worker pair
    is the one place where network nondeterminism is tamed by leases,
    at-most-once commit and deterministic seeds.  Ad-hoc sockets or
    event loops anywhere else would smuggle scheduling back into
    results.  Tests and benchmarks are exempt from both bans.
    """

    code = "REP007"
    name = "parallelism-outside-campaign"

    _PROCESS_PREFIXES = ("multiprocessing", "concurrent.futures")
    _NETWORK_PREFIXES = ("asyncio", "socket")
    _EXEMPT_PARTS = frozenset({"tests", "benchmarks"})
    _PROCESS_HOME = "campaign"
    _NETWORK_HOMES = frozenset({"campaign", "service"})

    @staticmethod
    def _matches(module_name: str, prefixes: Tuple[str, ...]) -> bool:
        return any(
            module_name == prefix or module_name.startswith(prefix + ".")
            for prefix in prefixes
        )

    def _banned_groups(self, module: LintModule) -> List[Tuple[str, ...]]:
        """The import-prefix groups this module may *not* use."""
        if self._EXEMPT_PARTS.intersection(module.parts):
            return []
        parts = set(module.parts)
        groups: List[Tuple[str, ...]] = []
        if self._PROCESS_HOME not in parts:
            groups.append(self._PROCESS_PREFIXES)
        if not self._NETWORK_HOMES.issubset(parts):
            groups.append(self._NETWORK_PREFIXES)
        return groups

    @staticmethod
    def _advice(name: str) -> str:
        if name.split(".")[0] in ("asyncio", "socket"):
            return (
                "outside repro.campaign.service; the distributed "
                "campaign service (repro.campaign.service) is the one "
                "audited home of async/socket I/O"
            )
        return (
            "outside repro.campaign; use the campaign runner "
            "(repro.campaign.run_collect/run_tasks) for parallel work"
        )

    def check(self, module: LintModule) -> Iterator[Diagnostic]:
        groups = self._banned_groups(module)
        if not groups:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    for prefixes in groups:
                        if self._matches(alias.name, prefixes):
                            yield self.diagnostic(
                                module, node,
                                f"import of '{alias.name}' "
                                f"{self._advice(alias.name)}",
                            )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                flagged = False
                for prefixes in groups:
                    if self._matches(source, prefixes):
                        yield self.diagnostic(
                            module, node,
                            f"import from '{source}' "
                            f"{self._advice(source)}",
                        )
                        flagged = True
                if not flagged and source == "concurrent" and any(
                    p == self._PROCESS_PREFIXES for p in groups
                ):
                    for alias in node.names:
                        if alias.name == "futures":
                            yield self.diagnostic(
                                module, node,
                                "import of 'concurrent.futures' "
                                f"{self._advice('concurrent.futures')}",
                            )
