"""reprolint — AST-based static analysis for the simulator's invariants.

The reproduction's headline numbers (RTA success rates, lifetime curves,
fault-campaign availability) are only trustworthy when the simulator is
bit-deterministic under a seed and accounts every nanosecond on the
attacker-observable path.  This package enforces those invariants as
lint rules over the codebase (see ``docs/lint.md``):

* REP001–REP007 — per-file syntactic rules;
* REP101–REP104 — flow-sensitive rules built on an intra-procedural
  dataflow engine (:mod:`repro.lint.flow`) and a cross-module call
  graph (:mod:`repro.lint.callgraph`).

>>> from repro.lint import lint_source
>>> lint_source("import numpy as np\\nx = np.random.rand()\\n")[0].code
'REP001'

Run from the command line as ``python -m repro.lint [paths...]`` or
``python -m repro lint``.
"""

from repro.lint.diagnostics import (
    REGISTRY,
    Diagnostic,
    FlowRule,
    LintModule,
    Rule,
    Severity,
    all_rules,
    register,
)
from repro.lint import rules  # noqa: F401  (registers REP001–REP007)
from repro.lint import flowrules  # noqa: F401  (registers REP101–REP104)
from repro.lint.cache import LintCache
from repro.lint.callgraph import LintProject
from repro.lint.runner import (
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
    lint_tree,
    main,
)
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.suppress import SuppressionMap, parse_suppressions

__all__ = (
    "Diagnostic",
    "FlowRule",
    "LintCache",
    "LintModule",
    "LintProject",
    "LintResult",
    "REGISTRY",
    "Rule",
    "Severity",
    "SuppressionMap",
    "all_rules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "lint_tree",
    "main",
    "parse_suppressions",
    "register",
    "render_sarif",
    "to_sarif",
)
