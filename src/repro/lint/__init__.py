"""reprolint — AST-based static analysis for the simulator's invariants.

The reproduction's headline numbers (RTA success rates, lifetime curves,
fault-campaign availability) are only trustworthy when the simulator is
bit-deterministic under a seed and accounts every nanosecond on the
attacker-observable path.  This package enforces those invariants as
lint rules (REP001–REP006, see ``docs/lint.md``) over the codebase:

>>> from repro.lint import lint_source
>>> lint_source("import numpy as np\\nx = np.random.rand()\\n")[0].code
'REP001'

Run from the command line as ``python -m repro.lint [paths...]`` or
``python -m repro lint``.
"""

from repro.lint.diagnostics import (
    REGISTRY,
    Diagnostic,
    LintModule,
    Rule,
    Severity,
    all_rules,
    register,
)
from repro.lint import rules  # noqa: F401  (registers REP001–REP006)
from repro.lint.runner import lint_paths, lint_source, main
from repro.lint.suppress import SuppressionMap, parse_suppressions

__all__ = (
    "Diagnostic",
    "LintModule",
    "REGISTRY",
    "Rule",
    "Severity",
    "SuppressionMap",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "register",
)
