"""reprolint — AST-based static analysis for the simulator's invariants.

The reproduction's headline numbers (RTA success rates, lifetime curves,
fault-campaign availability) are only trustworthy when the simulator is
bit-deterministic under a seed and accounts every nanosecond on the
attacker-observable path.  This package enforces those invariants as
lint rules over the codebase (see ``docs/lint.md``):

* REP001–REP007 — per-file syntactic rules;
* REP101–REP104 — flow-sensitive rules built on a dataflow engine
  (:mod:`repro.lint.flow`), a cross-module call graph
  (:mod:`repro.lint.callgraph`), and interprocedural function
  summaries (:mod:`repro.lint.summaries`) that carry latency/RNG/
  clock taint across call boundaries;
* REP201–REP205 — concurrency, fork-safety, clock-domain, and
  protocol-drift rules for the distributed campaign service
  (:mod:`repro.lint.asyncrules`);
* REP301–REP306 — numpy array-safety and LA/IA/PA address-domain
  rules built on the array-abstraction layer
  (:mod:`repro.lint.arrayabs`): dtype/overflow discipline, duplicate-
  index accumulation, silent downcasts, nondeterministic array
  construction (:mod:`repro.lint.arrayrules`), plus address-domain
  confusion and batched-API contract drift
  (:mod:`repro.lint.domains`).

>>> from repro.lint import lint_source
>>> lint_source("import numpy as np\\nx = np.random.rand()\\n")[0].code
'REP001'

Run from the command line as ``python -m repro.lint [paths...]`` or
``python -m repro lint``.
"""

from repro.lint.diagnostics import (
    REGISTRY,
    Diagnostic,
    FlowRule,
    LintModule,
    Rule,
    Severity,
    all_rules,
    register,
)
from repro.lint import rules  # noqa: F401  (registers REP001–REP007)
from repro.lint import flowrules  # noqa: F401  (registers REP101–REP104)
from repro.lint import asyncrules  # noqa: F401  (registers REP201–REP205)
from repro.lint import arrayrules  # noqa: F401  (REP301/302/303/305)
from repro.lint import domains  # noqa: F401  (registers REP304/REP306)
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import LintCache
from repro.lint.callgraph import LintProject
from repro.lint.runner import (
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
    lint_tree,
    main,
)
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.summaries import (
    FunctionSummary,
    SummaryTable,
    project_summaries,
)
from repro.lint.suppress import SuppressionMap, parse_suppressions

__all__ = (
    "BaselineError",
    "Diagnostic",
    "FlowRule",
    "FunctionSummary",
    "LintCache",
    "LintModule",
    "LintProject",
    "LintResult",
    "REGISTRY",
    "Rule",
    "Severity",
    "SummaryTable",
    "SuppressionMap",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "lint_tree",
    "load_baseline",
    "main",
    "parse_suppressions",
    "project_summaries",
    "register",
    "render_sarif",
    "to_sarif",
    "write_baseline",
)
