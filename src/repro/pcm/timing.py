"""Asymmetric PCM timing model (Section II-C, Figs. 1 and 4).

PCM writes a '1' with a long SET pulse (~1000 ns) and a '0' with a short
RESET pulse (~125 ns); reads cost one low-power sense (~125 ns).  A line
write completes when its slowest cell completes, so the latency of writing a
line is determined by the "worst" bit in the written data:

* ``ALL0``  — every bit is '0'  →  RESET time,
* ``ALL1``  — every bit is '1'  →  SET time,
* ``MIXED`` — ordinary data; with hundreds of bits per line both transitions
  almost surely occur  →  SET time.

The observable composite latencies the paper derives (Fig. 4) follow:

* Start-Gap remap movement (read + write):   ALL-0 → 250 ns, ALL-1 → 1125 ns.
* Security Refresh swap (2 reads + 2 writes): ALL-0/ALL-0 → 500 ns,
  ALL-0/ALL-1 → 1375 ns, ALL-1/ALL-1 → 2250 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Tuple

import numpy as np

from repro.config import PCMConfig


class LineData(IntEnum):
    """Latency class of a line's content."""

    ALL0 = 0  #: every bit is '0' — fastest possible line write (RESET only)
    ALL1 = 1  #: every bit is '1' — slowest possible line write (SET only)
    MIXED = 2  #: ordinary data — worst-case bit dominates, same as ALL1


#: Module-level aliases so call sites read like the paper ("write ALL-0 ...").
ALL0 = LineData.ALL0
ALL1 = LineData.ALL1
MIXED = LineData.MIXED


@dataclass(frozen=True)
class TimingModel:
    """Maps operations on latency-classed data to nanosecond costs.

    All per-:class:`LineData` costs are precomputed once at construction
    into lookup tables, shared by the scalar path (tuple lookups, no
    branches per write) and the vectorized batched path (ndarray fancy
    indexing in :meth:`repro.pcm.array.PCMArray.write_many`).
    """

    config: PCMConfig
    #: ``latency_table[data]`` — write latency (ns) of one latency class.
    latency_table: np.ndarray = field(init=False, repr=False, compare=False)
    #: ``transition_latency_table[old, new]`` — write latency of ``new``
    #: over ``old`` under the configured differential-write mode.
    transition_latency_table: np.ndarray = field(
        init=False, repr=False, compare=False
    )
    #: ``transition_wears_table[old, new]`` — does that write wear the line?
    transition_wears_table: np.ndarray = field(
        init=False, repr=False, compare=False
    )
    # Scalar-path twins of the arrays above (plain tuples: a tuple lookup
    # is cheaper than an ndarray scalar index *and* than the two branches
    # the lookup replaces).
    _latency_lut: Tuple[float, ...] = field(init=False, repr=False, compare=False)
    _transition_lut: Tuple[Tuple[Tuple[float, bool], ...], ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        cfg = self.config
        write_ns = (cfg.reset_ns, cfg.set_ns, cfg.set_ns)  # ALL0, ALL1, MIXED
        transitions = []
        for old in LineData:
            row = []
            for new in LineData:
                if not cfg.differential_writes:
                    row.append((write_ns[new], True))
                elif old == new and new != LineData.MIXED:
                    # Verify read only, no cell flips, no wear.
                    row.append((cfg.read_ns, False))
                elif new == LineData.ALL0:
                    # Only 1->0 transitions remain: RESET time.
                    row.append((cfg.reset_ns, True))
                else:
                    row.append((cfg.set_ns, True))
            transitions.append(tuple(row))
        object.__setattr__(self, "_latency_lut", write_ns)
        object.__setattr__(self, "_transition_lut", tuple(transitions))
        object.__setattr__(
            self, "latency_table", np.array(write_ns, dtype=np.float64)
        )
        object.__setattr__(
            self,
            "transition_latency_table",
            np.array(
                [[lat for lat, _ in row] for row in transitions],
                dtype=np.float64,
            ),
        )
        object.__setattr__(
            self,
            "transition_wears_table",
            np.array(
                [[wears for _, wears in row] for row in transitions],
                dtype=bool,
            ),
        )

    def read_latency(self) -> float:
        """Latency of reading one line."""
        return self.config.read_ns

    def write_latency(self, data: LineData) -> float:
        """Latency of writing ``data`` to one line.

        The paper's model: the line write is as slow as its slowest cell,
        so anything containing a '1' costs a full SET pulse.
        """
        return self._latency_lut[data]

    def write_transition(self, old: LineData, new: LineData) -> Tuple[float, bool]:
        """Latency and wear of writing ``new`` over ``old``.

        Returns ``(latency_ns, wears)``.  In the paper's model (the
        default) this is just :meth:`write_latency` and always wears.
        With ``config.differential_writes`` only changed cells are
        written: rewriting identical ALL-0/ALL-1 content costs a verify
        read and causes no wear (MIXED content is conservatively assumed
        to change).
        """
        return self._transition_lut[old][new]

    def copy_latency(self, data: LineData) -> float:
        """Latency of one remap movement: read the source, write the target.

        This is the Start-Gap / DFN movement cost of Fig. 4(a):
        250 ns for ALL-0 data, 1125 ns for ALL-1 (or mixed) data.
        """
        return self.read_latency() + self.write_latency(data)

    def swap_latency(self, data_a: LineData, data_b: LineData) -> float:
        """Latency of a Security Refresh swap: read both lines, write both.

        Fig. 4(b): 500 ns (ALL-0/ALL-0), 1375 ns (ALL-0/ALL-1),
        2250 ns (ALL-1/ALL-1).
        """
        return (
            2.0 * self.read_latency()
            + self.write_latency(data_a)
            + self.write_latency(data_b)
        )
