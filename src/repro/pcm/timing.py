"""Asymmetric PCM timing model (Section II-C, Figs. 1 and 4).

PCM writes a '1' with a long SET pulse (~1000 ns) and a '0' with a short
RESET pulse (~125 ns); reads cost one low-power sense (~125 ns).  A line
write completes when its slowest cell completes, so the latency of writing a
line is determined by the "worst" bit in the written data:

* ``ALL0``  — every bit is '0'  →  RESET time,
* ``ALL1``  — every bit is '1'  →  SET time,
* ``MIXED`` — ordinary data; with hundreds of bits per line both transitions
  almost surely occur  →  SET time.

The observable composite latencies the paper derives (Fig. 4) follow:

* Start-Gap remap movement (read + write):   ALL-0 → 250 ns, ALL-1 → 1125 ns.
* Security Refresh swap (2 reads + 2 writes): ALL-0/ALL-0 → 500 ns,
  ALL-0/ALL-1 → 1375 ns, ALL-1/ALL-1 → 2250 ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.config import PCMConfig


class LineData(IntEnum):
    """Latency class of a line's content."""

    ALL0 = 0  #: every bit is '0' — fastest possible line write (RESET only)
    ALL1 = 1  #: every bit is '1' — slowest possible line write (SET only)
    MIXED = 2  #: ordinary data — worst-case bit dominates, same as ALL1


#: Module-level aliases so call sites read like the paper ("write ALL-0 ...").
ALL0 = LineData.ALL0
ALL1 = LineData.ALL1
MIXED = LineData.MIXED


@dataclass(frozen=True)
class TimingModel:
    """Maps operations on latency-classed data to nanosecond costs."""

    config: PCMConfig

    def read_latency(self) -> float:
        """Latency of reading one line."""
        return self.config.read_ns

    def write_latency(self, data: LineData) -> float:
        """Latency of writing ``data`` to one line.

        The paper's model: the line write is as slow as its slowest cell,
        so anything containing a '1' costs a full SET pulse.
        """
        if data == LineData.ALL0:
            return self.config.reset_ns
        return self.config.set_ns

    def write_transition(self, old: LineData, new: LineData):
        """Latency and wear of writing ``new`` over ``old``.

        Returns ``(latency_ns, wears)``.  In the paper's model (the
        default) this is just :meth:`write_latency` and always wears.
        With ``config.differential_writes`` only changed cells are
        written: rewriting identical ALL-0/ALL-1 content costs a verify
        read and causes no wear (MIXED content is conservatively assumed
        to change).
        """
        if not self.config.differential_writes:
            return self.write_latency(new), True
        if old == new and new != LineData.MIXED:
            return self.read_latency(), False  # verify only, no cell flips
        if new == LineData.ALL0:
            # Only 1->0 transitions remain: RESET time.
            return self.config.reset_ns, True
        return self.config.set_ns, True

    def copy_latency(self, data: LineData) -> float:
        """Latency of one remap movement: read the source, write the target.

        This is the Start-Gap / DFN movement cost of Fig. 4(a):
        250 ns for ALL-0 data, 1125 ns for ALL-1 (or mixed) data.
        """
        return self.read_latency() + self.write_latency(data)

    def swap_latency(self, data_a: LineData, data_b: LineData) -> float:
        """Latency of a Security Refresh swap: read both lines, write both.

        Fig. 4(b): 500 ns (ALL-0/ALL-0), 1375 ns (ALL-0/ALL-1),
        2250 ns (ALL-1/ALL-1).
        """
        return (
            2.0 * self.read_latency()
            + self.write_latency(data_a)
            + self.write_latency(data_b)
        )
