"""Failed-line sparing and graceful degradation.

The paper ends a device's life at its first line failure — the right metric
for attack studies (the attacker chooses the weakest point).  Real PCM
parts pair wear leveling with *line sparing*: a pool of spare lines absorbs
failures until it runs dry.  :class:`SparingController` wraps a
:class:`~repro.sim.memory_system.MemoryController` with such a pool, giving
the library a second, capacity-oriented lifetime definition:

* ``first_failure`` — the paper's metric,
* ``spares_exhausted`` — device death after ``n_spares + 1`` line failures,
* ``availability`` — with ``degraded_mode=True`` the device never "dies":
  it drops to read-only once spares run dry, and
  :mod:`repro.analysis.resilience` measures the fraction of the intended
  workload it served.

Retirement absorbs both wear-out (:class:`~repro.pcm.array.LineFailure`)
and ECP-overflow (:class:`~repro.pcm.array.UncorrectableError`) deaths, on
writes and on reads.  Remapped (spared) lines add one indirection on every
access; the remap table is the standard content-addressable structure real
parts use, here a dict.  Spare lines are themselves wear-limited and can
fail and be re-spared.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.config import PCMConfig
from repro.pcm.array import LineFailure, PCMArray, UncorrectableError
from repro.pcm.sharded import ShardedPCMArray
from repro.pcm.health import DeviceHealth
from repro.pcm.timing import LineData
from repro.sim.memory_system import MemoryController
from repro.util.rng import SeedLike
from repro.wearlevel.base import Move, WearLeveler


class SparesExhausted(Exception):
    """Raised when a line fails and no spare is left to absorb it."""

    def __init__(
        self, failures: int, total_writes: int, elapsed_ns: float
    ) -> None:
        self.failures = failures
        self.total_writes = total_writes
        self.elapsed_ns = elapsed_ns
        super().__init__(
            f"spare pool exhausted after {failures} line failures "
            f"({total_writes} writes, {elapsed_ns:.0f} ns)"
        )


class DeviceReadOnly(Exception):
    """Write rejected: the device has degraded to read-only mode.

    Raised instead of :class:`SparesExhausted` when the controller was
    built with ``degraded_mode=True``.  The device stays up — reads keep
    being served — and the attached :class:`~repro.pcm.health.DeviceHealth`
    snapshot reports the state instead of a bare stack trace.
    """

    def __init__(self, health: DeviceHealth) -> None:
        self.health = health
        super().__init__(
            f"device is read-only after {health.failures} line failures "
            f"({health.rejected_writes} writes rejected); {health.summary()}"
        )


class SparingController:
    """Memory controller front-end with a failed-line spare pool.

    Parameters
    ----------
    scheme / config:
        As for :class:`~repro.sim.memory_system.MemoryController`.
    n_spares:
        Spare lines appended after the scheme's physical space.
    endurance_variation / rng:
        Per-line endurance process variation, forwarded to the inner
        controller; the spare pool draws from the same distribution.
    fault_rng:
        Seed for the stochastic fault models (see
        :class:`~repro.pcm.faults.FaultModel`).
    degraded_mode:
        If True, exhausting the spare pool drops the device to read-only
        (writes raise :class:`DeviceReadOnly`, reads keep working)
        instead of raising :class:`SparesExhausted`.
    n_shards / memmap_dir:
        Forwarded to :class:`~repro.sim.memory_system.MemoryController`;
        with ``n_shards`` set the substrate is a
        :class:`~repro.pcm.sharded.ShardedPCMArray` and the spare pool is
        dealt round-robin across the shards (global PAs stay contiguous,
        so the remap table here is oblivious to the sharding).
    """

    def __init__(
        self,
        scheme: WearLeveler,
        config: PCMConfig,
        n_spares: int = 8,
        endurance_variation: float = 0.0,
        rng: SeedLike = None,
        fault_rng: SeedLike = None,
        degraded_mode: bool = False,
        n_shards: Optional[int] = None,
        memmap_dir: Optional[str] = None,
    ) -> None:
        if n_spares < 0:
            raise ValueError("n_spares must be >= 0")
        self.inner = MemoryController(
            scheme,
            config,
            raise_on_failure=True,
            endurance_variation=endurance_variation,
            rng=rng,
            fault_rng=fault_rng,
            n_shards=n_shards,
            memmap_dir=memmap_dir,
        )
        # Extend the physical array with the spare pool (wear, data, stuck
        # cells and endurance map all grow consistently).
        self._spare_base = self.inner.array.add_lines(n_spares)
        self.n_spares = n_spares
        self._next_spare = 0
        self.remap_table: Dict[int, int] = {}  # failed pa -> replacement pa
        self.failures = 0
        self.first_failure_writes: Optional[int] = None
        self.first_failure_ns: Optional[float] = None
        self.degraded_mode = degraded_mode
        self.read_only = False
        self.rejected_writes = 0
        #: (total_writes, failed_pa) per retirement — the campaign timeline.
        self.retirement_log: List[Tuple[int, int]] = []

    # ------------------------------------------------------------ plumbing

    def _check_la(self, la: int) -> None:
        if not 0 <= la < self.inner.config.n_lines:
            raise ValueError(
                f"logical address {la} outside [0, {self.inner.config.n_lines})"
            )

    def _redirect(self, pa: int) -> int:
        while pa in self.remap_table:
            pa = self.remap_table[pa]
        return pa

    def _spare_out(self, failed_pa: int) -> None:
        self.failures += 1
        if self.first_failure_writes is None:
            self.first_failure_writes = self.inner.array.total_writes
            self.first_failure_ns = self.inner.array.elapsed_ns
        if self._next_spare >= self.n_spares:
            if self.degraded_mode:
                self.read_only = True
            raise SparesExhausted(
                failures=self.failures,
                total_writes=self.inner.array.total_writes,
                elapsed_ns=self.inner.array.elapsed_ns,
            )
        replacement = self._spare_base + self._next_spare
        self._next_spare += 1
        self.remap_table[failed_pa] = replacement
        self.retirement_log.append(
            (self.inner.array.total_writes, int(failed_pa))
        )
        # Salvage the content (a real part does this before marking dead).
        self.inner.array.copy_data(failed_pa, replacement)

    # ----------------------------------------------------------------- API

    def write(self, la: int, data: LineData) -> float:
        """Write through the scheme, absorbing line failures with spares."""
        self._check_la(la)
        if self.read_only:
            self.rejected_writes += 1
            raise DeviceReadOnly(self.health())
        try:
            latency = 0.0
            array = self.inner.array
            for move in self.inner.scheme.record_write(la):
                latency += self._execute_move(move)
            pa = self._redirect(self.inner.scheme.translate(la))
            while True:
                try:
                    latency += array.write(pa, data)
                    return latency
                except LineFailure:
                    self._spare_out(pa)
                    pa = self._redirect(pa)
        except SparesExhausted:
            if self.degraded_mode:
                self.rejected_writes += 1
                raise DeviceReadOnly(self.health()) from None
            raise

    def _execute_move(self, move: Move) -> float:
        from repro.wearlevel.base import CopyMove, SwapMove

        array = self.inner.array
        while True:
            try:
                if isinstance(move, CopyMove):
                    return array.copy(
                        self._redirect(move.src), self._redirect(move.dst)
                    )
                if isinstance(move, SwapMove):
                    return array.swap(
                        self._redirect(move.pa_a), self._redirect(move.pa_b)
                    )
                raise TypeError(f"unknown move {move!r}")
            except LineFailure as failure:
                self._spare_out(failure.pa)

    def read(self, la: int) -> Tuple[LineData, float]:
        """Read ``la``; uncorrectable lines are retired through the pool.

        In ``degraded_mode`` an uncorrectable read that finds the pool dry
        re-raises the :class:`~repro.pcm.array.UncorrectableError` (that
        data is genuinely lost) but leaves the device serving other lines.
        """
        self._check_la(la)
        pa = self._redirect(self.inner.scheme.translate(la))
        while True:
            try:
                return self.inner.array.read_with_latency(pa)
            except UncorrectableError as failure:
                try:
                    self._spare_out(pa)
                except SparesExhausted:
                    if self.degraded_mode:
                        raise failure from None
                    raise
                pa = self._redirect(pa)

    # ------------------------------------------------------------- queries

    @property
    def scheme(self) -> WearLeveler:
        return self.inner.scheme

    @property
    def array(self) -> Union[PCMArray, ShardedPCMArray]:
        return self.inner.array

    @property
    def elapsed_ns(self) -> float:
        return self.inner.elapsed_ns

    @property
    def total_writes(self) -> int:
        return self.inner.total_writes

    @property
    def spares_left(self) -> int:
        return self.n_spares - self._next_spare

    def health(self) -> DeviceHealth:
        """Structured health report for the whole device."""
        array = self.inner.array
        return DeviceHealth(
            n_lines=self.inner.config.n_lines,
            n_physical=array.n_physical,
            total_writes=array.total_writes,
            elapsed_ns=array.elapsed_ns,
            max_wear=array.max_wear,
            failures=self.failures,
            retired_lines=len(self.remap_table),
            n_spares=self.n_spares,
            spares_left=self.spares_left,
            read_only=self.read_only,
            retry_events=array.retry_events,
            stuck_cells=int(array.stuck_bits.sum())
            if array.stuck_bits is not None
            else 0,
            corrected_errors=array.ecc.corrected_total if array.ecc else 0,
            uncorrectable_errors=array.ecc.uncorrectable_total
            if array.ecc
            else 0,
            rejected_writes=self.rejected_writes,
        )
