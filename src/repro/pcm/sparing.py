"""Failed-line sparing and graceful degradation.

The paper ends a device's life at its first line failure — the right metric
for attack studies (the attacker chooses the weakest point).  Real PCM
parts pair wear leveling with *line sparing*: a pool of spare lines absorbs
failures until it runs dry.  :class:`SparingController` wraps a
:class:`~repro.sim.memory_system.MemoryController` with such a pool, giving
the library a second, capacity-oriented lifetime definition:

* ``first_failure`` — the paper's metric,
* ``spares_exhausted`` — device death after ``n_spares + 1`` line failures.

Remapped (spared) lines add one indirection on every access; the remap
table is the standard content-addressable structure real parts use, here a
dict.  Spare lines are themselves wear-limited and can fail and be
re-spared.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import PCMConfig
from repro.pcm.array import LineFailure
from repro.pcm.timing import LineData
from repro.sim.memory_system import MemoryController
from repro.wearlevel.base import WearLeveler


class SparesExhausted(Exception):
    """Raised when a line fails and no spare is left to absorb it."""

    def __init__(self, failures: int, total_writes: int, elapsed_ns: float):
        self.failures = failures
        self.total_writes = total_writes
        self.elapsed_ns = elapsed_ns
        super().__init__(
            f"spare pool exhausted after {failures} line failures "
            f"({total_writes} writes, {elapsed_ns:.0f} ns)"
        )


class SparingController:
    """Memory controller front-end with a failed-line spare pool.

    Parameters
    ----------
    scheme / config:
        As for :class:`~repro.sim.memory_system.MemoryController`.
    n_spares:
        Spare lines appended after the scheme's physical space.
    """

    def __init__(
        self,
        scheme: WearLeveler,
        config: PCMConfig,
        n_spares: int = 8,
    ):
        if n_spares < 0:
            raise ValueError("n_spares must be >= 0")
        self.inner = MemoryController(scheme, config, raise_on_failure=True)
        # Extend the physical array with the spare pool.
        array = self.inner.array
        import numpy as np

        extra = n_spares
        array.wear = np.concatenate(
            [array.wear, np.zeros(extra, dtype=array.wear.dtype)]
        )
        array.data = np.concatenate(
            [array.data, np.zeros(extra, dtype=array.data.dtype)]
        )
        self._spare_base = array.n_physical
        array.n_physical += extra
        self.n_spares = n_spares
        self._next_spare = 0
        self.remap_table: Dict[int, int] = {}  # failed pa -> replacement pa
        self.failures = 0
        self.first_failure_writes: Optional[int] = None
        self.first_failure_ns: Optional[float] = None

    # ------------------------------------------------------------ plumbing

    def _redirect(self, pa: int) -> int:
        while pa in self.remap_table:
            pa = self.remap_table[pa]
        return pa

    def _spare_out(self, failed_pa: int) -> None:
        self.failures += 1
        if self.first_failure_writes is None:
            self.first_failure_writes = self.inner.array.total_writes
            self.first_failure_ns = self.inner.array.elapsed_ns
        if self._next_spare >= self.n_spares:
            raise SparesExhausted(
                failures=self.failures,
                total_writes=self.inner.array.total_writes,
                elapsed_ns=self.inner.array.elapsed_ns,
            )
        replacement = self._spare_base + self._next_spare
        self._next_spare += 1
        self.remap_table[failed_pa] = replacement
        # Salvage the content (a real part does this before marking dead).
        array = self.inner.array
        array.data[replacement] = array.data[failed_pa]

    # ----------------------------------------------------------------- API

    def write(self, la: int, data: LineData) -> float:
        """Write through the scheme, absorbing line failures with spares."""
        latency = 0.0
        array = self.inner.array
        for move in self.inner.scheme.record_write(la):
            latency += self._execute_move(move)
        pa = self._redirect(self.inner.scheme.translate(la))
        while True:
            try:
                latency += array.write(pa, data)
                return latency
            except LineFailure:
                self._spare_out(pa)
                pa = self._redirect(pa)

    def _execute_move(self, move) -> float:
        from repro.wearlevel.base import CopyMove, SwapMove

        array = self.inner.array
        while True:
            try:
                if isinstance(move, CopyMove):
                    return array.copy(
                        self._redirect(move.src), self._redirect(move.dst)
                    )
                if isinstance(move, SwapMove):
                    return array.swap(
                        self._redirect(move.pa_a), self._redirect(move.pa_b)
                    )
                raise TypeError(f"unknown move {move!r}")
            except LineFailure as failure:
                self._spare_out(failure.pa)

    def read(self, la: int) -> Tuple[LineData, float]:
        pa = self._redirect(self.inner.scheme.translate(la))
        return self.inner.array.read(pa), self.inner.config.read_ns

    # ------------------------------------------------------------- queries

    @property
    def scheme(self) -> WearLeveler:
        return self.inner.scheme

    @property
    def array(self):
        return self.inner.array

    @property
    def elapsed_ns(self) -> float:
        return self.inner.elapsed_ns

    @property
    def total_writes(self) -> int:
        return self.inner.total_writes

    @property
    def spares_left(self) -> int:
        return self.n_spares - self._next_spare
