"""PCM device substrate: asymmetric timing model and wear-tracked line array.

The Remapping Timing Attack only needs to distinguish *latency classes*
(which data pattern was copied during a remap), so line contents are modelled
as one of three classes (:class:`~repro.pcm.timing.LineData`) rather than as
raw bytes — this keeps simulated banks of millions of lines cheap while
preserving the side channel exactly (Fig. 4 of the paper).
"""

from repro.pcm.array import PCMArray, LineFailure, UncorrectableError
from repro.pcm.sharded import ShardedPCMArray
from repro.pcm.ecc import CorrectionOutcome, ECPModel
from repro.pcm.faults import FaultModel
from repro.pcm.health import DeviceHealth
from repro.pcm.sparing import DeviceReadOnly, SparesExhausted, SparingController
from repro.pcm.stats import WearStats, normalized_accumulated_writes
from repro.pcm.timing import (
    ALL0,
    ALL1,
    MIXED,
    LineData,
    TimingModel,
)

__all__ = [
    "ALL0",
    "ALL1",
    "MIXED",
    "CorrectionOutcome",
    "DeviceHealth",
    "DeviceReadOnly",
    "ECPModel",
    "FaultModel",
    "LineData",
    "LineFailure",
    "PCMArray",
    "ShardedPCMArray",
    "SparesExhausted",
    "SparingController",
    "TimingModel",
    "UncorrectableError",
    "WearStats",
    "normalized_accumulated_writes",
]
