"""Stochastic PCM fault models: read disturb, verify failure, stuck-at.

Real PCM parts do not die cleanly at a hard endurance threshold (the
paper's first-failure model).  They see, in rough order of appearance:

* **transient read-disturb errors** — resistance drift flips a few bits on
  a read; scrubbed by correction, no lasting damage;
* **verify failures** — a program pulse that does not land; the controller
  re-programs (program-and-verify), and the failure probability *rises as
  the cell wears*, so retry counts leak wear state;
* **hard stuck-at cells** — a cell whose heater has degraded past
  programming; permanent, absorbed by ECP pointers until the per-line
  capacity is exceeded (see :mod:`repro.pcm.ecc`).

:class:`FaultModel` owns one seeded :class:`numpy.random.Generator`, so a
fault-injection campaign is reproducible: the same seed and config replay
the identical error sequence.  With all probabilities zero the model is
never constructed (``PCMConfig.fault_injection_enabled`` is False) and the
simulator's behavior is bit-identical to the fault-free seed.
"""

from __future__ import annotations

from repro.config import PCMConfig
from repro.pcm.timing import LineData
from repro.util.rng import SeedLike, as_generator

#: Ceiling on the verify-failure probability: keeps the bounded retry loop
#: from being entered with certainty even on a fully worn line.
MAX_VERIFY_FAIL_PROBABILITY = 0.95


class FaultModel:
    """Seeded fault injector for one :class:`~repro.pcm.array.PCMArray`.

    Parameters
    ----------
    config:
        Device parameters; the ``read_disturb_ber`` / ``verify_fail_*``
        fields select which fault classes are armed.
    rng:
        Seed or generator for the fault stream.  Pass an integer for
        reproducible campaigns.
    """

    def __init__(self, config: PCMConfig, rng: SeedLike = None):
        self.config = config
        self._gen = as_generator(rng)
        self.verify_armed = config.verify_fail_base > 0
        self.read_disturb_armed = config.read_disturb_ber > 0

    # ----------------------------------------------------------- verify

    def verify_fail_probability(self, wear_fraction: float, data: LineData) -> float:
        """Probability one program pulse fails verify (pure, no RNG).

        ``p = base * (1 + factor * wear_fraction**exponent)``, scaled down
        by ``verify_fail_all0_factor`` for RESET-only (ALL-0) programs and
        clipped at :data:`MAX_VERIFY_FAIL_PROBABILITY`.
        """
        cfg = self.config
        wear_fraction = min(max(wear_fraction, 0.0), 1.0)
        p = cfg.verify_fail_base * (
            1.0
            + cfg.verify_fail_wear_factor
            * wear_fraction ** cfg.verify_fail_wear_exponent
        )
        if data == LineData.ALL0:
            p *= cfg.verify_fail_all0_factor
        return min(p, MAX_VERIFY_FAIL_PROBABILITY)

    def verify_failure(self, wear_fraction: float, data: LineData) -> bool:
        """Draw whether one program pulse fails its verify read."""
        if not self.verify_armed:
            return False
        return float(self._gen.random()) < self.verify_fail_probability(
            wear_fraction, data
        )

    # ----------------------------------------------------- read disturb

    def read_disturb_errors(self) -> int:
        """Number of transient bit errors injected into one line read."""
        if not self.read_disturb_armed:
            return 0
        return int(
            self._gen.binomial(self.config.line_bits, self.config.read_disturb_ber)
        )
