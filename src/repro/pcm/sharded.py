"""Sharded PCM line array: per-sub-region banks, optionally memmap-backed.

A 2^25-line device carries ~1 GB of per-line state (wear counters, latency
classes, endurance maps); a monolithic :class:`~repro.pcm.array.PCMArray`
holds all of it in one resident numpy allocation.  :class:`ShardedPCMArray`
splits the physical space into ``n_shards`` contiguous banks, each backed by
its own numpy arrays — or, with ``memmap_dir`` set, by ``np.memmap`` files
so the OS pages cold banks out and paper-scale devices no longer need to fit
in RAM.  The shard table doubles as the unit of distribution: campaign
workers can each own a subset of banks (see :meth:`shard_spans`).

API contract
------------
The class is *duck-typed* against :class:`~repro.pcm.array.PCMArray` — it is
not a subclass, because almost every hot method needs a different body and
inheriting would silently fall back to monolithic state.  Everything the
simulation engines and the sparing layer touch is implemented with identical
semantics: scalar ``write``/``copy``/``swap``/``read``, the chunk-exact
``write_many`` (including the whole-chunk scalar replay near end-of-life so
:class:`~repro.pcm.array.LineFailure.chunk_index` attribution is exact), the
fast-forward commit point ``apply_wear_bulk`` (all-or-nothing *across*
banks), ``bulk_wear``, ``fill_data`` and ``add_lines``.

Deviations, all explicit:

* ``endurance_variation`` and fault injection are rejected at construction
  (their per-line state does not shard profitably and the fast-forward tier
  cannot advance it in closed form); ``faults``/``ecc``/``stuck_bits`` are
  ``None`` exactly like a fault-free monolithic array.
* The :attr:`wear` and :attr:`data` properties return **read-only gathered
  copies** — convenient for statistics, wrong for mutation.  Writing through
  them raises instead of silently updating a copy; in-place paths go through
  the methods (the sparing layer uses :meth:`copy_data`).

Address layout
--------------
Global physical addresses keep the monolithic layout: data lines
``[0, n_data)`` split into near-equal contiguous bank ranges (bank lookup is
one ``searchsorted`` on the offset table), and spare lines appended by
:meth:`add_lines` stay globally contiguous at the end — each spare is
*stored* in some bank's local tail (``add_lines`` deals spares round-robin,
one pool per shard) and an explicit index pair (bank, local slot) maps the
global spare PA to its home.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import PCMConfig
from repro.pcm.array import LineFailure
from repro.pcm.timing import LineData, TimingModel


class ShardedPCMArray:
    """A bank-sharded, optionally memmap-backed PCM line array.

    Parameters
    ----------
    config:
        Device parameters; ``config.endurance`` is the per-line budget.
        Fault injection must be disabled.
    n_physical:
        Physical lines (defaults to ``config.n_lines``).
    n_shards:
        Number of contiguous banks to split the space into.
    memmap_dir:
        When set, each bank's wear and data arrays live in ``.dat`` files
        under this directory (created if missing) instead of RAM.
    """

    def __init__(
        self,
        config: PCMConfig,
        n_physical: Optional[int] = None,
        initial_data: LineData = LineData.ALL0,
        raise_on_failure: bool = True,
        n_shards: int = 8,
        memmap_dir: Optional[str] = None,
    ) -> None:
        if config.fault_injection_enabled:
            raise ValueError(
                "ShardedPCMArray does not support fault injection; "
                "use the monolithic PCMArray"
            )
        self.config = config
        self.timing = TimingModel(config)
        self.n_physical = config.n_lines if n_physical is None else int(n_physical)
        if self.n_physical < config.n_lines:
            raise ValueError(
                f"n_physical ({self.n_physical}) must cover the logical space "
                f"({config.n_lines} lines)"
            )
        if not 1 <= n_shards <= self.n_physical:
            raise ValueError(
                f"n_shards ({n_shards}) must be in [1, {self.n_physical}]"
            )
        self.n_shards = int(n_shards)
        self.raise_on_failure = raise_on_failure
        self.total_writes = 0
        self.elapsed_ns = 0.0
        self._first_failure: Optional[LineFailure] = None
        self._memmap_dir = memmap_dir
        if memmap_dir is not None:
            os.makedirs(memmap_dir, exist_ok=True)
        # Near-equal contiguous split of the initial (data) space.  Spares
        # added later extend banks locally but keep global PAs at the end.
        base, rem = divmod(self.n_physical, self.n_shards)
        sizes = [base + (1 if b < rem else 0) for b in range(self.n_shards)]
        self._data_counts = np.asarray(sizes, dtype=np.int64)
        self._offsets = np.concatenate(
            [[0], np.cumsum(self._data_counts[:-1])]
        ).astype(np.int64)
        self._n_data = self.n_physical
        self._wear: List[np.ndarray] = []
        self._data: List[np.ndarray] = []
        for b, size in enumerate(sizes):
            self._wear.append(
                self._alloc(f"wear_{b}", np.int64, size, fill=0)
            )
            self._data.append(
                self._alloc(f"data_{b}", np.int8, size, fill=int(initial_data))
            )
        # Global spare PA -> (bank, local slot) in that bank's tail.
        self._spare_bank = np.empty(0, dtype=np.int64)
        self._spare_local = np.empty(0, dtype=np.int64)
        # PCMArray duck-type surface the health/engine layers probe.
        self.endurance_map: Optional[np.ndarray] = None
        self.faults = None
        self.ecc = None
        self.stuck_bits: Optional[np.ndarray] = None
        self.retry_events = 0
        self.stuck_cell_events = 0

    # --------------------------------------------------------- bank storage

    def _alloc(
        self, name: str, dtype: type, size: int, fill: int
    ) -> np.ndarray:
        if size == 0:
            return np.empty(0, dtype=dtype)
        if self._memmap_dir is None:
            return np.full(size, fill, dtype=dtype)
        path = os.path.join(self._memmap_dir, f"{name}_{size}.dat")
        arr = np.memmap(path, dtype=dtype, mode="w+", shape=(size,))
        arr[:] = fill
        return arr

    def _grow(self, name: str, old: np.ndarray, extra: int) -> np.ndarray:
        """Extend one bank array by ``extra`` zero/ALL0 slots."""
        fill = 0 if old.dtype == np.int64 else int(LineData.ALL0)
        if self._memmap_dir is None:
            return np.concatenate([old, np.full(extra, fill, dtype=old.dtype)])
        # memmap files are fixed-size: allocate the larger file and copy.
        # Spare pools are tiny relative to banks, so this happens once.
        size = old.size + extra
        path = os.path.join(self._memmap_dir, f"{name}_{size}.dat")
        arr = np.memmap(path, dtype=old.dtype, mode="w+", shape=(size,))
        arr[: old.size] = old[:]
        arr[old.size :] = fill
        return arr

    def add_lines(self, extra: int) -> int:
        """Append ``extra`` spare lines, dealt round-robin across shards.

        Global spare PAs stay contiguous at the end of the address space
        (``[n_physical, n_physical + extra)`` before the call) exactly like
        the monolithic array, so the sparing layer works unchanged; each
        spare physically lives in one bank's local tail.
        """
        if extra < 0:
            raise ValueError("extra must be >= 0")
        base = self.n_physical
        if extra == 0:
            return base
        per_bank, rem = divmod(extra, self.n_shards)
        new_bank = np.empty(extra, dtype=np.int64)
        new_local = np.empty(extra, dtype=np.int64)
        cursor = 0
        for b in range(self.n_shards):
            share = per_bank + (1 if b < rem else 0)
            if share == 0:
                continue
            start = self._wear[b].size
            self._wear[b] = self._grow(f"wear_{b}", self._wear[b], share)
            self._data[b] = self._grow(f"data_{b}", self._data[b], share)
            new_bank[cursor : cursor + share] = b
            new_local[cursor : cursor + share] = start + np.arange(share)
            cursor += share
        self._spare_bank = np.concatenate([self._spare_bank, new_bank])
        self._spare_local = np.concatenate([self._spare_local, new_local])
        self.n_physical += extra
        return base

    def shard_spans(self) -> List[Tuple[int, int, int]]:
        """Per-shard ``(data_start, data_end, n_spares)`` global-PA metadata.

        The distribution unit for campaign workers: a worker owning shard
        ``b`` owns the contiguous data range plus the spares dealt to it.
        """
        spares = np.bincount(self._spare_bank, minlength=self.n_shards)
        return [
            (
                int(self._offsets[b]),
                int(self._offsets[b] + self._data_counts[b]),
                int(spares[b]),
            )
            for b in range(self.n_shards)
        ]

    # ----------------------------------------------------------- addressing

    def _locate(self, pa: int) -> Tuple[int, int]:
        pa = int(pa)
        if not 0 <= pa < self.n_physical:
            raise IndexError(f"physical address {pa} outside [0, {self.n_physical})")
        if pa >= self._n_data:
            j = pa - self._n_data
            return int(self._spare_bank[j]), int(self._spare_local[j])
        b = int(np.searchsorted(self._offsets, pa, side="right")) - 1
        return b, pa - int(self._offsets[b])

    def _locate_many(self, pas: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pas = np.asarray(pas, dtype=np.int64)
        banks = np.empty(pas.size, dtype=np.int64)
        locals_ = np.empty(pas.size, dtype=np.int64)
        spare = pas >= self._n_data
        if spare.any():
            j = pas[spare] - self._n_data
            banks[spare] = self._spare_bank[j]
            locals_[spare] = self._spare_local[j]
        dense = ~spare
        if dense.any():
            p = pas[dense]
            b = np.searchsorted(self._offsets, p, side="right") - 1
            banks[dense] = b
            locals_[dense] = p - self._offsets[b]
        return banks, locals_

    def _gather(self, arrays: List[np.ndarray], pas: np.ndarray) -> np.ndarray:
        banks, locals_ = self._locate_many(pas)
        out = np.empty(banks.size, dtype=arrays[0].dtype)
        for b in np.unique(banks):
            mask = banks == b
            out[mask] = arrays[int(b)][locals_[mask]]
        return out

    def _gather_wear(self, pas: np.ndarray) -> np.ndarray:
        return self._gather(self._wear, pas)

    # ------------------------------------------------------------------ I/O

    def read(self, pa: int) -> LineData:
        """Read the latency class stored at physical line ``pa``."""
        return self.read_with_latency(pa)[0]

    def read_with_latency(self, pa: int) -> Tuple[LineData, float]:
        """Read line ``pa``; return ``(data, latency_ns)``."""
        latency = self.timing.read_latency()
        self.elapsed_ns += latency
        b, i = self._locate(pa)
        return LineData(int(self._data[b][i])), latency

    def peek(self, pa: int) -> LineData:
        """Read without advancing time (for internal bookkeeping/tests)."""
        b, i = self._locate(pa)
        return LineData(int(self._data[b][i]))

    def copy_data(self, src: int, dst: int) -> None:
        """Duplicate stored content ``src`` -> ``dst``, no wear, no latency.

        The sparing layer's salvage step; also the only sanctioned way to
        poke line contents from outside (the :attr:`data` property returns
        a read-only copy).
        """
        sb, si = self._locate(src)
        db, di = self._locate(dst)
        self._data[db][di] = self._data[sb][si]

    def write(self, pa: int, data: LineData) -> float:
        """Write ``data`` to line ``pa``; return this write's latency in ns."""
        b, i = self._locate(pa)
        old = LineData(int(self._data[b][i]))
        latency, wears = self.timing.write_transition(old, data)
        self.elapsed_ns += latency
        if wears:
            self._apply_wear(pa, b, i)
        self._data[b][i] = int(data)
        return latency

    def copy(self, src: int, dst: int) -> float:
        """Remap movement: read ``src``, write its content to ``dst``."""
        sb, si = self._locate(src)
        db, di = self._locate(dst)
        data = LineData(int(self._data[sb][si]))
        old = LineData(int(self._data[db][di]))
        write_ns, wears = self.timing.write_transition(old, data)
        latency = self.timing.read_latency() + write_ns
        self.elapsed_ns += latency
        if wears:
            self._apply_wear(dst, db, di)
        self._data[db][di] = int(data)
        return latency

    def swap(self, pa_a: int, pa_b: int) -> float:
        """Security-Refresh movement: exchange two lines' contents."""
        ab, ai = self._locate(pa_a)
        bb, bi = self._locate(pa_b)
        da = LineData(int(self._data[ab][ai]))
        db = LineData(int(self._data[bb][bi]))
        write_a, wears_a = self.timing.write_transition(da, db)
        write_b, wears_b = self.timing.write_transition(db, da)
        latency = 2.0 * self.timing.read_latency() + write_a + write_b
        self.elapsed_ns += latency
        if wears_a:
            self._apply_wear(pa_a, ab, ai)
        if wears_b:
            self._apply_wear(pa_b, bb, bi)
        self._data[ab][ai] = int(db)
        self._data[bb][bi] = int(da)
        return latency

    # ------------------------------------------------------- batched I/O

    def write_many(self, pas: np.ndarray, datas: np.ndarray) -> float:
        """Chunked writes, bit-identical to per-element :meth:`write` calls.

        Same guarantees as :meth:`repro.pcm.array.PCMArray.write_many`: a
        chunk that might contain an endurance failure replays scalar in
        original order (no state was mutated yet), so the raised
        :class:`~repro.pcm.array.LineFailure` carries the exact per-write
        snapshot and ``chunk_index`` even when the failing line and its
        neighbours live in different banks.
        """
        pas = np.ascontiguousarray(pas, dtype=np.int64)
        datas = np.ascontiguousarray(datas, dtype=np.int8)
        n = int(pas.size)
        if n == 0:
            return 0.0
        if self.config.differential_writes:
            old = self._chunk_old_data(pas, datas)
            lat = self.timing.transition_latency_table[old, datas]
            wears = self.timing.transition_wears_table[old, datas]
            wear_pas = pas[wears]
            n_wearing = int(wear_pas.size)
        else:
            lat = self.timing.latency_table[datas]
            wear_pas = pas
            n_wearing = n
        if self._first_failure is None and n_wearing:
            touched_wear = self._gather_wear(wear_pas)
            if int(touched_wear.max()) + n_wearing >= self.config.endurance:
                unique, counts = np.unique(wear_pas, return_counts=True)
                if bool(
                    np.any(
                        self._gather_wear(unique) + counts
                        >= self.config.endurance
                    )
                ):
                    return self._write_many_scalar(pas, datas)
        chunk_ns = float(np.sum(lat))
        self.elapsed_ns += chunk_ns
        if n_wearing:
            banks, locals_ = self._locate_many(wear_pas)
            for b in np.unique(banks):
                mask = banks == b
                np.add.at(self._wear[int(b)], locals_[mask], 1)
            self.total_writes += n_wearing
        # Last write wins per pa: the per-bank masks preserve chunk order,
        # so fancy assignment within each bank stores chronologically.
        banks, locals_ = self._locate_many(pas)
        for b in np.unique(banks):
            mask = banks == b
            self._data[int(b)][locals_[mask]] = datas[mask]
        return chunk_ns

    def _write_many_scalar(self, pas: np.ndarray, datas: np.ndarray) -> float:
        """Scalar fallback of :meth:`write_many`; tags failure positions."""
        latency = 0.0
        for i in range(pas.size):
            try:
                latency += self.write(int(pas[i]), LineData(int(datas[i])))
            except LineFailure as failure:
                if failure.chunk_index is None:
                    failure.chunk_index = i
                raise
        return latency

    def _chunk_old_data(self, pas: np.ndarray, datas: np.ndarray) -> np.ndarray:
        """Per-write *old* latency class, honouring intra-chunk rewrites."""
        n = int(pas.size)
        order = np.argsort(pas, kind="stable")
        sorted_pas = pas[order]
        sorted_datas = datas[order]
        first = np.ones(n, dtype=bool)
        first[1:] = sorted_pas[1:] != sorted_pas[:-1]
        old_sorted = np.empty(n, dtype=np.int8)
        old_sorted[first] = self._gather(self._data, sorted_pas[first])
        repeats = np.nonzero(~first)[0]
        old_sorted[repeats] = sorted_datas[repeats - 1]
        old = np.empty(n, dtype=np.int8)
        old[order] = old_sorted
        return old

    # --------------------------------------------------------------- wear

    def _apply_wear(self, pa: int, bank: int, local: int) -> None:
        wear_arr = self._wear[bank]
        wear_arr[local] += 1
        self.total_writes += 1
        if wear_arr[local] >= self.config.endurance:
            failure = LineFailure(
                pa=int(pa),
                wear=int(wear_arr[local]),
                total_writes=self.total_writes,
                elapsed_ns=self.elapsed_ns,
            )
            if self._first_failure is None:
                self._first_failure = failure
            if self.raise_on_failure:
                raise failure

    def bulk_wear(
        self,
        pas: Union[int, slice, Sequence[int], np.ndarray],
        counts: Union[int, np.ndarray],
        write_ns: Optional[float] = None,
    ) -> None:
        """Apply ``counts`` writes to ``pas``; see the monolithic docstring.

        Failure semantics match: after the increment the addressed lines
        are scanned *in pas order* and the first over-limit one raises.
        """
        if write_ns is None:
            write_ns = self.config.set_ns
        if isinstance(pas, slice):
            idx = np.arange(*pas.indices(self.n_physical), dtype=np.int64)
        elif np.isscalar(pas):
            idx = np.asarray([pas], dtype=np.int64)
        else:
            idx = np.asarray(pas, dtype=np.int64)
        banks, locals_ = self._locate_many(idx)
        if np.isscalar(counts):
            for b in np.unique(banks):
                mask = banks == b
                np.add.at(self._wear[int(b)], locals_[mask], int(counts))
            new_writes = int(counts) * int(idx.size)
        else:
            counts_arr = np.asarray(counts, dtype=np.int64)
            for b in np.unique(banks):
                mask = banks == b
                np.add.at(self._wear[int(b)], locals_[mask], counts_arr[mask])
            new_writes = int(counts_arr.sum())
        self.total_writes += new_writes
        self.elapsed_ns += new_writes * write_ns
        over = self._gather_wear(idx) >= self.config.endurance
        if over.any():
            pa = int(idx[int(np.argmax(over))])
            b, i = self._locate(pa)
            failure = LineFailure(
                pa=pa,
                wear=int(self._wear[b][i]),
                total_writes=self.total_writes,
                elapsed_ns=self.elapsed_ns,
            )
            if self._first_failure is None:
                self._first_failure = failure
            if self.raise_on_failure:
                raise failure

    def apply_wear_bulk(self, counts: np.ndarray, elapsed_ns: float) -> bool:
        """All-or-nothing dense wear commit; refuses across *all* banks.

        The fast-forward engine's commit point, sharded: each bank's data
        slice runs the same max-based pre-screen as the monolithic array,
        and the whole device refuses (mutating nothing anywhere) if any
        bank — or any spare line — would cross its endurance limit.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_physical,):
            raise ValueError(
                f"counts must be dense over {self.n_physical} lines, "
                f"got shape {counts.shape}"
            )
        if counts.size and counts.min() < 0:
            raise ValueError("negative wear count")
        limit = self.config.endurance
        spare_counts = counts[self._n_data :]
        for b in range(self.n_shards):
            off = int(self._offsets[b])
            dc = int(self._data_counts[b])
            if dc == 0:
                continue
            seg = counts[off : off + dc]
            wear = self._wear[b][:dc]
            if int(wear.max()) + int(seg.max()) >= limit:
                if bool(((wear + seg) >= limit).any()):
                    return False
        for j in range(int(spare_counts.size)):
            b, i = int(self._spare_bank[j]), int(self._spare_local[j])
            if int(self._wear[b][i]) + int(spare_counts[j]) >= limit:
                return False
        for b in range(self.n_shards):
            off = int(self._offsets[b])
            dc = int(self._data_counts[b])
            if dc:
                self._wear[b][:dc] += counts[off : off + dc]
        for j in range(int(spare_counts.size)):
            if spare_counts[j]:
                self._wear[int(self._spare_bank[j])][
                    int(self._spare_local[j])
                ] += int(spare_counts[j])
        self.total_writes += int(counts.sum())
        self.elapsed_ns += float(elapsed_ns)
        return True

    def fill_data(self, value: LineData, end: Optional[int] = None) -> None:
        """Set lines ``[0, end)`` to ``value`` without wear or latency."""
        if end is None:
            end = self.n_physical
        v = np.int8(int(value))
        dense_end = min(int(end), self._n_data)
        for b in range(self.n_shards):
            off = int(self._offsets[b])
            if off >= dense_end:
                break
            hi = min(dense_end, off + int(self._data_counts[b]))
            self._data[b][: hi - off] = v
        for j in range(max(0, int(end) - self._n_data)):
            self._data[int(self._spare_bank[j])][int(self._spare_local[j])] = v

    # -------------------------------------------------------------- status

    @property
    def failed(self) -> bool:
        """True once any line has exhausted its endurance."""
        return self._first_failure is not None

    @property
    def first_failure(self) -> Optional[LineFailure]:
        """Details of the first line failure, if any."""
        return self._first_failure

    @property
    def max_wear(self) -> int:
        """Largest per-line wear count so far (max over banks)."""
        return max(int(w.max()) if w.size else 0 for w in self._wear)

    @property
    def wear(self) -> np.ndarray:
        """Read-only gathered copy of all wear counters in global PA order.

        A copy by construction (banks are separate allocations); marked
        read-only so accidental ``array.wear[pa] = x`` raises instead of
        mutating a temporary.  Statistics consumers (Gini, wear maps) use
        this; hot paths never should.
        """
        return self._gathered(self._wear)

    @property
    def data(self) -> np.ndarray:
        """Read-only gathered copy of all line contents in global PA order."""
        return self._gathered(self._data)

    def _gathered(self, arrays: List[np.ndarray]) -> np.ndarray:
        out = np.empty(self.n_physical, dtype=arrays[0].dtype)
        for b in range(self.n_shards):
            off = int(self._offsets[b])
            dc = int(self._data_counts[b])
            out[off : off + dc] = arrays[b][:dc]
        for j in range(int(self._spare_bank.size)):
            out[self._n_data + j] = arrays[int(self._spare_bank[j])][
                int(self._spare_local[j])
            ]
        out.setflags(write=False)
        return out

    def remaining_endurance(self) -> np.ndarray:
        """Per-line writes remaining before failure (clipped at zero)."""
        remaining = self.config.endurance - self.wear
        return np.clip(remaining, 0, None)
