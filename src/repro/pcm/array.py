"""Wear-tracked PCM line array.

:class:`PCMArray` is the physical substrate every wear-leveling scheme writes
through.  It tracks, per physical line:

* a wear counter (number of completed writes),
* the latency class of the stored data (:class:`~repro.pcm.timing.LineData`).

Wear counters live in a single numpy ``int64`` array so bulk operations
(used by the batched simulation engines) are vectorized slice/fancy-index
adds rather than Python loops.

Failure model: a line fails when its wear counter reaches the configured
endurance; by default the array raises :class:`LineFailure` at the first
failed write, which is how lifetime experiments detect end-of-life.

With fault injection armed (any nonzero fault probability in
:class:`~repro.config.PCMConfig`) the array additionally runs a bounded
program-and-verify retry loop on every wearing write, injects transient
read-disturb errors corrected by :class:`~repro.pcm.ecc.ECPModel`, and
accumulates permanent stuck-at cells; a line whose faulty cells exceed the
ECP capacity raises :class:`UncorrectableError` so the sparing layer can
retire it.  All fault probabilities zero (the default) skips every one of
these paths — latencies and lifetimes are bit-identical to the fault-free
model.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import PCMConfig
from repro.pcm.ecc import ECPModel
from repro.pcm.faults import FaultModel
from repro.pcm.timing import LineData, TimingModel
from repro.util.rng import SeedLike, as_generator


class LineFailure(Exception):
    """Raised when a write lands on a line whose endurance is exhausted.

    When the failing write was part of a :meth:`PCMArray.write_many`
    chunk, :attr:`chunk_index` carries its position within the chunk so
    the batched engine can attribute user-write counts exactly as the
    scalar engine would.
    """

    #: Index of the failing write within its ``write_many`` chunk (None
    #: for scalar writes and remap movements).
    chunk_index: Optional[int] = None

    def __init__(
        self, pa: int, wear: int, total_writes: int, elapsed_ns: float
    ) -> None:
        self.pa = pa
        self.wear = wear
        self.total_writes = total_writes
        self.elapsed_ns = elapsed_ns
        super().__init__(
            f"physical line {pa} failed after {wear} writes "
            f"({total_writes} total device writes, {elapsed_ns:.0f} ns elapsed)"
        )


class UncorrectableError(LineFailure):
    """A line accumulated more faulty cells than ECP can substitute.

    Subclasses :class:`LineFailure` so every retirement path (sparing,
    lifetime experiments) treats it as a line death; ``n_errors`` carries
    the error count that overflowed the correction capacity.
    """

    def __init__(
        self,
        pa: int,
        wear: int,
        total_writes: int,
        elapsed_ns: float,
        n_errors: int,
    ) -> None:
        super().__init__(pa, wear, total_writes, elapsed_ns)
        self.n_errors = n_errors


class PCMArray:
    """A bank of ``n_physical`` wear-limited lines.

    Parameters
    ----------
    config:
        Device parameters; ``config.endurance`` is the per-line write budget.
    n_physical:
        Number of physical lines.  Wear-leveling schemes typically require
        spares, so this is at least ``config.n_lines``.
    initial_data:
        Latency class the lines start with (default ``ALL0``).
    raise_on_failure:
        If True (default), the first write to a worn-out line raises
        :class:`LineFailure`.  If False, failures are recorded in
        :attr:`failed` and writes keep succeeding (useful for wear-
        distribution studies past first failure, e.g. Fig. 16).
    """

    def __init__(
        self,
        config: PCMConfig,
        n_physical: Optional[int] = None,
        initial_data: LineData = LineData.ALL0,
        raise_on_failure: bool = True,
        endurance_variation: float = 0.0,
        rng: SeedLike = None,
        fault_rng: SeedLike = None,
    ) -> None:
        self.config = config
        self.timing = TimingModel(config)
        self.n_physical = config.n_lines if n_physical is None else int(n_physical)
        if self.n_physical < config.n_lines:
            raise ValueError(
                f"n_physical ({self.n_physical}) must cover the logical space "
                f"({config.n_lines} lines)"
            )
        self.wear = np.zeros(self.n_physical, dtype=np.int64)
        self.data = np.full(self.n_physical, int(initial_data), dtype=np.int8)
        self.raise_on_failure = raise_on_failure
        self.total_writes = 0
        self.elapsed_ns = 0.0
        self._first_failure: Optional[LineFailure] = None
        # Process variation: per-line endurance ~ N(E, cv*E), floored at
        # 1 % of nominal.  cv = 0 keeps the fast scalar-threshold path.
        if endurance_variation < 0:
            raise ValueError("endurance_variation must be >= 0")
        self._endurance_cv = endurance_variation
        self._endurance_gen: Optional[np.random.Generator]
        self.endurance_map: Optional[np.ndarray]
        if endurance_variation > 0:
            self._endurance_gen = as_generator(rng)
            self.endurance_map = self._draw_endurance(self.n_physical)
        else:
            self._endurance_gen = None
            self.endurance_map = None
        # Fault injection (read disturb / verify failure / stuck-at) plus
        # ECP correction; None when every fault probability is zero so the
        # fault-free hot paths carry no extra branches beyond one test.
        self.faults: Optional[FaultModel]
        self.ecc: Optional[ECPModel]
        self.stuck_bits: Optional[np.ndarray]
        if config.fault_injection_enabled:
            self.faults = FaultModel(config, fault_rng)
            self.ecc = ECPModel(config)
            self.stuck_bits = np.zeros(self.n_physical, dtype=np.int16)
        else:
            self.faults = None
            self.ecc = None
            self.stuck_bits = None
        self.retry_events = 0
        self.stuck_cell_events = 0

    def _draw_endurance(self, count: int) -> np.ndarray:
        assert self._endurance_gen is not None  # armed iff variation > 0
        draws = self._endurance_gen.normal(
            self.config.endurance,
            self._endurance_cv * self.config.endurance,
            size=count,
        )
        floor = max(1.0, 0.01 * self.config.endurance)
        return np.maximum(draws, floor)

    def add_lines(self, extra: int) -> int:
        """Append ``extra`` fresh lines (a sparing pool); return their base PA.

        Extends every per-line structure consistently — wear, data, stuck
        cells and (when process variation is on) the endurance map, whose
        new entries are drawn from the same seeded distribution.
        """
        if extra < 0:
            raise ValueError("extra must be >= 0")
        base = self.n_physical
        if extra == 0:
            return base
        self.wear = np.concatenate(
            [self.wear, np.zeros(extra, dtype=self.wear.dtype)]
        )
        self.data = np.concatenate(
            [self.data, np.full(extra, int(LineData.ALL0), dtype=self.data.dtype)]
        )
        if self.stuck_bits is not None:
            self.stuck_bits = np.concatenate(
                [self.stuck_bits, np.zeros(extra, dtype=self.stuck_bits.dtype)]
            )
        if self.endurance_map is not None:
            self.endurance_map = np.concatenate(
                [self.endurance_map, self._draw_endurance(extra)]
            )
        self.n_physical += extra
        return base

    def _endurance_of(self, pa: int) -> float:
        if self.endurance_map is None:
            return self.config.endurance
        return float(self.endurance_map[pa])

    # ------------------------------------------------------------------ I/O

    def read(self, pa: int) -> LineData:
        """Read the latency class stored at physical line ``pa``."""
        return self.read_with_latency(pa)[0]

    def read_with_latency(self, pa: int) -> Tuple[LineData, float]:
        """Read line ``pa``; return ``(data, latency_ns)``.

        With fault injection armed the read sees the line's permanent
        stuck cells plus freshly drawn transient read-disturb errors;
        ECP correction adds latency per corrected cell, and an error
        count above the ECP capacity raises :class:`UncorrectableError`
        (under ``raise_on_failure``) so the caller can retire the line.
        """
        latency = self.timing.read_latency()
        self.elapsed_ns += latency
        if self.faults is not None:
            assert self.stuck_bits is not None and self.ecc is not None
            n_errors = int(self.stuck_bits[pa]) + self.faults.read_disturb_errors()
            if n_errors:
                outcome = self.ecc.correct(n_errors)
                self.elapsed_ns += outcome.latency_ns
                latency += outcome.latency_ns
                if not outcome.correctable:
                    failure = UncorrectableError(
                        pa=int(pa),
                        wear=int(self.wear[pa]),
                        total_writes=self.total_writes,
                        elapsed_ns=self.elapsed_ns,
                        n_errors=n_errors,
                    )
                    if self._first_failure is None:
                        self._first_failure = failure
                    if self.raise_on_failure:
                        raise failure
        return LineData(int(self.data[pa])), latency

    def peek(self, pa: int) -> LineData:
        """Read without advancing time (for internal bookkeeping/tests)."""
        return LineData(int(self.data[pa]))

    def copy_data(self, src: int, dst: int) -> None:
        """Duplicate stored content ``src`` -> ``dst``, no wear, no latency.

        The sparing layer's salvage step; shared API with
        :class:`~repro.pcm.sharded.ShardedPCMArray`, whose ``data``
        property is a read-only copy and cannot be poked directly.
        """
        self.data[dst] = self.data[src]

    def write(self, pa: int, data: LineData) -> float:
        """Write ``data`` to line ``pa``; return this write's latency in ns.

        The latency is also accumulated on :attr:`elapsed_ns`.  Under
        ``config.differential_writes`` a rewrite of identical content
        costs a verify read and causes no wear.  With a nonzero
        ``config.verify_fail_base`` every wearing write runs the
        program-and-verify retry loop, whose cost (one verify read, plus
        a re-program and re-verify per failed attempt) is folded into
        the returned latency — retries are attacker-observable.
        """
        old = LineData(int(self.data[pa]))
        latency, wears = self.timing.write_transition(old, data)
        self.elapsed_ns += latency
        if wears:
            self._apply_wear(pa)
            if self.faults is not None and self.faults.verify_armed:
                latency += self._verify_and_retry(pa, data)
        self.data[pa] = int(data)
        return latency

    def copy(self, src: int, dst: int) -> float:
        """Remap movement: read ``src``, write its content to ``dst``.

        Returns the movement latency (Fig. 4(a) cost).
        """
        data = LineData(int(self.data[src]))
        old = LineData(int(self.data[dst]))
        write_ns, wears = self.timing.write_transition(old, data)
        latency = self.timing.read_latency() + write_ns
        self.elapsed_ns += latency
        if wears:
            self._apply_wear(dst)
            if self.faults is not None and self.faults.verify_armed:
                latency += self._verify_and_retry(dst, data)
        self.data[dst] = int(data)
        return latency

    def swap(self, pa_a: int, pa_b: int) -> float:
        """Security-Refresh movement: exchange two lines' contents.

        Returns the swap latency (Fig. 4(b) cost).  Both lines wear by one
        (unless differential writes skip an identical rewrite).
        """
        da = LineData(int(self.data[pa_a]))
        db = LineData(int(self.data[pa_b]))
        write_a, wears_a = self.timing.write_transition(da, db)
        write_b, wears_b = self.timing.write_transition(db, da)
        latency = 2.0 * self.timing.read_latency() + write_a + write_b
        self.elapsed_ns += latency
        if wears_a:
            self._apply_wear(pa_a)
        if wears_b:
            self._apply_wear(pa_b)
        if self.faults is not None and self.faults.verify_armed:
            if wears_a:
                latency += self._verify_and_retry(pa_a, db)
            if wears_b:
                latency += self._verify_and_retry(pa_b, da)
        self.data[pa_a] = int(db)
        self.data[pa_b] = int(da)
        return latency

    # ------------------------------------------------------- batched I/O

    def write_many(self, pas: np.ndarray, datas: np.ndarray) -> float:
        """Write a chunk of lines; return the chunk's total latency in ns.

        Bit-identical to calling :meth:`write` once per element: the same
        ``elapsed_ns`` (latencies are integer-valued ns, so the float sum
        is exact), the same per-line ``wear``/``total_writes``, and —
        when a write exhausts a line — a :class:`LineFailure` for the
        *earliest* failing write with the exact scalar-path state at that
        point (its :attr:`LineFailure.chunk_index` is set so callers can
        attribute partial progress).

        Fast-path preconditions checked here, not by the caller:

        * fault injection armed ⇒ per-write scalar fallback (retry loops
          and stuck-cell accounting stay exact);
        * a possible endurance failure inside the chunk ⇒ scalar replay
          of the whole chunk (no state was mutated yet, so the replay is
          the scalar path verbatim).

        Duplicate ``pas`` are handled exactly: wear accumulates per
        occurrence (``np.add.at``), differential-write transitions chain
        through the chunk, and the last write wins for stored data.
        """
        pas = np.ascontiguousarray(pas, dtype=np.int64)
        datas = np.ascontiguousarray(datas, dtype=np.int8)
        n = int(pas.size)
        if n == 0:
            return 0.0
        if self.faults is not None:
            return self._write_many_scalar(pas, datas)
        if self.config.differential_writes:
            old = self._chunk_old_data(pas, datas)
            lat = self.timing.transition_latency_table[old, datas]
            wears = self.timing.transition_wears_table[old, datas]
            wear_pas = pas[wears]
            n_wearing = int(wear_pas.size)
        else:
            lat = self.timing.latency_table[datas]
            wear_pas = pas
            n_wearing = n
        if self._first_failure is None and n_wearing:
            # Cheap screen first: even if every wearing write of the
            # chunk landed on the single most-worn line touched, could
            # anything fail?  Only then pay for the exact per-line test.
            touched_wear = self.wear[wear_pas]
            if self.endurance_map is None:
                limit_min: float = self.config.endurance
            else:
                limit_min = float(self.endurance_map[wear_pas].min())
            if int(touched_wear.max()) + n_wearing >= limit_min:
                unique, counts = np.unique(wear_pas, return_counts=True)
                if self.endurance_map is None:
                    limit: Union[float, np.ndarray] = self.config.endurance
                else:
                    limit = self.endurance_map[unique]
                if bool(np.any(self.wear[unique] + counts >= limit)):
                    # Someone fails by the end of this chunk; replay it
                    # scalar so the failure snapshot (wear, total_writes,
                    # elapsed_ns at the failing write) matches exactly.
                    return self._write_many_scalar(pas, datas)
        chunk_ns = float(np.sum(lat))
        self.elapsed_ns += chunk_ns
        if n_wearing:
            np.add.at(self.wear, wear_pas, 1)
            self.total_writes += n_wearing
        # Last write wins per pa: numpy fancy-index assignment stores
        # values in index order, so a repeated pa ends up holding its
        # chronologically last value (the equivalence suite pins this).
        self.data[pas] = datas
        return chunk_ns

    def _write_many_scalar(self, pas: np.ndarray, datas: np.ndarray) -> float:
        """Scalar fallback of :meth:`write_many`; tags failure positions."""
        latency = 0.0
        for i in range(pas.size):
            try:
                latency += self.write(int(pas[i]), LineData(int(datas[i])))
            except LineFailure as failure:
                if failure.chunk_index is None:
                    failure.chunk_index = i
                raise
        return latency

    def _chunk_old_data(self, pas: np.ndarray, datas: np.ndarray) -> np.ndarray:
        """Per-write *old* latency class, honouring intra-chunk rewrites.

        The first write to a pa within the chunk reads the array state;
        every repeat reads whatever the chunk itself last wrote there.
        """
        n = int(pas.size)
        order = np.argsort(pas, kind="stable")
        sorted_pas = pas[order]
        sorted_datas = datas[order]
        first = np.ones(n, dtype=bool)
        first[1:] = sorted_pas[1:] != sorted_pas[:-1]
        old_sorted = np.empty(n, dtype=np.int8)
        old_sorted[first] = self.data[sorted_pas[first]]
        repeats = np.nonzero(~first)[0]
        old_sorted[repeats] = sorted_datas[repeats - 1]
        old = np.empty(n, dtype=np.int8)
        old[order] = old_sorted
        return old

    # ---------------------------------------------------- verify / faults

    def _wear_fraction(self, pa: int) -> float:
        return float(self.wear[pa]) / self._endurance_of(pa)

    def _verify_and_retry(self, pa: int, data: LineData) -> float:
        """Program-and-verify tail of one wearing write; returns extra ns.

        Charges the mandatory verify read, then retries the program pulse
        (re-program + re-verify, each wearing the line) while the verify
        keeps failing, up to ``config.max_write_retries`` attempts.  A
        line still failing after the last retry gains a permanent
        stuck-at cell; overflowing the ECP capacity raises
        :class:`UncorrectableError`.
        """
        assert self.faults is not None  # caller gates on faults.verify_armed
        extra = self.timing.read_latency()
        self.elapsed_ns += extra
        retries = 0
        while self.faults.verify_failure(self._wear_fraction(pa), data):
            if retries >= self.config.max_write_retries:
                self._mark_stuck_cell(pa)
                break
            retries += 1
            self.retry_events += 1
            step = self.timing.write_latency(data) + self.timing.read_latency()
            self.elapsed_ns += step
            extra += step
            self._apply_wear(pa)
        return extra

    def _mark_stuck_cell(self, pa: int) -> None:
        assert self.stuck_bits is not None and self.ecc is not None
        self.stuck_bits[pa] += 1
        self.stuck_cell_events += 1
        if int(self.stuck_bits[pa]) > self.config.ecp_entries:
            self.ecc.uncorrectable_total += 1
            failure = UncorrectableError(
                pa=int(pa),
                wear=int(self.wear[pa]),
                total_writes=self.total_writes,
                elapsed_ns=self.elapsed_ns,
                n_errors=int(self.stuck_bits[pa]),
            )
            if self._first_failure is None:
                self._first_failure = failure
            if self.raise_on_failure:
                raise failure

    # --------------------------------------------------------------- wear

    def _apply_wear(self, pa: int) -> None:
        self.wear[pa] += 1
        self.total_writes += 1
        if self.wear[pa] >= self._endurance_of(pa):
            failure = LineFailure(
                pa=int(pa),
                wear=int(self.wear[pa]),
                total_writes=self.total_writes,
                elapsed_ns=self.elapsed_ns,
            )
            if self._first_failure is None:
                self._first_failure = failure
            if self.raise_on_failure:
                raise failure

    def bulk_wear(
        self,
        pas: Union[int, slice, Sequence[int], np.ndarray],
        counts: Union[int, np.ndarray],
        write_ns: Optional[float] = None,
    ) -> None:
        """Apply ``counts`` writes to ``pas`` in one vectorized operation.

        Used by the batched simulation engines (remap- and round-granularity)
        where per-write accounting would be prohibitive.  ``counts`` may be a
        scalar (same count for every addressed line) or an array matching
        ``pas``.  Time advances by ``total_new_writes * write_ns`` (default:
        one SET pulse per write, the paper's accounting).

        Note: when ``pas`` contains duplicate indices, ``counts`` must be a
        scalar (numpy fancy-index ``+=`` does not accumulate duplicates, so
        we route through ``np.add.at`` only for the array-count case).
        """
        if write_ns is None:
            write_ns = self.config.set_ns
        if np.isscalar(counts):
            counts_arr = None
            if isinstance(pas, slice):
                n_targets = len(range(*pas.indices(self.n_physical)))
                # reprolint: disable=REP302 slice index: no duplicates possible
                self.wear[pas] += int(counts)
            elif np.isscalar(pas):
                n_targets = 1
                # reprolint: disable=REP302 scalar index: single element
                self.wear[pas] += int(counts)
            else:
                idx = np.asarray(pas)
                n_targets = idx.size
                np.add.at(self.wear, idx, int(counts))
            new_writes = int(counts) * n_targets
        else:
            counts_arr = np.asarray(counts, dtype=np.int64)
            idx = np.asarray(pas)
            np.add.at(self.wear, idx, counts_arr)
            new_writes = int(counts_arr.sum())
        self.total_writes += new_writes
        self.elapsed_ns += new_writes * write_ns
        self._check_bulk_failure(pas)

    def apply_wear_bulk(self, counts: np.ndarray, elapsed_ns: float) -> bool:
        """Apply a dense per-line wear increment atomically, or refuse.

        The fast-forward engine's commit point: ``counts`` is a dense
        ``int64`` array of length ``n_physical`` (one entry per line, zeros
        allowed).  The increment is all-or-nothing — if *any* line would
        reach its endurance limit the call returns ``False`` with **no
        state mutated**, and the caller halves its round and retries (and
        ultimately drops back to the chunk-exact engine, which attributes
        the failing write exactly).  On success wear, ``total_writes``
        (one physical write per unit of wear) and ``elapsed_ns`` advance
        and the call returns ``True``.

        The endurance test reuses the chunk engine's max-based pre-screen:
        far from end-of-life a single ``max`` comparison proves the whole
        increment safe; only near the limit does the exact per-line
        comparison run.  Not supported under fault injection — stuck-bit
        and drift state cannot be advanced in closed form.
        """
        if self.faults is not None:
            raise ValueError(
                "apply_wear_bulk is incompatible with fault injection; "
                "use the chunk-exact engine"
            )
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_physical,):
            raise ValueError(
                f"counts must be dense over {self.n_physical} lines, "
                f"got shape {counts.shape}"
            )
        if counts.min() < 0:
            raise ValueError("negative wear count")
        if self.endurance_map is None:
            # Cheap pre-screen: worst line + worst increment still short of
            # the limit proves every line safe without a dense compare.
            if int(self.wear.max()) + int(counts.max()) >= self.config.endurance:
                if bool(((self.wear + counts) >= self.config.endurance).any()):
                    return False
        else:
            if bool(((self.wear + counts) >= self.endurance_map).any()):
                return False
        self.wear += counts
        self.total_writes += int(counts.sum())
        self.elapsed_ns += float(elapsed_ns)
        return True

    def fill_data(self, value: LineData, end: Optional[int] = None) -> None:
        """Set line contents to ``value`` without wear or latency.

        The fast-forward engine's steady-state data model: once a run of
        analytic rounds begins, every scheme-visible line is assumed to
        hold the trace's write data (the non-differential timing tables
        depend only on the *new* data, so user-write latency is exact; see
        docs/performance.md for the movement-latency model).
        """
        if end is None:
            end = self.n_physical
        self.data[:end] = np.int8(int(value))

    def _check_bulk_failure(
        self, pas: Union[int, slice, Sequence[int], np.ndarray]
    ) -> None:
        if isinstance(pas, slice) or not np.isscalar(pas):
            region = self.wear[pas]
            if self.endurance_map is None:
                limit = self.config.endurance
            else:
                limit = self.endurance_map[pas]
            over = region >= limit
            if over.any():
                local = int(np.argmax(over))
                if isinstance(pas, slice):
                    pa = range(*pas.indices(self.n_physical))[local]
                else:
                    pa = int(np.asarray(pas)[local])
            else:
                return
        else:
            if self.wear[pas] < self._endurance_of(int(pas)):
                return
            pa = int(pas)
        failure = LineFailure(
            pa=pa,
            wear=int(self.wear[pa]),
            total_writes=self.total_writes,
            elapsed_ns=self.elapsed_ns,
        )
        if self._first_failure is None:
            self._first_failure = failure
        if self.raise_on_failure:
            raise failure

    # -------------------------------------------------------------- status

    @property
    def failed(self) -> bool:
        """True once any line has exhausted its endurance."""
        return self._first_failure is not None

    @property
    def first_failure(self) -> Optional[LineFailure]:
        """Details of the first line failure, if any."""
        return self._first_failure

    @property
    def max_wear(self) -> int:
        """Largest per-line wear count so far."""
        return int(self.wear.max())

    def remaining_endurance(self) -> np.ndarray:
        """Per-line writes remaining before failure (clipped at zero)."""
        limit = (
            self.config.endurance
            if self.endurance_map is None
            else self.endurance_map
        )
        remaining = limit - self.wear
        return np.clip(remaining, 0, None)
