"""Structured device-health reporting.

:class:`DeviceHealth` is the one snapshot every controller level can emit
(:meth:`repro.sim.memory_system.MemoryController.health`,
:meth:`repro.pcm.sparing.SparingController.health`): failure counts, spare
budget, resilience counters (retries, corrections, stuck cells) and the
degradation mode.  Fault-injection campaigns compare these reports across
seeds to check determinism, and operators of a degraded device read them
instead of a stack trace.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceHealth:
    """Point-in-time health snapshot of one simulated PCM device."""

    #: logical lines exposed to software / total physical lines backing them
    n_lines: int
    n_physical: int
    #: lifetime odometer
    total_writes: int
    elapsed_ns: float
    max_wear: int
    #: line failures observed (wear-out plus uncorrectable retirements)
    failures: int
    #: lines currently redirected to a spare
    retired_lines: int
    #: spare pool state (0/0 for a bare, spare-less controller)
    n_spares: int
    spares_left: int
    #: True once the spare pool ran dry in degraded mode — writes rejected
    read_only: bool
    #: resilience counters
    retry_events: int
    stuck_cells: int
    corrected_errors: int
    uncorrectable_errors: int
    rejected_writes: int

    @property
    def mode(self) -> str:
        """Operating mode: ``normal``, ``degraded`` or ``read-only``."""
        if self.read_only:
            return "read-only"
        if self.retired_lines > 0:
            return "degraded"
        return "normal"

    def summary(self) -> str:
        """One-line operator summary (CLI / logs)."""
        return (
            f"[{self.mode}] {self.failures} failures, "
            f"{self.retired_lines} retired, "
            f"{self.spares_left}/{self.n_spares} spares left, "
            f"{self.retry_events} retries, "
            f"{self.corrected_errors} corrected, "
            f"{self.uncorrectable_errors} uncorrectable, "
            f"{self.rejected_writes} writes rejected"
        )
