"""Wear-distribution statistics (used for Fig. 16 and uniformity analyses)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WearStats:
    """Summary statistics of a wear-count vector."""

    total: int
    mean: float
    std: float
    max: int
    min: int
    cov: float  #: coefficient of variation (std / mean); 0 = perfectly even
    gini: float  #: Gini coefficient of the wear distribution

    @classmethod
    def from_wear(cls, wear: np.ndarray) -> "WearStats":
        wear = np.asarray(wear, dtype=np.float64)
        total = float(wear.sum())
        mean = float(wear.mean())
        std = float(wear.std())
        cov = std / mean if mean > 0 else 0.0
        return cls(
            total=int(total),
            mean=mean,
            std=std,
            max=int(wear.max()),
            min=int(wear.min()),
            cov=cov,
            gini=gini_coefficient(wear),
        )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative vector (0 = equal, →1 = skewed).

    Computed with the sorted-weights identity, O(n log n) and vectorized.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = v.size
    if n == 0:
        raise ValueError("empty input")
    total = v.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * v).sum()) / (n * total) - (n + 1.0) / n)


def normalized_accumulated_writes(wear: np.ndarray) -> np.ndarray:
    """Cumulative wear fraction across the address space (Fig. 16's y-axis).

    Returns ``cumsum(wear) / sum(wear)`` over physical addresses in order;
    a perfectly uniform distribution yields a straight diagonal.
    """
    wear = np.asarray(wear, dtype=np.float64)
    total = wear.sum()
    if total == 0:
        # No writes yet: the flat distribution is the natural convention.
        return np.linspace(1.0 / wear.size, 1.0, wear.size)
    return np.cumsum(wear) / total


def uniformity_deviation(wear: np.ndarray) -> float:
    """Max vertical deviation of the Fig. 16 curve from the ideal diagonal.

    A Kolmogorov-Smirnov-style statistic in [0, 1); 0 means the accumulated
    write curve is exactly linear (perfectly even wear).
    """
    curve = normalized_accumulated_writes(wear)
    n = curve.size
    diagonal = np.arange(1, n + 1, dtype=np.float64) / n
    return float(np.abs(curve - diagonal).max())
