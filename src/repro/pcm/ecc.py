"""ECP-style error correction (Error-Correcting Pointers).

PCM's dominant failure mode is hard stuck-at cells, which ECC-for-DRAM
handles poorly but *Error-Correcting Pointers* (Schechter et al., ISCA'10)
handle natively: each line carries ``ecp_entries`` pointer/replacement-cell
pairs, each able to substitute one faulty cell.  The same capacity also
covers transient read-disturb flips in this model.

:class:`ECPModel` is deliberately small: given the number of erroneous
cells observed on a read, it decides correctable vs. uncorrectable, charges
a per-correction latency, and keeps running totals for the
:class:`~repro.pcm.health.DeviceHealth` report.  Uncorrectable lines are
*retired* by the sparing layer, not patched — that is the graceful-
degradation path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PCMConfig


@dataclass(frozen=True)
class CorrectionOutcome:
    """Result of running correction over one line read.

    Attributes
    ----------
    correctable:
        True when the error count fits the line's ECP capacity.
    corrected:
        Number of errors substituted (0 when uncorrectable).
    latency_ns:
        Correction latency charged to the read.  An uncorrectable line
        still pays for the full capacity's worth of pointer lookups
        before the failure is declared.
    """

    correctable: bool
    corrected: int
    latency_ns: float


class ECPModel:
    """Per-device ECP correction bookkeeping.

    Parameters
    ----------
    config:
        ``config.ecp_entries`` is the per-line capacity (0 = no
        correction: any error is uncorrectable), ``config.ecp_correction_ns``
        the latency per substituted cell.
    """

    def __init__(self, config: PCMConfig):
        self.entries = config.ecp_entries
        self.correction_ns = config.ecp_correction_ns
        self.corrected_total = 0
        self.uncorrectable_total = 0

    def correct(self, n_errors: int) -> CorrectionOutcome:
        """Attempt to correct ``n_errors`` faulty cells on one read."""
        if n_errors < 0:
            raise ValueError("n_errors must be >= 0")
        if n_errors <= self.entries:
            self.corrected_total += n_errors
            return CorrectionOutcome(
                correctable=True,
                corrected=n_errors,
                latency_ns=n_errors * self.correction_ns,
            )
        self.uncorrectable_total += 1
        return CorrectionOutcome(
            correctable=False,
            corrected=0,
            latency_ns=self.entries * self.correction_ns,
        )
