"""Table-based hot/cold-swap wear leveling (paper Section II-A motivation).

Table-based schemes track per-line write counts and periodically swap the
hottest line with the coldest one through an explicit mapping table.  The
paper cites them as the straw-man whose determinism makes them easy to
attack ("the location of the mapped line can be guessed easily") and whose
table costs motivate the algebraic schemes.

This implementation keeps an LA→PA table plus the inverse, counts writes per
*physical* line, and every ``swap_interval`` writes swaps the most-written
physical line's resident data with the least-written line's.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.wearlevel.base import Move, SwapMove, WearLeveler


class TableBasedWearLeveling(WearLeveler):
    """Hot/cold swap driven by per-line write counts."""

    def __init__(self, n_lines: int, swap_interval: int = 64):
        if n_lines < 2:
            raise ValueError("n_lines must be >= 2")
        if swap_interval < 1:
            raise ValueError("swap_interval must be >= 1")
        self.n_lines = n_lines
        self.n_physical = n_lines
        self.swap_interval = swap_interval
        self.table = np.arange(n_lines, dtype=np.int64)  # LA -> PA
        self.inverse = np.arange(n_lines, dtype=np.int64)  # PA -> LA
        self.write_counts = np.zeros(n_lines, dtype=np.int64)  # per PA
        self.write_count = 0
        self.total_swaps = 0

    def translate(self, la: int) -> int:
        self._check_la(la)
        return int(self.table[la])

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        pa = int(self.table[la])
        self.write_counts[pa] += 1
        self.write_count += 1
        if self.write_count % self.swap_interval != 0:
            return []
        hot = int(np.argmax(self.write_counts))
        cold = int(np.argmin(self.write_counts))
        if hot == cold:
            return []
        self._swap_physical(hot, cold)
        self.total_swaps += 1
        return [SwapMove(pa_a=hot, pa_b=cold)]

    def _swap_physical(self, pa_a: int, pa_b: int) -> None:
        la_a = int(self.inverse[pa_a])
        la_b = int(self.inverse[pa_b])
        self.table[la_a], self.table[la_b] = pa_b, pa_a
        self.inverse[pa_a], self.inverse[pa_b] = la_b, la_a

    # ------------------------------------------------------- batched API

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self.table[las]

    def writes_until_next_remap(self) -> int:
        return self.swap_interval - (self.write_count % self.swap_interval)

    def record_writes_many(self, las: np.ndarray) -> None:
        # The table is static over the prefix, so per-PA counts are the
        # translated addresses' multiplicities (np.add.at accumulates
        # duplicates, unlike fancy-index +=).
        np.add.at(self.write_counts, self.table[las], 1)
        self.write_count += int(las.size)
