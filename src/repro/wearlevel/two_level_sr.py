"""Two-level (hierarchical) Security Refresh (paper Section III-C/E).

The outer SR region spans the whole LA space and remaps LA → IA; the IA
space is then divided into equal-size contiguous sub-regions, each managed
by an inner SR region translating IA → PA within the sub-region.  "Both
levels apply the SR scheme, but are transparent and independent to each
other":

* the outer write counter counts *all* writes to the bank
  (``outer_interval`` per remap),
* each inner write counter counts writes landing *in that sub-region*
  (``inner_interval`` per remap).

An outer remap swaps two IAs; physically this swaps the lines the two IAs
currently occupy *through* the inner mapping.  An inner remap swaps two
slots inside one sub-region.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import (
    Move,
    RoundProfile,
    SwapMove,
    WearLeveler,
    grouped_cumcount,
    spread_exact,
)
from repro.wearlevel.security_refresh import SRRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


class TwoLevelSecurityRefresh(WearLeveler):
    """Hierarchical Security Refresh.

    Parameters
    ----------
    n_lines:
        Logical lines (power of two).
    n_subregions:
        Number of inner SR sub-regions; must divide ``n_lines`` with a
        power-of-two quotient.
    inner_interval / outer_interval:
        Remapping intervals of the two levels (the paper's suggested
        configuration is 512 sub-regions, inner 64, outer 128).
    """

    def __init__(
        self,
        n_lines: int,
        n_subregions: int = 512,
        inner_interval: int = 64,
        outer_interval: int = 128,
        rng: SeedLike = None,
    ):
        if n_subregions < 1 or n_lines % n_subregions != 0:
            raise ValueError(
                f"n_subregions ({n_subregions}) must divide n_lines ({n_lines})"
            )
        self.n_lines = n_lines
        self.n_physical = n_lines
        self.n_subregions = n_subregions
        self.subregion_size = n_lines // n_subregions
        bit_length_exact(self.subregion_size)  # validates power of two
        gen = as_generator(rng)
        self.outer = SRRegion(n_lines, outer_interval, gen)
        self.inners = [
            SRRegion(self.subregion_size, inner_interval, gen)
            for _ in range(n_subregions)
        ]

    # ------------------------------------------------------------- mapping

    def subregion_of(self, ia: int) -> int:
        """Sub-region index of an intermediate address."""
        return ia // self.subregion_size

    def _phys_of_ia(self, ia: int) -> int:
        region = self.subregion_of(ia)
        local = ia % self.subregion_size
        return region * self.subregion_size + self.inners[region].translate(local)

    def translate(self, la: int) -> int:
        self._check_la(la)
        return self._phys_of_ia(self.outer.translate(la))

    # -------------------------------------------------------------- writes

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        moves: List[Move] = []
        # Outer level counts every write to the bank.
        outer_swap = self.outer.record_write()
        if outer_swap is not None:
            ia_a, ia_b = outer_swap
            pa_a = self._phys_of_ia(ia_a)
            pa_b = self._phys_of_ia(ia_b)
            if pa_a != pa_b:
                moves.append(SwapMove(pa_a=pa_a, pa_b=pa_b))
        # Inner level counts writes landing in the target sub-region
        # (computed under the post-outer-remap mapping).
        ia = self.outer.translate(la)
        region = self.subregion_of(ia)
        base = region * self.subregion_size
        inner_swap = self.inners[region].record_write()
        if inner_swap is not None:
            moves.append(SwapMove(pa_a=base + inner_swap[0], pa_b=base + inner_swap[1]))
        return moves

    # ------------------------------------------------------- batched API

    def _translate_inners(
        self, regions: np.ndarray, locals_: np.ndarray
    ) -> np.ndarray:
        keycs = np.fromiter(
            (r.keyc for r in self.inners), dtype=np.int64, count=self.n_subregions
        )
        keyps = np.fromiter(
            (r.keyp for r in self.inners), dtype=np.int64, count=self.n_subregions
        )
        crps = np.fromiter(
            (r.crp for r in self.inners), dtype=np.int64, count=self.n_subregions
        )
        kc = keycs[regions]
        kp = keyps[regions]
        pairs = locals_ ^ kc ^ kp
        remapped = np.minimum(locals_, pairs) < crps[regions]
        return regions * self.subregion_size + (
            locals_ ^ np.where(remapped, kc, kp)
        )

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        ias = self.outer.translate_many(np.asarray(las, dtype=np.int64))
        return self._translate_inners(
            ias // self.subregion_size, ias % self.subregion_size
        )

    def writes_until_next_remap(self) -> int:
        inner_min = min(r.writes_until_next_remap for r in self.inners)
        return min(self.outer.writes_until_next_remap, inner_min)

    def consume_chunk(self, las: np.ndarray) -> Tuple[np.ndarray, int]:
        """Exact split: outer counter is global, inner counters per region.

        The prefix must end strictly before the outer trigger (every write
        counts there) *and* before the first write whose region-local
        occurrence number reaches its inner region's remaining count.
        """
        if las.size == 0:
            return np.empty(0, dtype=np.int64), 0
        limit = min(int(las.size), self.outer.writes_until_next_remap - 1)
        if limit <= 0:
            return np.empty(0, dtype=np.int64), 0
        remaining = np.fromiter(
            (r.writes_until_next_remap for r in self.inners),
            dtype=np.int64,
            count=self.n_subregions,
        )
        # Trigger right at index 0 (the call after an inner remap) needs
        # no scan; one scalar outer translate answers it.
        first_region = self.outer.translate(int(las[0])) // self.subregion_size
        if remaining[first_region] <= 1:
            return np.empty(0, dtype=np.int64), 0
        # Inner scan-window cap (same rationale as RBSG's consume_chunk).
        limit = min(limit, max(int(remaining.sum()), 1))
        las = np.asarray(las[:limit], dtype=np.int64)
        ias = self.outer.translate_many(las)
        regions = ias // self.subregion_size
        trigger = np.nonzero(grouped_cumcount(regions) + 1 >= remaining[regions])[0]
        n = int(trigger[0]) if trigger.size else limit
        if n == 0:
            return np.empty(0, dtype=np.int64), 0
        regions = regions[:n]
        pas = self._translate_inners(regions, ias[:n] % self.subregion_size)
        self.outer.write_count += n
        counts = np.bincount(regions, minlength=self.n_subregions)
        for r in np.nonzero(counts)[0]:
            self.inners[int(r)].write_count += int(counts[r])
        return pas, n

    # -------------------------------------------------- fast-forward API

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Hierarchical SR: outer XOR over the bank, inner XOR per region.

        Both levels are XOR bijections, so uniform and sequential traffic
        cover the physical space evenly; the inner region shares under
        zipf come from a snapshot of the outer mapping, with ``writes``
        clipped to one outer key round.  Swap wear at both levels is two
        line writes per actual swap, half the triggers in expectation.
        RAA is declined.
        """
        if spec.kind == "raa":
            return None
        writes = int(writes)
        n = self.n_lines
        size = self.subregion_size
        if spec.kind == "zipf":
            writes = min(writes, n * self.outer.remap_interval)
        outer_swaps = self.outer.pending_triggers(writes) * self.outer.swap_factor
        rates = np.full(n, 2.0 * outer_swaps / n)
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            ias = self.outer.translate_many(np.arange(n, dtype=np.int64))
            region_q = np.bincount(
                ias // size, weights=weights, minlength=self.n_subregions
            )
        else:
            region_q = np.full(self.n_subregions, 1.0 / self.n_subregions)
        region_writes = spread_exact(region_q * writes, writes)
        inner_swaps = 0.0
        for index, inner in enumerate(self.inners):
            w_r = int(region_writes[index])
            swaps = inner.pending_triggers(w_r) * inner.swap_factor
            inner_swaps += swaps
            base = index * size
            rates[base : base + size] += 2.0 * swaps / size
        counts: Optional[np.ndarray] = None
        if spec.kind == "uniform":
            rates += writes / n
        elif spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            user = np.zeros(n)
            np.add.at(
                user,
                self.translate_many(np.arange(n, dtype=np.int64)),
                weights,
            )
            rates += user * writes
        else:  # sequential: deterministic even coverage through both XORs
            counts = spread_exact(np.full(n, writes / n), writes)
        elapsed = writes * timing.write_latency(spec.data)
        elapsed += (outer_swaps + inner_swaps) * timing.swap_latency(
            spec.data, spec.data
        )
        return RoundProfile(
            writes,
            elapsed,
            wear_counts=counts,
            wear_rates=rates,
            meta={"region_writes": region_writes},
        )

    def apply_round(self, profile: RoundProfile) -> float:
        outer_triggers = self.outer.pending_triggers(profile.writes)
        self.outer.write_count += profile.writes
        self.outer.advance_triggers(outer_triggers)
        region_writes = profile.meta["region_writes"]
        assert isinstance(region_writes, np.ndarray)
        for inner, w_r in zip(self.inners, region_writes):
            triggers = inner.pending_triggers(int(w_r))
            inner.write_count += int(w_r)
            inner.advance_triggers(triggers)
        return profile.elapsed_ns

    # ------------------------------------------------------------- oracles

    @property
    def outer_key_xor(self) -> int:
        """Ground truth outer ``keyc XOR keyp`` (RTA recovery target)."""
        return self.outer.keyc ^ self.outer.keyp

    def inner_key_xor(self, region: int) -> int:
        """Ground truth inner ``keyc XOR keyp`` of one sub-region."""
        inner = self.inners[region]
        return inner.keyc ^ inner.keyp
