"""Common interface for wear-leveling schemes.

The split of responsibilities mirrors a real memory controller:

* the *scheme* owns the address mapping and its registers/counters;
* the *controller* (:class:`repro.sim.memory_system.MemoryController`) owns
  the PCM array and executes the data movements the scheme requests,
  accounting wear and — crucially for the Remapping Timing Attack — latency.

``record_write`` returns the movements triggered by one logical write.  The
scheme's mapping state is already updated when the movements are returned,
so the caller must execute them (in order) before translating the write.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Union


@dataclass(frozen=True)
class CopyMove:
    """Copy the content of physical line ``src`` to physical line ``dst``.

    Cost model (Fig. 4a): one read of ``src`` plus one write of ``dst`` with
    ``src``'s data — 250 ns for ALL-0 content, 1125 ns otherwise.
    """

    src: int
    dst: int


@dataclass(frozen=True)
class SwapMove:
    """Exchange the contents of two physical lines (Security Refresh).

    Cost model (Fig. 4b): two reads plus two writes — 500/1375/2250 ns
    depending on the two contents.
    """

    pa_a: int
    pa_b: int


Move = Union[CopyMove, SwapMove]


class WearLeveler(abc.ABC):
    """Base class for all wear-leveling schemes.

    Attributes
    ----------
    n_lines:
        Number of logical lines the scheme exposes.
    n_physical:
        Number of physical lines the scheme requires (logical lines plus
        any gap/spare lines).
    """

    n_lines: int
    n_physical: int

    @abc.abstractmethod
    def translate(self, la: int) -> int:
        """Map logical address ``la`` to its current physical address."""

    @abc.abstractmethod
    def record_write(self, la: int) -> List[Move]:
        """Account one logical write to ``la``; return triggered movements.

        The returned movements reflect remappings whose effect is *already*
        visible through :meth:`translate`.
        """

    # ------------------------------------------------------------- helpers

    def _check_la(self, la: int) -> None:
        if not 0 <= la < self.n_lines:
            raise ValueError(f"logical address {la} outside [0, {self.n_lines})")

    def mapping_snapshot(self) -> List[int]:
        """Full LA→PA table under the current state (tests / small configs)."""
        return [self.translate(la) for la in range(self.n_lines)]
