"""Common interface for wear-leveling schemes.

The split of responsibilities mirrors a real memory controller:

* the *scheme* owns the address mapping and its registers/counters;
* the *controller* (:class:`repro.sim.memory_system.MemoryController`) owns
  the PCM array and executes the data movements the scheme requests,
  accounting wear and — crucially for the Remapping Timing Attack — latency.

``record_write`` returns the movements triggered by one logical write.  The
scheme's mapping state is already updated when the movements are returned,
so the caller must execute them (in order) before translating the write.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


def grouped_cumcount(groups: np.ndarray) -> np.ndarray:
    """Occurrence number (0-based) of each element within its group.

    ``grouped_cumcount([3, 1, 3, 3, 1]) == [0, 0, 1, 2, 1]``.  This is the
    primitive the region-partitioned schemes use to find the first write of
    a chunk that reaches a region's remap trigger: element ``i`` is its
    region's ``occ[i]``-th write in the chunk.
    """
    n = int(groups.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    positions = np.arange(n, dtype=np.int64)
    group_start = positions.copy()
    group_start[1:] = np.where(
        sorted_groups[1:] != sorted_groups[:-1], positions[1:], 0
    )
    np.maximum.accumulate(group_start, out=group_start)
    occ = np.empty(n, dtype=np.int64)
    occ[order] = positions - group_start
    return occ


@dataclass(frozen=True)
class CopyMove:
    """Copy the content of physical line ``src`` to physical line ``dst``.

    Cost model (Fig. 4a): one read of ``src`` plus one write of ``dst`` with
    ``src``'s data — 250 ns for ALL-0 content, 1125 ns otherwise.
    """

    src: int
    dst: int


@dataclass(frozen=True)
class SwapMove:
    """Exchange the contents of two physical lines (Security Refresh).

    Cost model (Fig. 4b): two reads plus two writes — 500/1375/2250 ns
    depending on the two contents.
    """

    pa_a: int
    pa_b: int


Move = Union[CopyMove, SwapMove]


def spread_exact(expected: np.ndarray, total: int) -> np.ndarray:
    """Integer wear counts summing to ``total`` that round ``expected``.

    Floor each slot's expected count, then hand the remaining units to the
    slots with the largest fractional parts (ties broken by lower index).
    This is the "two-pass-exact" discretization the deterministic trace
    kinds (sequential, RAA) use: the aggregate is exact and no slot is off
    by more than one write.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    floors = np.floor(expected).astype(np.int64)
    short = total - int(floors.sum())
    if short < 0:
        raise ValueError("expected counts sum above total")
    if short > 0:
        frac = expected - floors
        top = np.argsort(-frac, kind="stable")[:short]
        floors[top] += 1
    return floors


@dataclass(frozen=True)
class RoundProfile:
    """Closed-form wear increment for a run of remap rounds.

    Produced by :meth:`WearLeveler.round_wear_profile` and committed by
    :meth:`WearLeveler.apply_round`.  The profile describes what ``writes``
    logical writes of a known trace distribution do to the device while the
    scheme's mapping evolves through zero or more remap rounds:

    ``wear_counts``
        Dense per-PA *exact* wear (``int64``, length ``n_physical``) — the
        deterministic part: remap movement wear and deterministic trace
        kinds (sequential sweeps, RAA).  ``None`` means all-zero.
    ``wear_rates``
        Dense per-PA *expected* wear (``float64``) for the stochastic part
        of the round; the driver draws ``Poisson(wear_rates)`` so per-line
        wear keeps its natural balls-into-bins fluctuations.  ``None``
        means the profile is fully deterministic (``exact`` is then True).
    ``elapsed_ns``
        Expected simulated time for the round: user-write latency plus
        remap movement latency, computed from the controller's timing
        model.  Returned again by ``apply_round`` so callers account it.
    ``meta``
        Scheme-private advance payload (movement counts, completed rounds)
        carried from profile construction to :meth:`apply_round`.
    """

    writes: int
    elapsed_ns: float
    wear_counts: Optional[np.ndarray] = None
    wear_rates: Optional[np.ndarray] = None
    exact: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.writes <= 0:
            raise ValueError(f"profile writes must be > 0, got {self.writes}")
        if self.wear_counts is None and self.wear_rates is None:
            raise ValueError("profile needs wear_counts and/or wear_rates")


class WearLeveler(abc.ABC):
    """Base class for all wear-leveling schemes.

    Attributes
    ----------
    n_lines:
        Number of logical lines the scheme exposes.
    n_physical:
        Number of physical lines the scheme requires (logical lines plus
        any gap/spare lines).
    """

    n_lines: int
    n_physical: int

    @abc.abstractmethod
    def translate(self, la: int) -> int:
        """Map logical address ``la`` to its current physical address."""

    @abc.abstractmethod
    def record_write(self, la: int) -> List[Move]:
        """Account one logical write to ``la``; return triggered movements.

        The returned movements reflect remappings whose effect is *already*
        visible through :meth:`translate`.
        """

    # ------------------------------------------------------- batched API
    #
    # The fast simulation engine exploits the schemes' shared structure:
    # between remap triggers the LA→PA mapping is *static*, so a chunk of
    # writes can be translated and accounted as numpy array operations.
    # The contract has three parts; `consume_chunk` composes them and is
    # what the controller actually calls.

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate` of in-range addresses.

        The default loops the scalar method (correct for any scheme);
        every shipped scheme overrides it with array arithmetic.  Bounds
        are the caller's responsibility (the controller validates whole
        chunks at once).
        """
        return np.fromiter(
            (self.translate(int(la)) for la in las),
            dtype=np.int64,
            count=int(las.size),
        )

    def writes_until_next_remap(self) -> int:
        """``k``: the ``k``-th next write *may* trigger a remap.

        The first ``k - 1`` writes are guaranteed remap-free regardless of
        their addresses.  The base class returns 1 — "the very next write
        may remap" — the *conservative fallback*: always safe, and it makes
        the chunk engine degrade transparently to the scalar path one write
        at a time.  Schemes with countable triggers return their real
        counter distance; region-partitioned schemes return a conservative
        minimum here and do the exact per-address split in
        :meth:`consume_chunk`.

        The analytic fast-forward tier mirrors exactly this contract one
        level up: :meth:`round_wear_profile` returning ``None`` is the
        round-granular analogue of returning 1 here — "I cannot promise
        anything about whole rounds; drive me through the chunk (and
        ultimately scalar) path instead."  A scheme that overrides neither
        method still simulates correctly, just without the speedups.
        """
        return 1

    # -------------------------------------------------- fast-forward API
    #
    # One more rung up the same ladder: between remap *events* the mapping
    # is static (the chunk contract above), and across a whole remap
    # *round* the wear deposited by a known trace distribution has a
    # closed form.  `round_wear_profile` returns that closed form as a
    # dense per-PA increment (exact counts, expected rates, or both) and
    # `apply_round` commits the matching mapping-state jump.  See
    # repro.sim.fastforward for the driver and docs/performance.md for
    # the error-bound model.

    def round_wear_profile(
        self,
        spec: "TraceSpec",
        writes: int,
        timing: "TimingModel",
    ) -> Optional[RoundProfile]:
        """Closed-form wear profile for ``writes`` writes of ``spec``.

        Returns ``None`` — the conservative fallback mirroring the base
        :meth:`writes_until_next_remap` contract — when the scheme cannot
        (or chooses not to) describe the requested trace analytically; the
        fast-forward driver then drops back to the chunk-exact engine,
        which is always correct.  Schemes that do return a profile may
        clip ``profile.writes`` below the requested ``writes`` (e.g. to a
        key-rotation boundary); the driver honors the clip.
        """
        return None

    def apply_round(self, profile: RoundProfile) -> float:
        """Commit the mapping-state jump described by ``profile``.

        Called by the fast-forward driver *after* the wear increment was
        accepted by :meth:`repro.pcm.array.PCMArray.apply_wear_bulk`.
        Returns the round's ``elapsed_ns`` — simulated latency the caller
        must account, exactly like the scalar/batched write paths.  The
        base class raises: a scheme that never returns a profile from
        :meth:`round_wear_profile` is never asked to apply one.
        """
        raise NotImplementedError(
            f"{type(self).__name__} returned no round profile; "
            "apply_round must not be called"
        )

    def record_writes_many(self, las: np.ndarray) -> None:
        """Account a run of writes *known* to trigger no remap.

        Only valid for the remap-free prefix established by
        :meth:`writes_until_next_remap` / :meth:`consume_chunk`.  The
        default loops :meth:`record_write` and insists nothing fires.
        """
        for la in las:
            if self.record_write(int(la)):
                raise RuntimeError(
                    "record_writes_many crossed a remap trigger; "
                    "writes_until_next_remap over-promised"
                )

    def consume_chunk(self, las: np.ndarray) -> Tuple[np.ndarray, int]:
        """Translate and account the longest remap-free prefix of ``las``.

        Returns ``(pas, n)``: physical addresses of the first ``n`` writes,
        whose counters are now advanced.  ``n == 0`` means the very next
        write may remap — the caller must issue it through the scalar
        :meth:`record_write`/:meth:`translate` path (executing any
        movements), then try the next chunk.

        Translation happens against the pre-chunk state, which equals the
        per-write state because no remap fires inside the prefix — the
        static-mapping invariant the fast engine is built on.
        """
        n = min(int(las.size), self.writes_until_next_remap() - 1)
        if n <= 0:
            return np.empty(0, dtype=np.int64), 0
        prefix = las[:n]
        pas = self.translate_many(prefix)
        self.record_writes_many(prefix)
        return pas, n

    # ------------------------------------------------------------- helpers

    def _check_la(self, la: int) -> None:
        if not 0 <= la < self.n_lines:
            raise ValueError(f"logical address {la} outside [0, {self.n_lines})")

    def mapping_snapshot(self) -> List[int]:
        """Full LA→PA table under the current state (tests / small configs)."""
        return [self.translate(la) for la in range(self.n_lines)]
