"""Identity mapping — the unprotected baseline.

Under no wear leveling a Repeated Address Attack wears out one line in
``endurance × set_ns`` time: 100 seconds for the paper's device ("an
adversary can render a memory line unusable in one minute", Section II-B).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.wearlevel.base import Move, WearLeveler


class NoWearLeveling(WearLeveler):
    """LA == PA; never remaps anything."""

    def __init__(self, n_lines: int):
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        self.n_lines = n_lines
        self.n_physical = n_lines

    def translate(self, la: int) -> int:
        self._check_la(la)
        return la

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        return []

    # ------------------------------------------------------- batched API

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return np.asarray(las, dtype=np.int64)

    def writes_until_next_remap(self) -> int:
        return 1 << 62  # never

    def record_writes_many(self, las: np.ndarray) -> None:
        pass
