"""Identity mapping — the unprotected baseline.

Under no wear leveling a Repeated Address Attack wears out one line in
``endurance × set_ns`` time: 100 seconds for the paper's device ("an
adversary can render a memory line unusable in one minute", Section II-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.wearlevel.base import Move, RoundProfile, WearLeveler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


class NoWearLeveling(WearLeveler):
    """LA == PA; never remaps anything."""

    def __init__(self, n_lines: int):
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        self.n_lines = n_lines
        self.n_physical = n_lines

    def translate(self, la: int) -> int:
        self._check_la(la)
        return la

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        return []

    # ------------------------------------------------------- batched API

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return np.asarray(las, dtype=np.int64)

    def writes_until_next_remap(self) -> int:
        return 1 << 62  # never

    def record_writes_many(self, las: np.ndarray) -> None:
        pass

    # -------------------------------------------------- fast-forward API

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Identity mapping: the trace distribution *is* the wear profile.

        Sequential and RAA are exact (the sequential phase comes from the
        spec's position); uniform and zipf are exact in expectation and
        Poisson-sampled by the driver.
        """
        writes = int(writes)
        elapsed = writes * timing.write_latency(spec.data)
        if spec.kind == "uniform":
            rates = np.full(self.n_lines, writes / self.n_lines)
            return RoundProfile(writes, elapsed, wear_rates=rates)
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            return RoundProfile(writes, elapsed, wear_rates=weights * writes)
        counts = np.zeros(self.n_lines, dtype=np.int64)
        if spec.kind == "sequential":
            base, rem = divmod(writes, self.n_lines)
            counts += base
            if rem:
                start = spec.pos % self.n_lines
                # reprolint: disable=REP302 rem < n_lines distinct offsets
                counts[(start + np.arange(rem)) % self.n_lines] += 1
        else:  # raa
            counts[spec.target] = writes
        return RoundProfile(writes, elapsed, wear_counts=counts, exact=True)

    def apply_round(self, profile: RoundProfile) -> float:
        return profile.elapsed_ns  # no mapping state to advance
