"""Multi-Way Security Refresh (Yu & Du, IEEE TC 2014; paper Section III-E).

The paper characterises the scheme family this way: the memory space is
divided into many sub-regions *by the address sequence* (contiguous LA
ranges) and wear leveling runs independently inside each sub-region.  Our
implementation gives each contiguous LA range its own one-level SR region.

This family inherits the vulnerability discussed in Section III-E: once the
attacker locates a sub-region (free — the split is by address sequence, so
the high LA bits name the sub-region directly), it takes at most
``(2N/R) * log2(R)`` writes to track its remapping, after which the whole
sub-region can be worn out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import (
    Move,
    RoundProfile,
    SwapMove,
    WearLeveler,
    grouped_cumcount,
    spread_exact,
)
from repro.wearlevel.security_refresh import SRRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


class MultiWaySR(WearLeveler):
    """Independent per-sub-region Security Refresh over contiguous LA ranges."""

    def __init__(
        self,
        n_lines: int,
        n_subregions: int = 512,
        remap_interval: int = 64,
        rng: SeedLike = None,
    ):
        if n_subregions < 1 or n_lines % n_subregions != 0:
            raise ValueError(
                f"n_subregions ({n_subregions}) must divide n_lines ({n_lines})"
            )
        self.n_lines = n_lines
        self.n_physical = n_lines
        self.n_subregions = n_subregions
        self.subregion_size = n_lines // n_subregions
        bit_length_exact(self.subregion_size)  # must be a power of two
        gen = as_generator(rng)
        self.regions = [
            SRRegion(self.subregion_size, remap_interval, gen)
            for _ in range(n_subregions)
        ]

    def subregion_of(self, la: int) -> int:
        """Sub-region index — directly the high bits of the logical address."""
        return la // self.subregion_size

    def translate(self, la: int) -> int:
        self._check_la(la)
        region = self.subregion_of(la)
        local = la % self.subregion_size
        base = region * self.subregion_size
        return base + self.regions[region].translate(local)

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        region = self.subregion_of(la)
        base = region * self.subregion_size
        swap = self.regions[region].record_write()
        if swap is None:
            return []
        return [SwapMove(pa_a=base + swap[0], pa_b=base + swap[1])]

    # ------------------------------------------------------- batched API

    def _translate_locals(
        self, regions: np.ndarray, locals_: np.ndarray
    ) -> np.ndarray:
        """Vectorized per-region SR translate of region-local addresses."""
        keycs = np.fromiter(
            (r.keyc for r in self.regions), dtype=np.int64, count=self.n_subregions
        )
        keyps = np.fromiter(
            (r.keyp for r in self.regions), dtype=np.int64, count=self.n_subregions
        )
        crps = np.fromiter(
            (r.crp for r in self.regions), dtype=np.int64, count=self.n_subregions
        )
        kc = keycs[regions]
        kp = keyps[regions]
        pairs = locals_ ^ kc ^ kp
        remapped = np.minimum(locals_, pairs) < crps[regions]
        return regions * self.subregion_size + (
            locals_ ^ np.where(remapped, kc, kp)
        )

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        las = np.asarray(las, dtype=np.int64)
        return self._translate_locals(
            las // self.subregion_size, las % self.subregion_size
        )

    def writes_until_next_remap(self) -> int:
        return min(r.writes_until_next_remap for r in self.regions)

    def consume_chunk(self, las: np.ndarray) -> Tuple[np.ndarray, int]:
        """Exact split on the first write that reaches a region's trigger."""
        if las.size == 0:
            return np.empty(0, dtype=np.int64), 0
        remaining = np.fromiter(
            (r.writes_until_next_remap for r in self.regions),
            dtype=np.int64,
            count=self.n_subregions,
        )
        # Trigger right at index 0 (the call after a remap) needs no scan.
        if remaining[int(las[0]) // self.subregion_size] <= 1:
            return np.empty(0, dtype=np.int64), 0
        # Scan-window cap at sum(remaining), same rationale as RBSG's
        # consume_chunk: a window that long always contains a trigger.
        window = min(int(las.size), max(int(remaining.sum()), 1))
        las = np.asarray(las[:window], dtype=np.int64)
        regions = las // self.subregion_size
        trigger = np.nonzero(grouped_cumcount(regions) + 1 >= remaining[regions])[0]
        n = int(trigger[0]) if trigger.size else window
        if n == 0:
            return np.empty(0, dtype=np.int64), 0
        regions = regions[:n]
        pas = self._translate_locals(regions, las[:n] % self.subregion_size)
        counts = np.bincount(regions, minlength=self.n_subregions)
        for r in np.nonzero(counts)[0]:
            self.regions[int(r)].write_count += int(counts[r])
        return pas, n

    # -------------------------------------------------- fast-forward API

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Independent SR rounds per contiguous LA range.

        Region shares come straight off the trace distribution (the split
        is by address sequence — high LA bits), deterministically
        discretized so the per-region counters advance exactly.  Zipf
        clips ``writes`` so the hottest region completes at most one key
        round, keeping its mapping snapshot valid; RAA is declined.
        """
        if spec.kind == "raa":
            return None
        writes = int(writes)
        size = self.subregion_size
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            region_q = weights.reshape(self.n_subregions, size).sum(axis=1)
            rotation = size * self.regions[0].remap_interval
            writes = min(writes, int(rotation / max(float(region_q.max()), 1e-12)))
            if writes <= 0:
                return None
        else:
            region_q = np.full(self.n_subregions, 1.0 / self.n_subregions)
        region_writes = spread_exact(region_q * writes, writes)
        rates = np.zeros(self.n_physical)
        counts: Optional[np.ndarray] = None
        total_swaps = 0.0
        for index, region in enumerate(self.regions):
            w_r = int(region_writes[index])
            swaps = region.pending_triggers(w_r) * region.swap_factor
            total_swaps += swaps
            base = index * size
            rates[base : base + size] += 2.0 * swaps / size
            if spec.kind == "uniform":
                rates[base : base + size] += w_r / size
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            user = np.zeros(self.n_physical)
            np.add.at(
                user,
                self.translate_many(np.arange(self.n_lines, dtype=np.int64)),
                weights,
            )
            rates += user * writes
        elif spec.kind == "sequential":
            counts = np.concatenate(
                [
                    spread_exact(np.full(size, int(w) / size), int(w))
                    for w in region_writes
                ]
            )
        elapsed = writes * timing.write_latency(spec.data)
        elapsed += total_swaps * timing.swap_latency(spec.data, spec.data)
        return RoundProfile(
            writes,
            elapsed,
            wear_counts=counts,
            wear_rates=rates,
            meta={"region_writes": region_writes},
        )

    def apply_round(self, profile: RoundProfile) -> float:
        region_writes = profile.meta["region_writes"]
        assert isinstance(region_writes, np.ndarray)
        for region, w_r in zip(self.regions, region_writes):
            triggers = region.pending_triggers(int(w_r))
            region.write_count += int(w_r)
            region.advance_triggers(triggers)
        return profile.elapsed_ns
