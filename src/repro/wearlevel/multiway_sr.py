"""Multi-Way Security Refresh (Yu & Du, IEEE TC 2014; paper Section III-E).

The paper characterises the scheme family this way: the memory space is
divided into many sub-regions *by the address sequence* (contiguous LA
ranges) and wear leveling runs independently inside each sub-region.  Our
implementation gives each contiguous LA range its own one-level SR region.

This family inherits the vulnerability discussed in Section III-E: once the
attacker locates a sub-region (free — the split is by address sequence, so
the high LA bits name the sub-region directly), it takes at most
``(2N/R) * log2(R)`` writes to track its remapping, after which the whole
sub-region can be worn out.
"""

from __future__ import annotations

from typing import List

from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import Move, SwapMove, WearLeveler
from repro.wearlevel.security_refresh import SRRegion


class MultiWaySR(WearLeveler):
    """Independent per-sub-region Security Refresh over contiguous LA ranges."""

    def __init__(
        self,
        n_lines: int,
        n_subregions: int = 512,
        remap_interval: int = 64,
        rng: SeedLike = None,
    ):
        if n_subregions < 1 or n_lines % n_subregions != 0:
            raise ValueError(
                f"n_subregions ({n_subregions}) must divide n_lines ({n_lines})"
            )
        self.n_lines = n_lines
        self.n_physical = n_lines
        self.n_subregions = n_subregions
        self.subregion_size = n_lines // n_subregions
        bit_length_exact(self.subregion_size)  # must be a power of two
        gen = as_generator(rng)
        self.regions = [
            SRRegion(self.subregion_size, remap_interval, gen)
            for _ in range(n_subregions)
        ]

    def subregion_of(self, la: int) -> int:
        """Sub-region index — directly the high bits of the logical address."""
        return la // self.subregion_size

    def translate(self, la: int) -> int:
        self._check_la(la)
        region = self.subregion_of(la)
        local = la % self.subregion_size
        base = region * self.subregion_size
        return base + self.regions[region].translate(local)

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        region = self.subregion_of(la)
        base = region * self.subregion_size
        swap = self.regions[region].record_write()
        if swap is None:
            return []
        return [SwapMove(pa_a=base + swap[0], pa_b=base + swap[1])]
