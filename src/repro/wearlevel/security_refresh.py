"""Security Refresh (Seong et al., ISCA 2010; paper Section III-C).

One SR region dynamically remaps its lines by XORing with a random key.
Two key registers (``keyc`` for the in-progress round, ``keyp`` for the
previous, completed round) plus the Current Refresh Pointer (``CRP``) define
the mapping at any instant:

* line ``la`` has been remapped this round iff ``min(la, pair(la)) < CRP``
  where ``pair(la) = la XOR keyc XOR keyp``;
* its physical slot is ``la XOR keyc`` if remapped, else ``la XOR keyp``.

Remapping exploits SR's pairwise property: the new slot of ``la`` is the old
slot of ``pair(la)`` and vice versa, so each remap is a single swap of two
physical lines — no gap line needed (Fig. 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import (
    Move,
    RoundProfile,
    SwapMove,
    WearLeveler,
    spread_exact,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


class SRRegion:
    """One Security Refresh region over ``n_lines`` (a power of two).

    Region-local: addresses and returned swap pairs are in ``[0, n_lines)``.
    Shared by the one-level scheme, the two-level scheme and Multi-Way SR.
    """

    def __init__(self, n_lines: int, remap_interval: int, rng: SeedLike = None):
        self.n_bits = bit_length_exact(n_lines)
        if remap_interval < 1:
            raise ValueError("remap_interval must be >= 1")
        self.n_lines = n_lines
        self.remap_interval = remap_interval
        self._rng = as_generator(rng)
        initial_key = self._draw_key()
        self.keyc = initial_key
        self.keyp = initial_key  # boot state: one completed round with keyc
        self.crp = 0
        self.write_count = 0
        self.round_count = 0
        self.total_swaps = 0

    def _draw_key(self) -> int:
        return int(self._rng.integers(0, self.n_lines))

    # ------------------------------------------------------------- mapping

    def pair_of(self, la: int) -> int:
        """``paired(la)``: the line whose slot ``la`` moves into this round."""
        return la ^ self.keyc ^ self.keyp

    def is_remapped(self, la: int) -> bool:
        """Has ``la`` been remapped in the current round?"""
        return min(la, self.pair_of(la)) < self.crp

    def translate(self, la: int) -> int:
        if not 0 <= la < self.n_lines:
            raise ValueError(f"address {la} outside region [0, {self.n_lines})")
        key = self.keyc if self.is_remapped(la) else self.keyp
        return la ^ key

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate` (bounds are the caller's problem)."""
        pairs = las ^ (self.keyc ^ self.keyp)
        remapped = np.minimum(las, pairs) < self.crp
        return las ^ np.where(remapped, self.keyc, self.keyp)

    # -------------------------------------------------------------- remaps

    def record_write(self) -> Optional[Tuple[int, int]]:
        """Count one write; return a local slot swap ``(a, b)`` if triggered.

        Returns ``None`` either when no remap fires or when the fired remap
        needs no data movement (its pair was already handled, Fig. 5(c)).
        """
        self.write_count += 1
        if self.write_count % self.remap_interval != 0:
            return None
        return self.remap_step()

    def remap_step(self) -> Optional[Tuple[int, int]]:
        """Advance the CRP by one candidate; swap lines if needed."""
        la = self.crp
        pair = self.pair_of(la)
        swap: Optional[Tuple[int, int]] = None
        if pair > la:
            # Not yet remapped: move la's data from its old slot to its new
            # slot, which is exactly pair's old slot — one swap does both.
            old_slot = la ^ self.keyp
            new_slot = la ^ self.keyc
            if old_slot != new_slot:
                swap = (old_slot, new_slot)
                self.total_swaps += 1
        # pair <= la: already swapped when CRP passed `pair` (or identity).
        self.crp += 1
        if self.crp == self.n_lines:
            self._finish_round()
        return swap

    def _finish_round(self) -> None:
        self.keyp = self.keyc
        self.keyc = self._draw_key()
        self.crp = 0
        self.round_count += 1

    @property
    def writes_until_next_remap(self) -> int:
        """Writes remaining before the CRP advances again."""
        return self.remap_interval - (self.write_count % self.remap_interval)

    # -------------------------------------------------- fast-forward jump

    def pending_triggers(self, writes: int) -> int:
        """CRP advances the next ``writes`` region writes will trigger."""
        interval = self.remap_interval
        return (self.write_count + writes) // interval - self.write_count // interval

    @property
    def swap_factor(self) -> float:
        """Expected data movements per CRP advance (steady state).

        Each address pair ``(la, pair(la))`` swaps exactly once per round,
        when the CRP passes its lower member — half the advances move
        data.  When ``keyc == keyp`` (the boot round) every line is a
        fixed point and nothing ever moves.
        """
        return 0.0 if self.keyc == self.keyp else 0.5

    def advance_triggers(self, triggers: int) -> None:
        """Jump the CRP (and any completed key rotations) over ``triggers``.

        Whole rounds draw their keys in one batched RNG call; only the
        last two survive as ``keyp``/``keyc``, exactly as ``triggers``
        sequential :meth:`remap_step` calls would leave them (the analytic
        tier does not promise draw-for-draw RNG-stream identity with the
        exact engines — it never runs interleaved with them).  Write
        counters are the caller's responsibility.
        """
        total = self.crp + triggers
        rounds, self.crp = divmod(total, self.n_lines)
        if rounds:
            keys = self._rng.integers(0, self.n_lines, size=rounds)
            self.keyp = int(keys[-2]) if rounds >= 2 else self.keyc
            self.keyc = int(keys[-1])
            self.round_count += rounds


class SecurityRefresh(WearLeveler):
    """One-level Security Refresh over the whole logical space."""

    def __init__(self, n_lines: int, remap_interval: int = 64, rng: SeedLike = None):
        self.n_lines = n_lines
        self.n_physical = n_lines  # swap-based: no spare lines
        self.region = SRRegion(n_lines, remap_interval, rng)

    def translate(self, la: int) -> int:
        self._check_la(la)
        return self.region.translate(la)

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        swap = self.region.record_write()
        if swap is None:
            return []
        return [SwapMove(pa_a=swap[0], pa_b=swap[1])]

    # ------------------------------------------------------- batched API

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self.region.translate_many(np.asarray(las, dtype=np.int64))

    def writes_until_next_remap(self) -> int:
        return self.region.writes_until_next_remap

    def record_writes_many(self, las: np.ndarray) -> None:
        self.region.write_count += int(las.size)

    @property
    def key_xor(self) -> int:
        """Ground truth ``keyc XOR keyp`` — what the RTA tries to recover."""
        return self.region.keyc ^ self.region.keyp

    # -------------------------------------------------- fast-forward API

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Closed-form SR round: XOR mapping + pairwise swap movement.

        The key XOR is a bijection, so uniform stays uniform and a
        sequential sweep covers every slot evenly; zipf snapshots the
        current mapping with ``writes`` clipped to one key round.  Swap
        movement wear is two line writes per actual swap, half the CRP
        advances in expectation (see :attr:`SRRegion.swap_factor`),
        rotation-smoothed over the region.  RAA is declined.
        """
        if spec.kind == "raa":
            return None
        region = self.region
        writes = int(writes)
        n = self.n_lines
        if spec.kind == "zipf":
            writes = min(writes, n * region.remap_interval)
        triggers = region.pending_triggers(writes)
        swaps = triggers * region.swap_factor
        rates = np.full(n, 2.0 * swaps / n)
        counts: Optional[np.ndarray] = None
        if spec.kind == "uniform":
            rates += writes / n
        elif spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            user = np.zeros(n)
            np.add.at(
                user,
                self.translate_many(np.arange(n, dtype=np.int64)),
                weights,
            )
            rates += user * writes
        else:  # sequential: deterministic even coverage
            counts = spread_exact(np.full(n, writes / n), writes)
        elapsed = writes * timing.write_latency(spec.data)
        elapsed += swaps * timing.swap_latency(spec.data, spec.data)
        return RoundProfile(
            writes, elapsed, wear_counts=counts, wear_rates=rates
        )

    def apply_round(self, profile: RoundProfile) -> float:
        region = self.region
        triggers = region.pending_triggers(profile.writes)
        region.write_count += profile.writes
        region.advance_triggers(triggers)
        return profile.elapsed_ns
