"""Randomized table-based swap wear leveling (Seznec 2009 category, ref [6]).

The scheme family the paper credits with fixing RBSG's Birthday-Paradox
weakness via tables: keep an explicit LA→PA table and, every
``swap_interval`` writes, swap the *currently written* line with a line
chosen uniformly at random.  Because the placement is random rather than
write-count-driven, the §II-B determinism complaint against plain
table-based schemes does not apply — an attacker cannot predict where a
line lands next.

Costs and residual exposure:

* table storage (the reason the paper prefers algebraic mapping),
* a hammered line still dwells ``swap_interval`` writes per placement, so
  the balls-into-bins analysis of `repro.analysis.ballsbins` applies with
  ``D = swap_interval`` — a *small* interval is cheap protection here
  because each remap is one swap regardless of region geometry.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import Move, SwapMove, WearLeveler


class RandomSwapWearLeveling(WearLeveler):
    """Table-tracked uniform random swaps on a write-count trigger."""

    def __init__(
        self,
        n_lines: int,
        swap_interval: int = 32,
        rng: SeedLike = None,
    ):
        if n_lines < 2:
            raise ValueError("n_lines must be >= 2")
        if swap_interval < 1:
            raise ValueError("swap_interval must be >= 1")
        self.n_lines = n_lines
        self.n_physical = n_lines
        self.swap_interval = swap_interval
        self._rng = as_generator(rng)
        self.table = np.arange(n_lines, dtype=np.int64)  # LA -> PA
        self.inverse = np.arange(n_lines, dtype=np.int64)  # PA -> LA
        self.write_count = 0
        self.total_swaps = 0

    def translate(self, la: int) -> int:
        self._check_la(la)
        return int(self.table[la])

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        self.write_count += 1
        if self.write_count % self.swap_interval != 0:
            return []
        # Swap the written line with a uniformly random partner: the
        # hammered line cannot stay put longer than one interval, and its
        # next home is unpredictable.
        pa_a = int(self.table[la])
        pa_b = int(self._rng.integers(0, self.n_lines))
        if pa_a == pa_b:
            return []
        self._swap_physical(pa_a, pa_b)
        self.total_swaps += 1
        return [SwapMove(pa_a=pa_a, pa_b=pa_b)]

    def _swap_physical(self, pa_a: int, pa_b: int) -> None:
        la_a = int(self.inverse[pa_a])
        la_b = int(self.inverse[pa_b])
        self.table[la_a], self.table[la_b] = pa_b, pa_a
        self.inverse[pa_a], self.inverse[pa_b] = la_b, la_a

    # ------------------------------------------------------- batched API
    # The RNG is drawn only at swap triggers, which the fast engine always
    # executes through the scalar record_write — the stream is preserved.

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self.table[las]

    def writes_until_next_remap(self) -> int:
        return self.swap_interval - (self.write_count % self.swap_interval)

    def record_writes_many(self, las: np.ndarray) -> None:
        self.write_count += int(las.size)
