"""Start-Gap wear leveling (Qureshi et al., MICRO 2009; paper Section III-A).

A region of ``n`` data lines owns ``n + 1`` physical slots; the extra slot is
the *GapLine*.  Two registers drive an algebraic mapping:

* ``start`` — how many full rotations the region has completed,
* ``gap`` — the slot currently left empty.

Mapping: ``pa = (ia + start) mod n``, then ``pa += 1`` if ``pa >= gap``.

Every ``remap_interval`` writes to the region, one *gap movement* copies the
line above the gap into the gap (``[gap-1] → [gap]``) and decrements ``gap``;
when the gap wraps below slot 0 it re-enters at slot ``n`` and ``start``
advances, completing one remapping round exactly as in Fig. 2.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.wearlevel.base import CopyMove, Move, WearLeveler


class StartGapRegion:
    """The per-region Start-Gap engine, operating on region-local slots.

    Used standalone by :class:`StartGap`, and as the building block of
    Region-Based Start-Gap and of Security RBSG's inner level.  Slot indices
    are local (``0 .. n_lines``, slot ``n_lines`` being the initial gap).
    """

    def __init__(self, n_lines: int, remap_interval: int):
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        if remap_interval < 1:
            raise ValueError("remap_interval must be >= 1")
        self.n_lines = n_lines
        self.remap_interval = remap_interval
        self.start = 0
        self.gap = n_lines  # gap starts at the spare slot
        self.write_count = 0
        self.total_movements = 0

    def translate(self, ia: int) -> int:
        """Map region-local intermediate address to region-local slot."""
        if not 0 <= ia < self.n_lines:
            raise ValueError(f"intermediate address {ia} outside region")
        pa = (ia + self.start) % self.n_lines
        if pa >= self.gap:
            pa += 1
        return pa

    def record_write(self) -> Optional[Tuple[int, int]]:
        """Count one write; return a local ``(src, dst)`` copy if triggered."""
        self.write_count += 1
        if self.write_count % self.remap_interval != 0:
            return None
        return self.gap_movement()

    def gap_movement(self) -> Tuple[int, int]:
        """Perform one gap movement; return the local ``(src, dst)`` copy."""
        n_slots = self.n_lines + 1
        src = (self.gap - 1) % n_slots
        dst = self.gap
        self.gap = src
        if self.gap == self.n_lines:  # wrapped: one full round completed
            self.start = (self.start + 1) % self.n_lines
        self.total_movements += 1
        return src, dst

    @property
    def writes_until_next_movement(self) -> int:
        """Writes remaining before the next gap movement fires."""
        return self.remap_interval - (self.write_count % self.remap_interval)

    def translate_many(self, ias: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate` (bounds are the caller's problem)."""
        pas = (ias + self.start) % self.n_lines
        pas += pas >= self.gap
        return pas


class StartGap(WearLeveler):
    """Single-region Start-Gap over the whole logical space."""

    def __init__(self, n_lines: int, remap_interval: int = 100):
        self.n_lines = n_lines
        self.n_physical = n_lines + 1
        self.region = StartGapRegion(n_lines, remap_interval)

    def translate(self, la: int) -> int:
        self._check_la(la)
        return self.region.translate(la)

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        move = self.region.record_write()
        if move is None:
            return []
        src, dst = move
        return [CopyMove(src=src, dst=dst)]

    # ------------------------------------------------------- batched API

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self.region.translate_many(np.asarray(las, dtype=np.int64))

    def writes_until_next_remap(self) -> int:
        return self.region.writes_until_next_movement

    def record_writes_many(self, las: np.ndarray) -> None:
        # Address-oblivious single counter; the prefix contract guarantees
        # the bulk advance stays strictly below the next trigger.
        self.region.write_count += int(las.size)
