"""Start-Gap wear leveling (Qureshi et al., MICRO 2009; paper Section III-A).

A region of ``n`` data lines owns ``n + 1`` physical slots; the extra slot is
the *GapLine*.  Two registers drive an algebraic mapping:

* ``start`` — how many full rotations the region has completed,
* ``gap`` — the slot currently left empty.

Mapping: ``pa = (ia + start) mod n``, then ``pa += 1`` if ``pa >= gap``.

Every ``remap_interval`` writes to the region, one *gap movement* copies the
line above the gap into the gap (``[gap-1] → [gap]``) and decrements ``gap``;
when the gap wraps below slot 0 it re-enters at slot ``n`` and ``start``
advances, completing one remapping round exactly as in Fig. 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.wearlevel.base import (
    CopyMove,
    Move,
    RoundProfile,
    WearLeveler,
    spread_exact,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


def gap_walk_wear(n_slots: int, gap0: int, movements: int) -> np.ndarray:
    """Exact per-slot wear of ``movements`` consecutive gap movements.

    Movement ``j`` copies into slot ``(gap0 - j) mod n_slots`` (the gap
    walks downward, wrapping through the top slot), so the destinations
    are ``movements // n_slots`` full laps plus one contiguous wrapped
    run — no loop needed.
    """
    counts = np.full(n_slots, movements // n_slots, dtype=np.int64)
    rem = movements % n_slots
    if rem:
        # reprolint: disable=REP302 rem < n_slots distinct offsets
        counts[(gap0 - np.arange(rem)) % n_slots] += 1
    return counts


class StartGapRegion:
    """The per-region Start-Gap engine, operating on region-local slots.

    Used standalone by :class:`StartGap`, and as the building block of
    Region-Based Start-Gap and of Security RBSG's inner level.  Slot indices
    are local (``0 .. n_lines``, slot ``n_lines`` being the initial gap).
    """

    def __init__(self, n_lines: int, remap_interval: int):
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        if remap_interval < 1:
            raise ValueError("remap_interval must be >= 1")
        self.n_lines = n_lines
        self.remap_interval = remap_interval
        self.start = 0
        self.gap = n_lines  # gap starts at the spare slot
        self.write_count = 0
        self.total_movements = 0

    def translate(self, ia: int) -> int:
        """Map region-local intermediate address to region-local slot."""
        if not 0 <= ia < self.n_lines:
            raise ValueError(f"intermediate address {ia} outside region")
        pa = (ia + self.start) % self.n_lines
        if pa >= self.gap:
            pa += 1
        return pa

    def record_write(self) -> Optional[Tuple[int, int]]:
        """Count one write; return a local ``(src, dst)`` copy if triggered."""
        self.write_count += 1
        if self.write_count % self.remap_interval != 0:
            return None
        return self.gap_movement()

    def gap_movement(self) -> Tuple[int, int]:
        """Perform one gap movement; return the local ``(src, dst)`` copy."""
        n_slots = self.n_lines + 1
        src = (self.gap - 1) % n_slots
        dst = self.gap
        self.gap = src
        if self.gap == self.n_lines:  # wrapped: one full round completed
            self.start = (self.start + 1) % self.n_lines
        self.total_movements += 1
        return src, dst

    @property
    def writes_until_next_movement(self) -> int:
        """Writes remaining before the next gap movement fires."""
        return self.remap_interval - (self.write_count % self.remap_interval)

    def pending_movements(self, writes: int) -> int:
        """Gap movements the next ``writes`` region writes will trigger."""
        interval = self.remap_interval
        return (self.write_count + writes) // interval - self.write_count // interval

    def advance_movements(self, movements: int) -> None:
        """Jump the ``start``/``gap`` registers over ``movements`` movements.

        Closed form of ``movements`` successive :meth:`gap_movement` calls:
        after ``M`` total movements from boot the gap sits at
        ``(n - M) mod (n + 1)`` and ``start`` has advanced once per full
        lap of the gap (every ``n + 1`` movements).  Write counters are the
        caller's responsibility.
        """
        total = self.total_movements + movements
        n_slots = self.n_lines + 1
        self.gap = (self.n_lines - total) % n_slots
        self.start = (total // n_slots) % self.n_lines
        self.total_movements = total

    def translate_many(self, ias: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate` (bounds are the caller's problem)."""
        pas = (ias + self.start) % self.n_lines
        pas += pas >= self.gap
        return pas


class StartGap(WearLeveler):
    """Single-region Start-Gap over the whole logical space."""

    def __init__(self, n_lines: int, remap_interval: int = 100):
        self.n_lines = n_lines
        self.n_physical = n_lines + 1
        self.region = StartGapRegion(n_lines, remap_interval)

    def translate(self, la: int) -> int:
        self._check_la(la)
        return self.region.translate(la)

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        move = self.region.record_write()
        if move is None:
            return []
        src, dst = move
        return [CopyMove(src=src, dst=dst)]

    # ------------------------------------------------------- batched API

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self.region.translate_many(np.asarray(las, dtype=np.int64))

    def writes_until_next_remap(self) -> int:
        return self.region.writes_until_next_movement

    def record_writes_many(self, las: np.ndarray) -> None:
        # Address-oblivious single counter; the prefix contract guarantees
        # the bulk advance stays strictly below the next trigger.
        self.region.write_count += int(las.size)

    # -------------------------------------------------- fast-forward API

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Closed-form Start-Gap round: exact movement wear + user wear.

        Movement destinations are the deterministic gap walk
        (:func:`gap_walk_wear`).  User wear under uniform traffic is
        rotation-smoothed over all ``n + 1`` slots (the mapping rotates
        one slot per ``n + 1`` movements); sequential traffic uses the
        same smoothing but deterministically discretized; zipf snapshots
        the current mapping, with ``writes`` clipped to one full rotation
        so the hot line's slot stays put within the round.  RAA is
        declined — a single hot address interacts with the moving gap at
        per-interval granularity, which is exactly what the chunk engine
        (and :mod:`repro.sim.roundsim`) already simulate efficiently.
        """
        if spec.kind == "raa":
            return None
        region = self.region
        writes = int(writes)
        n_slots = self.n_physical
        if spec.kind == "zipf":
            writes = min(writes, n_slots * region.remap_interval)
        movements = region.pending_movements(writes)
        counts = gap_walk_wear(n_slots, region.gap, movements)
        rates: Optional[np.ndarray] = None
        exact = False
        if spec.kind == "uniform":
            rates = np.full(n_slots, writes / n_slots)
        elif spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            rates = np.zeros(n_slots)
            np.add.at(
                rates,
                self.translate_many(np.arange(self.n_lines, dtype=np.int64)),
                weights,
            )
            rates *= writes
        else:  # sequential: deterministic aggregate, smoothed placement
            counts = counts + spread_exact(
                np.full(n_slots, writes / n_slots), writes
            )
            exact = True
        elapsed = writes * timing.write_latency(spec.data)
        elapsed += movements * timing.copy_latency(spec.data)
        return RoundProfile(
            writes,
            elapsed,
            wear_counts=counts,
            wear_rates=rates,
            exact=exact,
            meta={"movements": movements},
        )

    def apply_round(self, profile: RoundProfile) -> float:
        self.region.write_count += profile.writes
        movements = profile.meta["movements"]
        assert isinstance(movements, int)
        self.region.advance_movements(movements)
        return profile.elapsed_ns
