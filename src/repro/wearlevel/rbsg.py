"""Region-Based Start-Gap (RBSG) — the paper's first attack target.

Architecture (Section III-A):

1. a *static* randomizer (Feistel network or random invertible binary
   matrix) maps LA → IA once at boot and never changes;
2. the IA space is cut into ``n_regions`` contiguous, equal-size regions;
3. each region runs its own Start-Gap engine (own gap line, own ``start`` /
   ``gap`` registers, own write counter).

The static randomizer kills spatial locality — but because it is fixed, the
*relative* physical adjacency of two IAs never changes, which is exactly the
invariant the Remapping Timing Attack exploits (``L_{i-1}`` stays physically
adjacent to ``L_i`` forever).

Physical layout: region ``r`` occupies slots
``[r * (region_size + 1), (r+1) * (region_size + 1))`` — region_size data
slots plus one gap slot each.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.feistel import FeistelNetwork
from repro.core.randomizer import RandomInvertibleMatrix
from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import CopyMove, Move, WearLeveler
from repro.wearlevel.startgap import StartGapRegion


class RegionBasedStartGap(WearLeveler):
    """RBSG with a configurable static randomizer.

    Parameters
    ----------
    n_lines:
        Logical lines (power of two).
    n_regions:
        Number of equal-size regions in IA space; must divide ``n_lines``.
    remap_interval:
        Gap movement fires every this many writes *to a region*.
    randomizer:
        ``"feistel"`` (3-stage static Feistel network, the RBSG default),
        ``"matrix"`` (random invertible binary matrix) or ``"identity"``
        (no randomization; useful for tests and worked examples).
    rng:
        Seed / generator for the randomizer keys.
    """

    def __init__(
        self,
        n_lines: int,
        n_regions: int = 32,
        remap_interval: int = 100,
        randomizer: str = "feistel",
        feistel_stages: int = 3,
        rng: SeedLike = None,
    ):
        if n_regions < 1 or n_lines % n_regions != 0:
            raise ValueError(
                f"n_regions ({n_regions}) must divide n_lines ({n_lines})"
            )
        self.n_lines = n_lines
        self.n_regions = n_regions
        self.region_size = n_lines // n_regions
        self.remap_interval = remap_interval
        self.n_physical = n_lines + n_regions  # one gap line per region
        gen = as_generator(rng)
        n_bits = bit_length_exact(n_lines)
        if randomizer == "feistel":
            self._randomizer = FeistelNetwork.random(n_bits, feistel_stages, gen)
        elif randomizer == "matrix":
            self._randomizer = RandomInvertibleMatrix.random(n_bits, gen)
        elif randomizer == "identity":
            self._randomizer = None
        else:
            raise ValueError(f"unknown randomizer {randomizer!r}")
        self.regions = [
            StartGapRegion(self.region_size, remap_interval)
            for _ in range(n_regions)
        ]

    # ------------------------------------------------------------- mapping

    def randomize(self, la: int) -> int:
        """Static LA → IA mapping (fixed at boot)."""
        if self._randomizer is None:
            return la
        return int(self._randomizer.encrypt(la))

    def derandomize(self, ia: int) -> int:
        """Inverse IA → LA mapping."""
        if self._randomizer is None:
            return ia
        return int(self._randomizer.decrypt(ia))

    def region_of(self, ia: int) -> int:
        """Region index a given IA falls into."""
        return ia // self.region_size

    def _region_base(self, region: int) -> int:
        return region * (self.region_size + 1)

    def translate(self, la: int) -> int:
        self._check_la(la)
        ia = self.randomize(la)
        region = self.region_of(ia)
        local = ia % self.region_size
        return self._region_base(region) + self.regions[region].translate(local)

    # -------------------------------------------------------------- writes

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        ia = self.randomize(la)
        region = self.region_of(ia)
        move = self.regions[region].record_write()
        if move is None:
            return []
        base = self._region_base(region)
        src, dst = move
        return [CopyMove(src=base + src, dst=base + dst)]

    # ------------------------------------------------------------- queries

    def writes_until_next_movement(self, region: int) -> int:
        """Writes to ``region`` remaining before its next gap movement."""
        return self.regions[region].writes_until_next_movement

    def physically_previous_la(self, la: int) -> int:
        """Ground-truth ``L_{i-1} = f^{-1}(f(L_i) - 1)`` within the region.

        This is the invariant the RTA detects through the side channel alone;
        exposed here as the oracle for validating attack implementations.
        The "previous" address wraps within the region's IA range.
        """
        ia = self.randomize(la)
        region = self.region_of(ia)
        base_ia = region * self.region_size
        prev_ia = base_ia + (ia - base_ia - 1) % self.region_size
        return self.derandomize(prev_ia)
