"""Region-Based Start-Gap (RBSG) — the paper's first attack target.

Architecture (Section III-A):

1. a *static* randomizer (Feistel network or random invertible binary
   matrix) maps LA → IA once at boot and never changes;
2. the IA space is cut into ``n_regions`` contiguous, equal-size regions;
3. each region runs its own Start-Gap engine (own gap line, own ``start`` /
   ``gap`` registers, own write counter).

The static randomizer kills spatial locality — but because it is fixed, the
*relative* physical adjacency of two IAs never changes, which is exactly the
invariant the Remapping Timing Attack exploits (``L_{i-1}`` stays physically
adjacent to ``L_i`` forever).

Physical layout: region ``r`` occupies slots
``[r * (region_size + 1), (r+1) * (region_size + 1))`` — region_size data
slots plus one gap slot each.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.feistel import FeistelNetwork
from repro.core.randomizer import RandomInvertibleMatrix
from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import (
    CopyMove,
    Move,
    RoundProfile,
    WearLeveler,
    grouped_cumcount,
    spread_exact,
)
from repro.wearlevel.startgap import StartGapRegion, gap_walk_wear

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


class RegionBasedStartGap(WearLeveler):
    """RBSG with a configurable static randomizer.

    Parameters
    ----------
    n_lines:
        Logical lines (power of two).
    n_regions:
        Number of equal-size regions in IA space; must divide ``n_lines``.
    remap_interval:
        Gap movement fires every this many writes *to a region*.
    randomizer:
        ``"feistel"`` (3-stage static Feistel network, the RBSG default),
        ``"matrix"`` (random invertible binary matrix) or ``"identity"``
        (no randomization; useful for tests and worked examples).
    rng:
        Seed / generator for the randomizer keys.
    """

    def __init__(
        self,
        n_lines: int,
        n_regions: int = 32,
        remap_interval: int = 100,
        randomizer: str = "feistel",
        feistel_stages: int = 3,
        rng: SeedLike = None,
    ):
        if n_regions < 1 or n_lines % n_regions != 0:
            raise ValueError(
                f"n_regions ({n_regions}) must divide n_lines ({n_lines})"
            )
        self.n_lines = n_lines
        self.n_regions = n_regions
        self.region_size = n_lines // n_regions
        self.remap_interval = remap_interval
        self.n_physical = n_lines + n_regions  # one gap line per region
        gen = as_generator(rng)
        n_bits = bit_length_exact(n_lines)
        if randomizer == "feistel":
            self._randomizer = FeistelNetwork.random(n_bits, feistel_stages, gen)
        elif randomizer == "matrix":
            self._randomizer = RandomInvertibleMatrix.random(n_bits, gen)
        elif randomizer == "identity":
            self._randomizer = None
        else:
            raise ValueError(f"unknown randomizer {randomizer!r}")
        self.regions = [
            StartGapRegion(self.region_size, remap_interval)
            for _ in range(n_regions)
        ]

    # ------------------------------------------------------------- mapping

    def randomize(self, la: int) -> int:
        """Static LA → IA mapping (fixed at boot)."""
        if self._randomizer is None:
            return la
        return int(self._randomizer.encrypt(la))

    def derandomize(self, ia: int) -> int:
        """Inverse IA → LA mapping."""
        if self._randomizer is None:
            return ia
        return int(self._randomizer.decrypt(ia))

    def region_of(self, ia: int) -> int:
        """Region index a given IA falls into."""
        return ia // self.region_size

    def _region_base(self, region: int) -> int:
        return region * (self.region_size + 1)

    def translate(self, la: int) -> int:
        self._check_la(la)
        ia = self.randomize(la)
        region = self.region_of(ia)
        local = ia % self.region_size
        return self._region_base(region) + self.regions[region].translate(local)

    # -------------------------------------------------------------- writes

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        ia = self.randomize(la)
        region = self.region_of(ia)
        move = self.regions[region].record_write()
        if move is None:
            return []
        base = self._region_base(region)
        src, dst = move
        return [CopyMove(src=base + src, dst=base + dst)]

    # ------------------------------------------------------- batched API

    def randomize_many(self, las: np.ndarray) -> np.ndarray:
        """Vectorized static LA → IA mapping."""
        if self._randomizer is None:
            return np.asarray(las, dtype=np.int64)
        out = self._randomizer.encrypt(np.asarray(las, dtype=np.uint64))
        return np.asarray(out).astype(np.int64)

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        ias = self.randomize_many(las)
        regions = ias // self.region_size
        starts = np.fromiter(
            (r.start for r in self.regions), dtype=np.int64, count=self.n_regions
        )
        gaps = np.fromiter(
            (r.gap for r in self.regions), dtype=np.int64, count=self.n_regions
        )
        local = (ias % self.region_size + starts[regions]) % self.region_size
        local += local >= gaps[regions]
        return regions * (self.region_size + 1) + local

    def writes_until_next_remap(self) -> int:
        # Conservative (any region's trigger might be hit first); the
        # exact per-address split lives in consume_chunk.
        return min(r.writes_until_next_movement for r in self.regions)

    def consume_chunk(self, las: np.ndarray) -> Tuple[np.ndarray, int]:
        """Exact split: stop right before the first write that remaps.

        Only the target region's counter advances per write, so the first
        trigger is the first write whose occurrence number within its
        region reaches that region's remaining count — a grouped cumcount,
        not a global minimum.  This is what keeps chunks long under
        spread-out traffic.
        """
        if las.size == 0:
            return np.empty(0, dtype=np.int64), 0
        remaining = np.fromiter(
            (r.writes_until_next_movement for r in self.regions),
            dtype=np.int64,
            count=self.n_regions,
        )
        # The call right after a remap sees the trigger at index 0; one
        # scalar randomize answers that without scanning a whole window.
        first_region = self.randomize(int(las[0])) // self.region_size
        if remaining[first_region] <= 1:
            return np.empty(0, dtype=np.int64), 0
        # Cap the scan window at sum(remaining): by pigeonhole a window
        # that long always contains a trigger, so one scan per remap
        # cycle suffices — while scanning further than that only
        # re-randomizes and re-sorts tail writes a later call must redo.
        window = min(int(las.size), max(int(remaining.sum()), 1))
        ias = self.randomize_many(np.asarray(las[:window], dtype=np.int64))
        regions = ias // self.region_size
        trigger = np.nonzero(grouped_cumcount(regions) + 1 >= remaining[regions])[0]
        n = int(trigger[0]) if trigger.size else window
        if n == 0:
            return np.empty(0, dtype=np.int64), 0
        regions = regions[:n]
        starts = np.fromiter(
            (r.start for r in self.regions), dtype=np.int64, count=self.n_regions
        )
        gaps = np.fromiter(
            (r.gap for r in self.regions), dtype=np.int64, count=self.n_regions
        )
        local = (ias[:n] % self.region_size + starts[regions]) % self.region_size
        local += local >= gaps[regions]
        pas = regions * (self.region_size + 1) + local
        counts = np.bincount(regions, minlength=self.n_regions)
        for r in np.nonzero(counts)[0]:
            self.regions[int(r)].write_count += int(counts[r])
        return pas, n

    # -------------------------------------------------- fast-forward API

    def _region_weights(self, spec: "TraceSpec") -> np.ndarray:
        """Expected fraction of user writes landing in each region."""
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            ias = self.randomize_many(np.arange(self.n_lines, dtype=np.int64))
            return np.bincount(
                ias // self.region_size,
                weights=weights,
                minlength=self.n_regions,
            )
        # The static randomizer is a bijection: uniform stays uniform and
        # a sequential sweep hits every region exactly region_size times.
        return np.full(self.n_regions, 1.0 / self.n_regions)

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Per-region Start-Gap rounds behind the static randomizer.

        User writes split across regions by the randomized distribution
        weights (deterministically discretized so counters advance
        exactly); each region's movement wear is its exact gap walk.
        Zipf snapshots the full mapping and clips ``writes`` so the
        hottest region completes at most one rotation; RAA is declined
        (chunk engine / roundsim territory), like Start-Gap.
        """
        if spec.kind == "raa":
            return None
        writes = int(writes)
        stride = self.region_size + 1
        region_q = self._region_weights(spec)
        if spec.kind == "zipf":
            rotation = stride * self.remap_interval
            writes = min(writes, int(rotation / max(float(region_q.max()), 1e-12)))
            if writes <= 0:
                return None
        region_writes = spread_exact(region_q * writes, writes)
        counts = np.zeros(self.n_physical, dtype=np.int64)
        rates: Optional[np.ndarray] = None
        exact = False
        total_movements = 0
        for index, region in enumerate(self.regions):
            w_r = int(region_writes[index])
            movements = region.pending_movements(w_r)
            total_movements += movements
            base = index * stride
            counts[base : base + stride] += gap_walk_wear(
                stride, region.gap, movements
            )
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            rates = np.zeros(self.n_physical)
            np.add.at(
                rates,
                self.translate_many(np.arange(self.n_lines, dtype=np.int64)),
                weights,
            )
            rates *= writes
        elif spec.kind == "uniform":
            rates = np.repeat(region_writes / stride, stride)
        else:  # sequential: deterministic, rotation-smoothed per region
            user = np.concatenate(
                [
                    spread_exact(np.full(stride, w / stride), int(w))
                    for w in region_writes
                ]
            )
            counts += user
            exact = True
        elapsed = writes * timing.write_latency(spec.data)
        elapsed += total_movements * timing.copy_latency(spec.data)
        return RoundProfile(
            writes,
            elapsed,
            wear_counts=counts,
            wear_rates=rates,
            exact=exact,
            meta={"region_writes": region_writes},
        )

    def apply_round(self, profile: RoundProfile) -> float:
        region_writes = profile.meta["region_writes"]
        assert isinstance(region_writes, np.ndarray)
        for region, w_r in zip(self.regions, region_writes):
            movements = region.pending_movements(int(w_r))
            region.write_count += int(w_r)
            region.advance_movements(movements)
        return profile.elapsed_ns

    # ------------------------------------------------------------- queries

    def writes_until_next_movement(self, region: int) -> int:
        """Writes to ``region`` remaining before its next gap movement."""
        return self.regions[region].writes_until_next_movement

    def physically_previous_la(self, la: int) -> int:
        """Ground-truth ``L_{i-1} = f^{-1}(f(L_i) - 1)`` within the region.

        This is the invariant the RTA detects through the side channel alone;
        exposed here as the oracle for validating attack implementations.
        The "previous" address wraps within the region's IA range.
        """
        ia = self.randomize(la)
        region = self.region_of(ia)
        base_ia = region * self.region_size
        prev_ia = base_ia + (ia - base_ia - 1) % self.region_size
        return self.derandomize(prev_ia)
