"""Wear-leveling schemes: the paper's baselines and building blocks.

Every scheme implements :class:`~repro.wearlevel.base.WearLeveler`:
``translate(la)`` maps a logical to a physical line address under the current
(dynamic) mapping, and ``record_write(la)`` advances the scheme's counters,
performs any triggered remapping *of the mapping state*, and returns the data
movements the memory controller must execute on the PCM array.
"""

from repro.wearlevel.base import CopyMove, Move, SwapMove, WearLeveler
from repro.wearlevel.multiway_sr import MultiWaySR
from repro.wearlevel.nowl import NoWearLeveling
from repro.wearlevel.random_swap import RandomSwapWearLeveling
from repro.wearlevel.rbsg import RegionBasedStartGap
from repro.wearlevel.security_refresh import SecurityRefresh, SRRegion
from repro.wearlevel.startgap import StartGap, StartGapRegion
from repro.wearlevel.table_based import TableBasedWearLeveling
from repro.wearlevel.two_level_sr import TwoLevelSecurityRefresh

__all__ = [
    "CopyMove",
    "Move",
    "MultiWaySR",
    "NoWearLeveling",
    "RandomSwapWearLeveling",
    "RegionBasedStartGap",
    "SRRegion",
    "SecurityRefresh",
    "StartGap",
    "StartGapRegion",
    "SwapMove",
    "TableBasedWearLeveling",
    "TwoLevelSecurityRefresh",
]
