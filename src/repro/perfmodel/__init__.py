"""Performance-impact model — the substitute for the paper's Gem5 setup.

The paper's §V-C4 experiment measures IPC degradation of Security RBSG on
13 PARSEC and 27 SPEC CPU2006 benchmarks under Gem5 (8 cores @ 1 GHz,
32 KB L1 / 256 KB L2 / 8 MB L3 DRAM cache, 32-entry FR-FCFS queue, 10 ns
address translation).  Gem5 and the benchmark suites are not available
here, so this package builds the same pipeline from scratch:

* :mod:`repro.perfmodel.workloads` — synthetic benchmark suite whose
  memory intensity / locality / write mix spans the PARSEC ("memory
  intensive") and SPEC ("sparse") ranges the paper's conclusion relies on;
* :mod:`repro.perfmodel.cache` — set-associative, LRU, three-level cache
  hierarchy that turns instruction streams into main-memory requests;
* :mod:`repro.perfmodel.memqueue` — a PCM bank timing model where
  wear-leveling remap movements occupy the bank and delay any request that
  arrives before they finish (they hide in idle gaps otherwise);
* :mod:`repro.perfmodel.cpu` — an in-order-core IPC model that combines
  the above and reports IPC relative to a no-wear-leveling baseline.

The substitution preserves what the conclusion depends on: whether remap
work can be serviced during idle memory periods, which is a function of
request sparsity — exactly what the synthetic suite controls.
"""

from repro.perfmodel.cache import Cache, CacheHierarchy
from repro.perfmodel.cpu import IPCResult, evaluate_benchmark, evaluate_suite
from repro.perfmodel.memqueue import PCMBankModel
from repro.perfmodel.workloads import (
    PARSEC_LIKE,
    SPEC_LIKE,
    BenchmarkSpec,
    generate_trace,
)

__all__ = [
    "BenchmarkSpec",
    "Cache",
    "CacheHierarchy",
    "IPCResult",
    "PARSEC_LIKE",
    "PCMBankModel",
    "SPEC_LIKE",
    "evaluate_benchmark",
    "evaluate_suite",
    "generate_trace",
]
