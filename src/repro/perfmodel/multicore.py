"""Multi-core contention extension of the §V-C4 performance model.

The paper's Gem5 system has 8 cores sharing the memory controller.  A
single-core replay misses the queueing interaction: with several cores in
flight, the bank is busier, so remap movements are *less* likely to hide in
idle gaps — per-core IPC degradation grows with core count.

:class:`MultiCoreSystem` interleaves one trace per core through a shared
:class:`~repro.perfmodel.cache.CacheHierarchy`-per-core and one shared
:class:`~repro.perfmodel.memqueue.PCMBankModel`, advancing the core with the
earliest local clock (an event-driven round-robin).  Reported IPC is the
per-core average.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import List, Sequence

from repro.perfmodel.cache import CacheHierarchy
from repro.perfmodel.cpu import (
    L1_HIT_CYCLES,
    L2_HIT_CYCLES,
    L3_HIT_CYCLES,
)
from repro.perfmodel.memqueue import PCMBankModel
from repro.perfmodel.workloads import BenchmarkSpec, generate_trace
from repro.util.rng import as_generator


@dataclass(frozen=True)
class MultiCoreResult:
    """Outcome of one multi-core replay."""

    n_cores: int
    instructions: float  #: total across cores
    makespan_ns: float  #: finish time of the slowest core
    per_core_ipc: tuple
    remaps: int

    @property
    def aggregate_ipc(self) -> float:
        return self.instructions / self.makespan_ns if self.makespan_ns else 0.0

    @property
    def mean_core_ipc(self) -> float:
        return sum(self.per_core_ipc) / len(self.per_core_ipc)


class MultiCoreSystem:
    """Event-driven replay of N cores sharing one PCM bank."""

    def __init__(
        self,
        specs: Sequence[BenchmarkSpec],
        n_mem_ops: int = 10_000,
        remap_interval: int = 0,
        translation_ns: float = 0.0,
        translation_overlap_ns: float = L3_HIT_CYCLES,
        scale: int = 16,
        seed: int = 0,
    ):
        if not specs:
            raise ValueError("at least one core's benchmark is required")
        self.specs = list(specs)
        self.bank = PCMBankModel(
            remap_interval=remap_interval,
            translation_ns=translation_ns,
            translation_overlap_ns=translation_overlap_ns,
        )
        self._cores = []
        for index, spec in enumerate(self.specs):
            gen = as_generator(seed + index)
            scaled = dataclasses.replace(
                spec,
                working_set_lines=max(2, spec.working_set_lines // scale),
            )
            trace = generate_trace(scaled, n_mem_ops, gen)
            hierarchy = CacheHierarchy(
                l1_bytes=max(4096, 32 * 1024 // scale),
                l2_bytes=max(8192, 256 * 1024 // scale),
                l3_bytes=max(16384, 8 * 1024 * 1024 // scale),
            )
            self._cores.append(
                {"trace": trace, "hier": hierarchy, "clock": 0.0,
                 "instr": 0.0, "pos": 0}
            )

    def run(self) -> MultiCoreResult:
        """Replay all cores to completion; earliest-clock-first ordering."""
        heap = [(0.0, idx) for idx in range(len(self._cores))]
        heapq.heapify(heap)
        while heap:
            _, idx = heapq.heappop(heap)
            core = self._cores[idx]
            addresses, is_write, gaps = core["trace"]
            position = core["pos"]
            if position >= len(addresses):
                continue
            # Execute one memory op (plus its preceding compute gap).
            gap = float(gaps[position])
            core["clock"] += gap
            core["instr"] += gap + 1.0
            outcome = core["hier"].access(
                int(addresses[position]), bool(is_write[position])
            )
            if outcome.level == 1:
                core["clock"] += L1_HIT_CYCLES
            elif outcome.level == 2:
                core["clock"] += L2_HIT_CYCLES
            elif outcome.level == 3:
                core["clock"] += L3_HIT_CYCLES
            else:
                core["clock"] = (
                    self.bank.submit_read(core["clock"]) + L3_HIT_CYCLES
                )
                if outcome.writeback is not None:
                    self.bank.submit_write(core["clock"])
            core["pos"] = position + 1
            if core["pos"] < len(addresses):
                heapq.heappush(heap, (core["clock"], idx))
        per_core_ipc = tuple(
            core["instr"] / core["clock"] if core["clock"] else 0.0
            for core in self._cores
        )
        return MultiCoreResult(
            n_cores=len(self._cores),
            instructions=sum(core["instr"] for core in self._cores),
            makespan_ns=max(core["clock"] for core in self._cores),
            per_core_ipc=per_core_ipc,
            remaps=self.bank.remaps_done,
        )


def multicore_degradation_percent(
    specs: Sequence[BenchmarkSpec],
    remap_interval: int,
    n_mem_ops: int = 6_000,
    translation_ns: float = 10.0,
    seed: int = 0,
) -> float:
    """Mean per-core IPC loss (%) of a wear-leveled vs baseline bank."""
    base = MultiCoreSystem(
        specs, n_mem_ops, 0, 0.0, seed=seed
    ).run()
    leveled = MultiCoreSystem(
        specs, n_mem_ops, remap_interval, translation_ns, seed=seed
    ).run()
    if base.mean_core_ipc == 0:
        return 0.0
    return (
        (base.mean_core_ipc - leveled.mean_core_ipc)
        / base.mean_core_ipc
        * 100.0
    )
