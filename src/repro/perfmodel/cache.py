"""Set-associative LRU cache hierarchy (L1 / L2 / L3 DRAM cache).

A straightforward trace-driven model: each level is set-associative with
true-LRU replacement; lookups walk L1 → L2 → L3, allocating on miss at every
level (inclusive), and report where the access hit.  Dirty evictions from
the last level become main-memory *writebacks* — together with L3 write
misses these are the writes the wear-leveling scheme sees.

The paper's configuration: 32 KB L1, 256 KB L2, 8 MB L3 DRAM cache, 256 B
lines (the PCM block size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one hierarchy access."""

    level: int  #: 1, 2, 3 = hit level; 4 = main memory
    writeback: Optional[int] = None  #: dirty line pushed to main memory


class Cache:
    """One set-associative LRU cache level storing line addresses."""

    def __init__(self, capacity_lines: int, associativity: int = 8):
        if capacity_lines < associativity:
            raise ValueError("capacity must hold at least one full set")
        if capacity_lines % associativity != 0:
            raise ValueError("capacity must be a multiple of associativity")
        self.n_sets = capacity_lines // associativity
        self.associativity = associativity
        # Per set: list of (line, dirty), most-recently-used last.
        self._sets: List[List[Tuple[int, bool]]] = [
            [] for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line: int) -> List[Tuple[int, bool]]:
        return self._sets[line % self.n_sets]

    def access(self, line: int, is_write: bool) -> bool:
        """Touch ``line``; return True on hit (promotes to MRU)."""
        ways = self._set_of(line)
        for i, (resident, dirty) in enumerate(ways):
            if resident == line:
                del ways[i]
                ways.append((line, dirty or is_write))
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, line: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; return the evicted ``(line, dirty)`` if any."""
        ways = self._set_of(line)
        victim = None
        if len(ways) >= self.associativity:
            victim = ways.pop(0)  # LRU
        ways.append((line, dirty))
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present (used for inclusive back-invalidation)."""
        ways = self._set_of(line)
        for i, (resident, _) in enumerate(ways):
            if resident == line:
                del ways[i]
                return True
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """Three-level inclusive hierarchy turning CPU ops into memory traffic."""

    def __init__(
        self,
        line_bytes: int = 256,
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 256 * 1024,
        l3_bytes: int = 8 * 1024 * 1024,
        associativity: int = 8,
    ):
        self.line_bytes = line_bytes
        self.l1 = Cache(max(associativity, l1_bytes // line_bytes), associativity)
        self.l2 = Cache(max(associativity, l2_bytes // line_bytes), associativity)
        self.l3 = Cache(max(associativity, l3_bytes // line_bytes), associativity)
        self.memory_reads = 0
        self.memory_writes = 0

    def access(self, line: int, is_write: bool) -> AccessOutcome:
        """Access one line; returns the hit level and any memory writeback."""
        if self.l1.access(line, is_write):
            return AccessOutcome(level=1)
        if self.l2.access(line, is_write):
            self._fill_l1(line, is_write)
            return AccessOutcome(level=2)
        if self.l3.access(line, is_write):
            self._fill_l2(line, is_write)
            self._fill_l1(line, is_write)
            return AccessOutcome(level=3)
        # Main-memory access; allocate through the hierarchy.
        self.memory_reads += 1
        writeback = self._fill_l3(line, is_write)
        self._fill_l2(line, is_write)
        self._fill_l1(line, is_write)
        if writeback is not None:
            self.memory_writes += 1
        return AccessOutcome(level=4, writeback=writeback)

    def _fill_l1(self, line: int, dirty: bool) -> None:
        victim = self.l1.fill(line, dirty)
        if victim is not None and victim[1]:
            # Dirty L1 victim merges into L2 (mark dirty there if present).
            self._mark_dirty(self.l2, victim[0])

    def _fill_l2(self, line: int, dirty: bool) -> None:
        victim = self.l2.fill(line, dirty)
        if victim is not None:
            self.l1.invalidate(victim[0])
            if victim[1]:
                self._mark_dirty(self.l3, victim[0])

    def _fill_l3(self, line: int, dirty: bool):
        victim = self.l3.fill(line, dirty)
        if victim is not None:
            self.l2.invalidate(victim[0])
            self.l1.invalidate(victim[0])
            if victim[1]:
                return victim[0]  # dirty eviction → memory writeback
        return None

    @staticmethod
    def _mark_dirty(cache: Cache, line: int) -> None:
        ways = cache._set_of(line)
        for i, (resident, dirty) in enumerate(ways):
            if resident == line:
                ways[i] = (resident, True)
                return
        # Victim not resident below (non-inclusive corner): write through.
        cache.fill(line, True)
