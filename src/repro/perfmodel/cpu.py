"""In-order-core IPC model: glue between traces, caches and the PCM bank.

For each benchmark the model replays one representative core's memory-op
trace through the cache hierarchy; L3 misses become timed PCM reads (the
core stalls until they return) and dirty L3 evictions become posted PCM
writes (they only occupy the bank).  IPC is instructions retired divided by
total cycles; the experiment compares a wear-leveled bank against the
no-wear-leveling baseline on the identical trace.

Latency assumptions follow the paper's setup: 1 GHz core (1 cycle = 1 ns),
L1/L2/L3 hit costs 1/10/40 cycles, PCM read 125 ns, PCM write 1000 ns,
10 ns address translation under Security RBSG, one remap movement per
``remap_interval`` memory writes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.perfmodel.cache import CacheHierarchy
from repro.perfmodel.memqueue import PCMBankModel
from repro.perfmodel.workloads import BenchmarkSpec, generate_trace
from repro.util.rng import SeedLike, as_generator

#: Hit latencies (cycles @ 1 GHz) per hierarchy level.
L1_HIT_CYCLES = 1.0
L2_HIT_CYCLES = 10.0
L3_HIT_CYCLES = 40.0


@dataclass(frozen=True)
class IPCResult:
    """IPC of one benchmark under one memory configuration."""

    name: str
    suite: str
    instructions: float
    cycles: float
    memory_reads: int
    memory_writes: int
    remaps: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def evaluate_benchmark(
    spec: BenchmarkSpec,
    n_mem_ops: int = 50_000,
    remap_interval: int = 0,
    translation_ns: float = 0.0,
    rng: SeedLike = None,
    scale: int = 16,
    translation_overlap_ns: float = L3_HIT_CYCLES,
) -> IPCResult:
    """Replay one benchmark against a PCM bank configuration.

    ``remap_interval == 0`` is the baseline (no wear leveling); a positive
    value inserts one remap movement per that many memory writes, plus the
    per-request ``translation_ns``, modelling Security RBSG's inner level.

    ``scale`` shrinks the cache hierarchy (and the workloads' declared
    working sets) by the given factor so that traces of ``n_mem_ops``
    accesses exercise L3 evictions the way full-length runs exercise the
    paper's 8 MB L3 — the usual down-scaling methodology for trace-driven
    cache studies.

    ``translation_overlap_ns`` models the DFN translation proceeding in
    parallel with the lookup that classifies the request as a memory access
    (the L3 DRAM-cache access, 40 ns); the paper's 10 ns translation is
    fully hidden under it, which is how benchmarks like bzip2/gcc "show no
    IPC degradation at all".  Set it to 0 for the unoverlapped ablation.
    """
    gen = as_generator(rng)
    scaled_spec = dataclasses.replace(
        spec, working_set_lines=max(2, spec.working_set_lines // scale)
    )
    addresses, is_write, gaps = generate_trace(scaled_spec, n_mem_ops, gen)
    hierarchy = CacheHierarchy(
        l1_bytes=max(4096, 32 * 1024 // scale),
        l2_bytes=max(8192, 256 * 1024 // scale),
        l3_bytes=max(16384, 8 * 1024 * 1024 // scale),
    )
    bank = PCMBankModel(
        remap_interval=remap_interval,
        translation_ns=translation_ns,
        translation_overlap_ns=translation_overlap_ns,
    )
    now_ns = 0.0  # 1 GHz: cycles == ns
    instructions = 0.0
    for address, write, gap in zip(addresses, is_write, gaps):
        # Non-memory instructions execute 1 per cycle.
        now_ns += float(gap)
        instructions += float(gap) + 1.0
        outcome = hierarchy.access(int(address), bool(write))
        if outcome.level == 1:
            now_ns += L1_HIT_CYCLES
        elif outcome.level == 2:
            now_ns += L2_HIT_CYCLES
        elif outcome.level == 3:
            now_ns += L3_HIT_CYCLES
        else:
            # L3 miss: a demand PCM read the core stalls on.
            now_ns = bank.submit_read(now_ns) + L3_HIT_CYCLES
            if outcome.writeback is not None:
                # Dirty eviction: a posted write, occupies the bank only.
                bank.submit_write(now_ns)
    return IPCResult(
        name=spec.name,
        suite=spec.suite,
        instructions=instructions,
        cycles=now_ns,
        memory_reads=hierarchy.memory_reads,
        memory_writes=hierarchy.memory_writes,
        remaps=bank.remaps_done,
    )


def evaluate_suite(
    specs: Sequence[BenchmarkSpec],
    n_mem_ops: int = 50_000,
    remap_interval: int = 0,
    translation_ns: float = 0.0,
    seed: int = 0,
) -> List[IPCResult]:
    """Evaluate a whole suite with per-benchmark deterministic seeds."""
    return [
        evaluate_benchmark(
            spec,
            n_mem_ops=n_mem_ops,
            remap_interval=remap_interval,
            translation_ns=translation_ns,
            rng=seed + index,
        )
        for index, spec in enumerate(specs)
    ]


def ipc_degradation_percent(
    spec: BenchmarkSpec,
    remap_interval: int,
    n_mem_ops: int = 50_000,
    translation_ns: float = 10.0,
    seed: int = 0,
    scale: int = 16,
) -> float:
    """IPC loss (%) of a wear-leveled bank vs the baseline, same trace."""
    base = evaluate_benchmark(spec, n_mem_ops, 0, 0.0, rng=seed, scale=scale)
    wl = evaluate_benchmark(
        spec, n_mem_ops, remap_interval, translation_ns, rng=seed, scale=scale
    )
    if base.ipc == 0:
        return 0.0
    return (base.ipc - wl.ipc) / base.ipc * 100.0
