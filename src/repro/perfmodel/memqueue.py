"""PCM bank timing with wear-leveling remap injection.

Models one PCM bank behind a memory-controller queue:

* a read occupies the bank for ``read_ns``; a write for ``write_ns``;
* every ``remap_interval`` writes the wear-leveling scheme appends a remap
  movement (``remap_ns`` of bank time) right after the triggering write —
  matching the paper's premise that remapping "halts other requests until
  it is completed";
* a request arriving while the bank is busy waits (FR-FCFS degenerates to
  FCFS for a single bank and a single request stream);
* every request additionally pays ``translation_ns`` of address-translation
  pipeline latency (the paper assumes 10 ns for Security RBSG's DFN stages
  plus isRemap SRAM lookup; 0 for the baseline).

The model works on timestamps (ns) and returns the finish time of each
request, from which the CPU model derives stalls.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PCMBankModel:
    """Single-bank occupancy model with remap insertion."""

    read_ns: float = 125.0
    write_ns: float = 1000.0
    remap_ns: float = 1125.0  #: one movement: read + worst-case write
    remap_interval: int = 0  #: 0 = no wear leveling (baseline)
    translation_ns: float = 0.0
    #: Address translation proceeds in parallel with the lookup that decides
    #: a request must go to memory (the L3 DRAM-cache access in the paper's
    #: system), so only the part exceeding this overlap is exposed.
    translation_overlap_ns: float = 0.0

    def __post_init__(self) -> None:
        self.bank_free_at = 0.0
        self.writes_seen = 0
        self.remaps_done = 0

    @property
    def exposed_translation_ns(self) -> float:
        return max(0.0, self.translation_ns - self.translation_overlap_ns)

    def submit_read(self, arrival_ns: float) -> float:
        """Service a read arriving at ``arrival_ns``; return finish time."""
        start = max(arrival_ns + self.exposed_translation_ns, self.bank_free_at)
        self.bank_free_at = start + self.read_ns
        return self.bank_free_at

    def submit_write(self, arrival_ns: float) -> float:
        """Service a write; append a remap movement when the interval fires.

        Returns the write's own finish time.  The remap occupies the bank
        *after* the write completes, so it delays only whoever arrives
        before the bank drains — idle workloads never notice it.
        """
        start = max(arrival_ns + self.exposed_translation_ns, self.bank_free_at)
        finish = start + self.write_ns
        self.bank_free_at = finish
        self.writes_seen += 1
        if self.remap_interval and self.writes_seen % self.remap_interval == 0:
            self.bank_free_at += self.remap_ns
            self.remaps_done += 1
        return finish
