"""Synthetic benchmark suite standing in for PARSEC and SPEC CPU2006.

Each :class:`BenchmarkSpec` fixes the knobs that determine how much remap
latency a wear-leveling scheme can hide:

* ``mem_per_kilo_instr`` — memory operations per 1000 instructions
  (PARSEC-like workloads are denser than most of SPEC, per the paper's
  observation that sparse access lets remaps hide in idle periods);
* ``write_fraction`` — fraction of memory operations that are writes;
* ``working_set_lines`` — footprint in cache lines (drives cache misses);
* ``hot_fraction`` / ``hot_weight`` — a hot subset absorbing most traffic
  (temporal locality);
* ``sequential_fraction`` — streaming accesses (spatial locality).

The numbers are synthetic but span the published characterisation ranges of
the two suites (PARSEC: streaming/memory-bound; SPEC: mostly cache-resident
with a few outliers like mcf/lbm).  Traces are generated as numpy arrays:
``(addresses, is_write, gap_cycles)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class BenchmarkSpec:
    """Synthetic workload parameters for one benchmark."""

    name: str
    suite: str  #: "parsec" or "spec"
    mem_per_kilo_instr: float  #: memory ops per 1000 instructions
    write_fraction: float  #: P(memory op is a write)
    working_set_lines: int  #: distinct cache lines touched
    hot_fraction: float = 0.1  #: fraction of the working set that is hot
    hot_weight: float = 0.7  #: fraction of accesses hitting the hot set
    sequential_fraction: float = 0.3  #: fraction of accesses that stream

    def __post_init__(self) -> None:
        if not 0 < self.mem_per_kilo_instr <= 1000:
            raise ValueError("mem_per_kilo_instr must be in (0, 1000]")
        for field in ("write_fraction", "hot_fraction", "hot_weight",
                      "sequential_fraction"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1]")
        if self.working_set_lines < 2:
            raise ValueError("working_set_lines must be >= 2")


def _parsec(name: str, mpki: float, wf: float, ws: int, seq: float = 0.4) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name, suite="parsec", mem_per_kilo_instr=mpki,
        write_fraction=wf, working_set_lines=ws, sequential_fraction=seq,
    )


def _spec(name: str, mpki: float, wf: float, ws: int, seq: float = 0.2) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name, suite="spec", mem_per_kilo_instr=mpki,
        write_fraction=wf, working_set_lines=ws, sequential_fraction=seq,
    )


#: 13 PARSEC-like benchmarks: denser memory traffic, larger footprints.
PARSEC_LIKE: Tuple[BenchmarkSpec, ...] = (
    _parsec("blackscholes", 18, 0.28, 1 << 15),
    _parsec("bodytrack", 26, 0.31, 1 << 16),
    _parsec("canneal", 58, 0.34, 1 << 19, seq=0.1),
    _parsec("dedup", 44, 0.42, 1 << 18),
    _parsec("facesim", 39, 0.36, 1 << 18),
    _parsec("ferret", 33, 0.30, 1 << 17),
    _parsec("fluidanimate", 41, 0.38, 1 << 18),
    _parsec("freqmine", 29, 0.27, 1 << 17),
    _parsec("raytrace", 24, 0.22, 1 << 16),
    _parsec("streamcluster", 62, 0.35, 1 << 19, seq=0.6),
    _parsec("swaptions", 15, 0.26, 1 << 14),
    _parsec("vips", 35, 0.33, 1 << 17),
    _parsec("x264", 30, 0.37, 1 << 17),
)

#: 27 SPEC-CPU2006-like benchmarks: mostly cache-resident, a few outliers.
SPEC_LIKE: Tuple[BenchmarkSpec, ...] = (
    _spec("perlbench", 6, 0.30, 1 << 13),
    _spec("bzip2", 9, 0.29, 1 << 14),
    _spec("gcc", 11, 0.33, 1 << 14),
    _spec("bwaves", 21, 0.21, 1 << 17, seq=0.7),
    _spec("gamess", 4, 0.24, 1 << 12),
    _spec("mcf", 48, 0.26, 1 << 19, seq=0.05),
    _spec("milc", 26, 0.30, 1 << 17, seq=0.5),
    _spec("zeusmp", 17, 0.28, 1 << 16),
    _spec("gromacs", 7, 0.27, 1 << 13),
    _spec("cactusADM", 19, 0.31, 1 << 16),
    _spec("leslie3d", 23, 0.29, 1 << 17, seq=0.6),
    _spec("namd", 5, 0.22, 1 << 12),
    _spec("gobmk", 8, 0.28, 1 << 13),
    _spec("dealII", 10, 0.27, 1 << 14),
    _spec("soplex", 27, 0.25, 1 << 17),
    _spec("povray", 3, 0.25, 1 << 11),
    _spec("calculix", 6, 0.24, 1 << 13),
    _spec("hmmer", 7, 0.31, 1 << 13),
    _spec("sjeng", 5, 0.26, 1 << 12),
    _spec("GemsFDTD", 24, 0.30, 1 << 17, seq=0.6),
    _spec("libquantum", 31, 0.23, 1 << 18, seq=0.8),
    _spec("h264ref", 9, 0.32, 1 << 14),
    _spec("tonto", 6, 0.26, 1 << 13),
    _spec("lbm", 38, 0.45, 1 << 18, seq=0.8),
    _spec("omnetpp", 22, 0.32, 1 << 16, seq=0.1),
    _spec("astar", 16, 0.27, 1 << 15),
    _spec("xalancbmk", 14, 0.31, 1 << 15),
)

ALL_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in PARSEC_LIKE + SPEC_LIKE
}


def generate_trace(
    spec: BenchmarkSpec,
    n_mem_ops: int,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate one benchmark's memory-op trace.

    Returns ``(addresses, is_write, gap_cycles)``:

    * ``addresses`` — line addresses within the working set,
    * ``is_write`` — boolean per op,
    * ``gap_cycles`` — CPU cycles of non-memory work *before* each op,
      drawn geometric with mean ``1000 / mem_per_kilo_instr`` (so sparse
      benchmarks leave long idle gaps between requests).
    """
    gen = as_generator(rng)
    ws = spec.working_set_lines
    hot_lines = max(1, int(ws * spec.hot_fraction))

    kind = gen.random(n_mem_ops)
    addresses = np.empty(n_mem_ops, dtype=np.int64)
    seq_mask = kind < spec.sequential_fraction
    hot_mask = (~seq_mask) & (kind < spec.sequential_fraction
                              + (1 - spec.sequential_fraction) * spec.hot_weight)
    rand_mask = ~(seq_mask | hot_mask)
    # Streaming: a wrapping sequential cursor.
    n_seq = int(seq_mask.sum())
    addresses[seq_mask] = (np.arange(n_seq) * 1) % ws
    # Hot set: uniform over the first hot_lines addresses.
    addresses[hot_mask] = gen.integers(0, hot_lines, size=int(hot_mask.sum()))
    # Cold misses: uniform over the whole working set.
    addresses[rand_mask] = gen.integers(0, ws, size=int(rand_mask.sum()))

    is_write = gen.random(n_mem_ops) < spec.write_fraction
    mean_gap = 1000.0 / spec.mem_per_kilo_instr
    gap_cycles = gen.geometric(p=min(1.0, 1.0 / mean_gap), size=n_mem_ops)
    return addresses, is_write, gap_cycles
