"""Task kinds: what one campaign point actually executes.

A *task function* maps ``(params, seed) -> JSON-able result dict``.  It
runs inside worker processes, so it must be a module-level function and
both its inputs and outputs must survive pickling/JSON.  Four kinds
ship with the library:

* ``lifetime`` — closed-form paper-scale lifetime of a (scheme, attack)
  pair (:mod:`repro.analysis.lifetime`); deterministic, seed-free.
* ``simulate`` — run one real attack against one scheme on the exact
  simulator and report the attack outcome plus the wear Gini.  This is
  the inner loop of the ``matrix`` subcommand and of
  :func:`repro.experiments.attack_matrix`.
* ``trace-lifetime`` — drive one scheme with one synthetic trace
  (uniform / zipf / sequential / raa) — or, with a ``trace_file``
  parameter, a loaded real trace (CSV or ``.rbt``) — to failure or
  budget on the batched engine
  (:func:`repro.sim.engine.run_trace_fast`); measured lifetime and
  write overhead rather than closed-form.
* ``tenant-lifetime`` — drive one scheme with multi-tenant mixed
  traffic (:class:`repro.traffic.TenantMixer`): a grid point over
  tenant count × skew × churn, measured on the batched engine.
* ``faults``   — one seeded fault-injection campaign
  (:func:`repro.analysis.resilience.run_fault_campaign`); the PR-1
  sweep, gridded.

Register additional kinds with :func:`register_task_kind` (tests use
this for crash/timeout probes).  The registry is a plain dict in the
registering process; the runner pins the ``fork`` start method so those
runtime registrations reach workers — on platforms without ``fork``,
register custom kinds at import time of an importable module instead.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.campaign.spec import Scalar
from repro.config import (
    PAPER_PCM,
    PCMConfig,
    RBSGConfig,
    SecurityRBSGConfig,
    SRConfig,
)
from repro.wearlevel.base import WearLeveler

TaskFn = Callable[[Mapping[str, Scalar], int], Dict[str, object]]

_TASK_KINDS: Dict[str, TaskFn] = {}


class TaskError(RuntimeError):
    """A task cannot run with the given parameters."""


def register_task_kind(name: str, fn: TaskFn) -> None:
    """Add (or replace) a task kind in the registry."""
    _TASK_KINDS[name] = fn


def task_kinds() -> Tuple[str, ...]:
    """The registered kind names, sorted."""
    return tuple(sorted(_TASK_KINDS))


def registered_tasks() -> Dict[str, TaskFn]:
    """A snapshot of the registry: ``kind name -> task function``.

    Exists so tooling (reprolint's REP103 campaign-determinism rule,
    importable enumeration in tests) can compare the *runtime* registry
    against what static analysis discovered, without reaching into the
    private ``_TASK_KINDS`` dict.
    """
    return dict(_TASK_KINDS)


def get_task(kind: str) -> TaskFn:
    """Resolve a kind name; raises :class:`TaskError` when unknown."""
    try:
        return _TASK_KINDS[kind]
    except KeyError:
        raise TaskError(
            f"unknown task kind {kind!r}; registered: {sorted(_TASK_KINDS)}"
        ) from None


def _int(params: Mapping[str, Scalar], name: str, default: int) -> int:
    return int(params.get(name, default))  # type: ignore[arg-type]


def _float(params: Mapping[str, Scalar], name: str, default: float) -> float:
    return float(params.get(name, default))  # type: ignore[arg-type]


def _str(params: Mapping[str, Scalar], name: str) -> str:
    try:
        return str(params[name])
    except KeyError:
        raise TaskError(f"task needs parameter {name!r}") from None


# ------------------------------------------------------------- lifetime


def run_lifetime_task(
    params: Mapping[str, Scalar], seed: int
) -> Dict[str, object]:
    """Closed-form lifetime of one (scheme, attack, config) point."""
    from repro.analysis.lifetime import (
        ideal_lifetime_ns,
        raa_nowl_lifetime_ns,
        raa_rbsg_lifetime_ns,
        raa_security_rbsg_lifetime_ns,
        raa_two_level_sr_lifetime_ns,
        rta_rbsg_lifetime_ns,
        rta_two_level_sr_lifetime_ns,
    )

    scheme = _str(params, "scheme")
    attack = _str(params, "attack")
    pcm = PAPER_PCM.scaled(
        n_lines=_int(params, "lines", PAPER_PCM.n_lines),
        endurance=_float(params, "endurance", PAPER_PCM.endurance),
    )
    if scheme == "none" and attack == "raa":
        ns = raa_nowl_lifetime_ns(pcm)
    elif scheme == "rbsg":
        cfg = RBSGConfig(
            _int(params, "regions", 32), _int(params, "interval", 100)
        )
        fn = rta_rbsg_lifetime_ns if attack == "rta" else raa_rbsg_lifetime_ns
        ns = fn(pcm, cfg)
    elif scheme == "two-level-sr":
        sr = SRConfig(
            _int(params, "subregions", 512),
            _int(params, "inner", 64),
            _int(params, "outer", 128),
        )
        fn2 = (
            rta_two_level_sr_lifetime_ns
            if attack == "rta"
            else raa_two_level_sr_lifetime_ns
        )
        ns = fn2(pcm, sr)
    elif scheme == "security-rbsg" and attack == "raa":
        srbsg = SecurityRBSGConfig(
            _int(params, "subregions", 512),
            _int(params, "inner", 64),
            _int(params, "outer", 128),
            _int(params, "stages", 7),
        )
        ns = raa_security_rbsg_lifetime_ns(pcm, srbsg)
    else:
        raise TaskError(f"no lifetime model for pair {scheme} / {attack}")
    ideal = ideal_lifetime_ns(pcm)
    return {
        "scheme": scheme,
        "attack": attack,
        "lifetime_ns": ns,
        "ideal_ns": ideal,
        "fraction_of_ideal": ns / ideal,
    }


# ------------------------------------------------------------- simulate


def build_scheme(
    name: str, n_lines: int, seed: int, params: Mapping[str, Scalar]
) -> "WearLeveler":
    """Construct one wear-leveling scheme instance by short name.

    Defaults match :data:`repro.experiments.SCHEME_FACTORIES` exactly;
    ``regions`` / ``interval`` / ``outer`` / ``stages`` parameters
    override them (the knobs ``repro simulate`` has always exposed).
    """
    from repro.core.security_rbsg import SecurityRBSG
    from repro.wearlevel import (
        MultiWaySR,
        NoWearLeveling,
        RandomSwapWearLeveling,
        RegionBasedStartGap,
        SecurityRefresh,
        StartGap,
        TableBasedWearLeveling,
        TwoLevelSecurityRefresh,
    )

    interval = _int(params, "interval", 16)
    regions = _int(params, "regions", 8)
    outer = _int(params, "outer", 2 * interval)
    stages = _int(params, "stages", 7)
    if name == "none":
        return NoWearLeveling(n_lines)
    if name == "start-gap":
        return StartGap(n_lines, remap_interval=interval)
    if name == "table":
        return TableBasedWearLeveling(n_lines, swap_interval=interval)
    if name == "random-swap":
        return RandomSwapWearLeveling(
            n_lines, swap_interval=interval, rng=seed
        )
    if name == "rbsg":
        return RegionBasedStartGap(
            n_lines, n_regions=regions, remap_interval=interval, rng=seed
        )
    if name == "sr":
        return SecurityRefresh(n_lines, remap_interval=interval, rng=seed)
    if name == "multiway-sr":
        return MultiWaySR(
            n_lines, n_subregions=regions, remap_interval=interval, rng=seed
        )
    if name == "two-level-sr":
        return TwoLevelSecurityRefresh(
            n_lines, n_subregions=regions, inner_interval=interval,
            outer_interval=outer, rng=seed,
        )
    if name == "security-rbsg":
        return SecurityRBSG(
            n_lines, n_subregions=regions, inner_interval=interval,
            outer_interval=outer, n_stages=stages, rng=seed,
        )
    raise TaskError(f"unknown scheme {name!r}")


def run_simulate_task(
    params: Mapping[str, Scalar], seed: int
) -> Dict[str, object]:
    """Run one real attack to failure (or budget) on the exact simulator."""
    from repro.attacks import (
        AddressInferenceAttack,
        BirthdayParadoxAttack,
        RBSGTimingAttack,
        RepeatedAddressAttack,
        SRTimingAttack,
    )
    from repro.pcm.stats import WearStats
    from repro.sim.memory_system import MemoryController

    scheme_name = _str(params, "scheme")
    attack_name = _str(params, "attack")
    n_lines = _int(params, "lines", 512)
    endurance = _float(params, "endurance", 2e4)
    budget = _int(params, "budget", 50_000_000)
    target = _int(params, "target", 5)

    config = PCMConfig(n_lines=n_lines, endurance=endurance)
    scheme = build_scheme(scheme_name, n_lines, seed, params)
    controller = MemoryController(scheme, config)
    attack: Any
    if attack_name == "raa":
        attack = RepeatedAddressAttack(controller, target_la=target)
    elif attack_name == "bpa":
        attack = BirthdayParadoxAttack(controller, rng=seed)
    elif attack_name == "aia":
        attack = AddressInferenceAttack(
            controller,
            knowledge_interval=_int(params, "knowledge_interval", 256),
        )
    elif attack_name == "rta" and scheme_name == "rbsg":
        attack = RBSGTimingAttack(controller, target_la=target)
    elif attack_name == "rta" and scheme_name == "sr":
        attack = SRTimingAttack(controller, target_la=max(1, target))
    else:
        raise TaskError(
            f"unsupported pair: {scheme_name} / {attack_name}"
        )
    result = attack.run(max_writes=budget)
    gini = WearStats.from_wear(controller.array.wear).gini
    return {
        "scheme": scheme_name,
        "attack": attack_name,
        "attack_label": result.attack,
        "user_writes": result.user_writes,
        "elapsed_ns": result.elapsed_ns,
        "failed": result.failed,
        "failed_pa": result.failed_pa,
        "detection_writes": result.detection_writes,
        "lifetime_seconds": result.lifetime_seconds,
        "wear_gini": gini,
    }


# ------------------------------------------------------- trace lifetime


def run_trace_lifetime_task(
    params: Mapping[str, Scalar], seed: int
) -> Dict[str, object]:
    """Measured lifetime / write overhead of one (scheme, trace) point.

    Drives the exact simulator with a synthetic trace — or, when the
    ``trace_file`` parameter names a CSV / ``.rbt`` file, a loaded real
    trace — until failure or the ``max_writes`` budget, on the batched
    engine by default (``fast = false`` selects the scalar reference;
    both are bit-identical, see :mod:`repro.sim.engine`).
    """
    from repro.pcm.stats import WearStats
    from repro.sim.engine import run_trace, run_trace_fast
    from repro.sim.memory_system import MemoryController
    from repro.sim.trace import (
        repeated_address_chunks,
        repeated_address_trace,
        sequential_chunks,
        sequential_trace,
        uniform_random_chunks,
        uniform_random_trace,
        zipf_chunks,
        zipf_trace,
    )
    from repro.traffic.adapter import open_trace_chunks, open_trace_entries

    scheme_name = _str(params, "scheme")
    trace_file = params.get("trace_file")
    trace_name = _str(params, "trace") if trace_file is None else str(
        params.get("trace", "file")
    )
    n_lines = _int(params, "lines", 4096)
    endurance = _float(params, "endurance", 1e4)
    max_writes = _int(params, "max_writes", 10_000_000)
    alpha = _float(params, "alpha", 1.2)
    target = _int(params, "target", 5)
    fast = bool(params.get("fast", True))

    config = PCMConfig(n_lines=n_lines, endurance=endurance)
    scheme = build_scheme(scheme_name, n_lines, seed, params)
    controller = MemoryController(scheme, config)

    # Chunked and scalar generators draw the identical RNG stream, so the
    # engine choice cannot change the trace.
    trace: Any
    if trace_file is not None:
        opener = open_trace_chunks if fast else open_trace_entries
        trace = opener(
            str(trace_file),
            n_lines=n_lines,
            line_bytes=_int(params, "line_bytes", 64),
            window_start=_int(params, "window_start", 0),
            window_mode=str(params.get("window_mode", "wrap")),
        )
    elif trace_name == "uniform":
        trace = (uniform_random_chunks(n_lines, rng=seed) if fast
                 else uniform_random_trace(n_lines, rng=seed))
    elif trace_name == "zipf":
        trace = (zipf_chunks(n_lines, alpha=alpha, rng=seed) if fast
                 else zipf_trace(n_lines, alpha=alpha, rng=seed))
    elif trace_name == "sequential":
        trace = (sequential_chunks(n_lines) if fast
                 else sequential_trace(n_lines))
    elif trace_name == "raa":
        trace = (repeated_address_chunks(target) if fast
                 else repeated_address_trace(target))
    else:
        raise TaskError(
            f"unknown trace kind {trace_name!r}; "
            "expected uniform / zipf / sequential / raa"
        )
    driver = run_trace_fast if fast else run_trace
    result = driver(controller, trace, max_writes=max_writes)
    gini = WearStats.from_wear(controller.array.wear).gini
    return {
        "scheme": scheme_name,
        "trace": trace_name,
        "engine": "batched" if fast else "scalar",
        "user_writes": result.user_writes,
        "total_writes": result.total_writes,
        "elapsed_ns": result.elapsed_ns,
        "write_amplification": result.write_amplification,
        "failed": result.failed,
        "failed_pa": result.failed_pa,
        "lifetime_seconds": result.lifetime_seconds,
        "wear_gini": gini,
    }


def run_lifetime_ff_task(
    params: Mapping[str, Scalar], seed: int
) -> Dict[str, object]:
    """Paper-scale measured lifetime on the analytic fast-forward tier.

    The distributed counterpart of ``trace-lifetime`` for device sizes
    where even the chunk-exact engine is too slow: the trace is described
    by a :class:`~repro.sim.fastforward.TraceSpec` and the engine jumps
    whole remapping rounds analytically, dropping back to chunk-exact
    near end-of-life (see docs/performance.md).  Parameters mirror
    ``trace-lifetime`` plus ``fast_forward`` (``auto`` / ``analytic`` /
    ``off``), ``n_shards`` (0 = monolithic array), ``memmap_dir`` and
    ``spares`` (spare lines appended to the physical space — dealt
    round-robin across shards when sharded).

    The reported lifetime is the paper's **first-failure** metric.
    ``spares`` provisions the pool — the array (and any memmap files)
    grows, which is what a fleet-partitioned campaign needs sized
    correctly — but retirement is a scalar-controller feature
    (:class:`~repro.pcm.sparing.SparingController`), so the pool does
    not extend this metric.  Wear statistics exclude the unworn spare
    tail.
    """
    from repro.pcm.stats import WearStats
    from repro.sim.engine import run_trace_fast
    from repro.sim.fastforward import TRACE_KINDS, TraceSpec
    from repro.sim.memory_system import MemoryController

    scheme_name = _str(params, "scheme")
    trace_name = _str(params, "trace")
    if trace_name not in TRACE_KINDS:
        raise TaskError(
            f"unknown trace kind {trace_name!r}; expected one of "
            f"{sorted(TRACE_KINDS)}"
        )
    n_lines = _int(params, "lines", 1 << 23)
    endurance = _float(params, "endurance", 1e8)
    max_writes = params.get("max_writes")
    mode = str(params.get("fast_forward", "auto"))
    n_shards = _int(params, "n_shards", 0)
    memmap_dir = params.get("memmap_dir")

    config = PCMConfig(n_lines=n_lines, endurance=endurance)
    scheme = build_scheme(scheme_name, n_lines, seed, params)
    controller = MemoryController(
        scheme,
        config,
        n_shards=n_shards if n_shards > 0 else None,
        memmap_dir=None if memmap_dir is None else str(memmap_dir),
    )
    spares = _int(params, "spares", 0)
    if spares:
        controller.array.add_lines(spares)
    spec = TraceSpec(
        kind=trace_name,
        n_lines=n_lines,
        n_writes=None,
        alpha=_float(params, "alpha", 1.2),
        target=_int(params, "target", 5),
        seed=seed,
    )
    result = run_trace_fast(
        controller,
        spec,
        max_writes=None if max_writes is None else int(max_writes),
        fast_forward=mode,
    )
    wear = controller.array.wear
    if spares:  # spare PAs are contiguous at the end and unworn
        wear = wear[:-spares]
    gini = WearStats.from_wear(wear).gini
    return {
        "scheme": scheme_name,
        "trace": trace_name,
        "engine": f"fast-forward:{mode}",
        "n_shards": n_shards,
        "spares": spares,
        "user_writes": result.user_writes,
        "total_writes": result.total_writes,
        "elapsed_ns": result.elapsed_ns,
        "write_amplification": result.write_amplification,
        "failed": result.failed,
        "failed_pa": result.failed_pa,
        "lifetime_seconds": result.lifetime_seconds,
        "wear_gini": gini,
    }


# ------------------------------------------------------ tenant lifetime


def run_tenant_lifetime_task(
    params: Mapping[str, Scalar], seed: int
) -> Dict[str, object]:
    """Measured lifetime of one (scheme, tenant population) grid point.

    Builds a :class:`repro.traffic.TenantMixer` — from a spec file when
    the ``profile`` parameter names one, otherwise the standard mixed
    population (:func:`repro.traffic.mixed_spec`) over the ``tenants``
    / ``alpha`` / ``churn_*`` knobs — and drives the simulator to
    failure or budget.  All tenant randomness descends from the task
    seed through ``derive_seed`` child streams, so results are
    schedule-independent: serial and parallel campaign runs are
    byte-identical.
    """
    from repro.pcm.stats import WearStats
    from repro.sim.engine import run_trace, run_trace_fast
    from repro.sim.memory_system import MemoryController
    from repro.traffic.profiles import load_traffic_spec, mixed_spec

    scheme_name = _str(params, "scheme")
    n_lines = _int(params, "lines", 4096)
    endurance = _float(params, "endurance", 1e4)
    max_writes = _int(params, "max_writes", 10_000_000)
    fast = bool(params.get("fast", True))

    profile = params.get("profile")
    if profile is not None:
        spec = load_traffic_spec(str(profile))
    else:
        spec = mixed_spec(
            _int(params, "tenants", 1000),
            alpha=_float(params, "alpha", 1.2),
            churn_interval=_int(params, "churn_interval", 0),
            churn_fraction=_float(params, "churn_fraction", 0.02),
            churn_boost=_float(params, "churn_boost", 8.0),
            schedule_interval=_int(params, "schedule_interval", 8192),
        )
    mixer = spec.build_mixer(n_lines, seed)

    config = PCMConfig(n_lines=n_lines, endurance=endurance)
    scheme = build_scheme(scheme_name, n_lines, seed, params)
    controller = MemoryController(scheme, config)

    traffic: Any = mixer.chunks() if fast else mixer.entries()
    driver = run_trace_fast if fast else run_trace
    result = driver(controller, traffic, max_writes=max_writes)
    gini = WearStats.from_wear(controller.array.wear).gini
    return {
        "scheme": scheme_name,
        "traffic": spec.name,
        "tenants": mixer.n_tenants,
        "churn_interval": spec.churn_interval,
        "engine": "batched" if fast else "scalar",
        "user_writes": result.user_writes,
        "total_writes": result.total_writes,
        "elapsed_ns": result.elapsed_ns,
        "write_amplification": result.write_amplification,
        "failed": result.failed,
        "failed_pa": result.failed_pa,
        "lifetime_seconds": result.lifetime_seconds,
        "wear_gini": gini,
    }


# --------------------------------------------------------------- faults


def run_faults_task(
    params: Mapping[str, Scalar], seed: int
) -> Dict[str, object]:
    """One seeded fault-injection campaign on one (scheme, config) point."""
    from repro.analysis.resilience import run_fault_campaign

    scheme = _str(params, "scheme")
    pcm_fields = {f.name for f in dataclasses.fields(PCMConfig)}
    config = PCMConfig(  # type: ignore[arg-type]
        **{k: v for k, v in params.items() if k in pcm_fields}
    )
    result = run_fault_campaign(
        scheme,
        config,
        n_spares=_int(params, "n_spares", 8),
        n_writes=_int(params, "n_writes", 20_000),
        seed=seed,
        degraded_mode=bool(params.get("degraded_mode", True)),
    )
    document = dataclasses.asdict(result)
    document["retirements"] = [list(r) for r in result.retirements]
    return document


register_task_kind("lifetime", run_lifetime_task)
register_task_kind("simulate", run_simulate_task)
register_task_kind("trace-lifetime", run_trace_lifetime_task)
register_task_kind("lifetime-ff", run_lifetime_ff_task)
register_task_kind("tenant-lifetime", run_tenant_lifetime_task)
register_task_kind("faults", run_faults_task)
