"""Declarative campaign specifications and their deterministic expansion.

A :class:`CampaignSpec` names a *task kind* (see
:mod:`repro.campaign.tasks`) and describes a parameter space three ways,
all optional and freely combined:

* ``base``   — parameters shared by every task,
* ``grid``   — a cartesian product over per-parameter value lists,
* ``points`` — an explicit list of parameter dicts (e.g. only the
  *supported* (scheme, attack) pairs of an attack matrix).

Each resulting parameter set is replicated once per entry of ``seeds``.
:meth:`CampaignSpec.expand` flattens the space into an ordered list of
hashable :class:`TaskKey` records — the unit of scheduling, storage and
resume.  Expansion is **deterministic**: points in listed order, grid
keys in sorted order with values in listed order, seeds in listed order.
Precedence on name collisions is ``base < grid < point``.

Specs load from TOML (Python 3.11+) or JSON files with the layout::

    [campaign]
    name = "fault-grid"
    kind = "faults"
    seed = 7
    seeds = [0, 1]        # or: n_seeds = 2

    [base]
    n_lines = 128
    n_writes = 3000

    [grid]
    scheme = ["none", "rbsg"]
    verify_fail_base = [1e-3, 1e-2]

See ``docs/campaigns.md`` for the full format and the determinism
contract.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

Scalar = Union[str, int, float, bool]
Params = Tuple[Tuple[str, Scalar], ...]
PathLike = Union[str, Path]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class SpecError(ValueError):
    """A campaign specification is malformed."""


def _check_scalar(name: str, value: object) -> Scalar:
    if isinstance(value, bool) or isinstance(value, (str, int, float)):
        return value
    raise SpecError(
        f"parameter {name!r} must be a string/int/float/bool scalar, "
        f"got {type(value).__name__}"
    )


def _freeze_params(params: Mapping[str, object]) -> Params:
    return tuple(
        (str(k), _check_scalar(str(k), v)) for k, v in sorted(params.items())
    )


def _canonical_json(document: object) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, order=True)
class TaskKey:
    """One schedulable point: a task kind, its parameters, and a seed.

    Hashable and totally ordered — the campaign store deduplicates and
    the aggregator sorts on it.  ``params`` is a sorted tuple of
    ``(name, scalar)`` pairs, so two keys built from equal dicts compare
    equal regardless of construction order.
    """

    kind: str
    params: Params
    seed: int

    @property
    def key_id(self) -> str:
        """Stable 16-hex-digit identity used for checkpointing/resume."""
        payload = _canonical_json(
            {"kind": self.kind, "params": dict(self.params), "seed": self.seed}
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @classmethod
    def create(
        cls, kind: str, params: Mapping[str, Scalar], seed: int = 0
    ) -> "TaskKey":
        """Build a key from a plain parameter dict (freezes/sorts it)."""
        return cls(kind=kind, params=_freeze_params(params), seed=int(seed))

    def param(self, name: str, default: Optional[Scalar] = None) -> Optional[Scalar]:
        """Look up one parameter by name."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def as_dict(self) -> Dict[str, Scalar]:
        """The parameters as a plain dict (task-function input)."""
        return dict(self.params)

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "TaskKey":
        return cls(
            kind=str(document["kind"]),
            params=_freeze_params(document["params"]),
            seed=int(document["seed"]),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """Immutable, hash-stable description of one experiment campaign."""

    name: str
    kind: str
    seed: int = 0
    seeds: Tuple[int, ...] = (0,)
    base: Params = ()
    grid: Tuple[Tuple[str, Tuple[Scalar, ...]], ...] = ()
    points: Tuple[Params, ...] = field(default=())

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SpecError(f"invalid campaign name {self.name!r}")
        if not self.kind:
            raise SpecError("campaign kind must be non-empty")
        if not self.seeds:
            raise SpecError("campaign needs at least one seed")
        for key, values in self.grid:
            if not values:
                raise SpecError(f"grid parameter {key!r} has no values")

    # ------------------------------------------------------- construction

    @classmethod
    def create(
        cls,
        name: str,
        kind: str,
        *,
        seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        n_seeds: Optional[int] = None,
        base: Optional[Mapping[str, Scalar]] = None,
        grid: Optional[Mapping[str, Sequence[Scalar]]] = None,
        points: Optional[Iterable[Mapping[str, Scalar]]] = None,
    ) -> "CampaignSpec":
        """Build a spec from plain dicts/lists, normalising to tuples.

        ``seeds`` lists explicit per-point seeds; ``n_seeds`` is the
        shorthand ``seeds = [0, 1, ..., n-1]``.  Exactly one of the two
        may be given; neither means the single seed ``0``.
        """
        if seeds is not None and n_seeds is not None:
            raise SpecError("give either 'seeds' or 'n_seeds', not both")
        if n_seeds is not None:
            if n_seeds < 1:
                raise SpecError("n_seeds must be >= 1")
            seed_tuple = tuple(range(n_seeds))
        elif seeds is not None:
            seed_tuple = tuple(int(s) for s in seeds)
        else:
            seed_tuple = (0,)
        grid_items: List[Tuple[str, Tuple[Scalar, ...]]] = []
        for key in sorted(grid or {}):
            values = tuple(
                _check_scalar(key, v) for v in (grid or {})[key]
            )
            grid_items.append((key, values))
        return cls(
            name=name,
            kind=kind,
            seed=int(seed),
            seeds=seed_tuple,
            base=_freeze_params(base or {}),
            grid=tuple(grid_items),
            points=tuple(_freeze_params(p) for p in (points or [])),
        )

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CampaignSpec":
        """Parse the TOML/JSON document layout (see module docstring)."""
        try:
            campaign = dict(document["campaign"])
        except (KeyError, TypeError) as exc:
            raise SpecError("spec needs a [campaign] table") from exc
        known = {"name", "kind", "seed", "seeds", "n_seeds"}
        unknown = set(campaign) - known
        if unknown:
            raise SpecError(
                f"unknown [campaign] keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        for table in set(document) - {"campaign", "base", "grid", "points"}:
            raise SpecError(f"unknown top-level table {table!r}")
        try:
            name = campaign["name"]
            kind = campaign["kind"]
        except KeyError as exc:
            raise SpecError(f"[campaign] table lacks {exc}") from exc
        return cls.create(
            name=str(name),
            kind=str(kind),
            seed=int(campaign.get("seed", 0)),
            seeds=campaign.get("seeds"),
            n_seeds=campaign.get("n_seeds"),
            base=document.get("base"),
            grid=document.get("grid"),
            points=document.get("points"),
        )

    # -------------------------------------------------------- persistence

    def to_dict(self) -> Dict[str, Any]:
        """The loadable document form (inverse of :meth:`from_dict`)."""
        document: Dict[str, Any] = {
            "campaign": {
                "name": self.name,
                "kind": self.kind,
                "seed": self.seed,
                "seeds": list(self.seeds),
            }
        }
        if self.base:
            document["base"] = dict(self.base)
        if self.grid:
            document["grid"] = {k: list(v) for k, v in self.grid}
        if self.points:
            document["points"] = [dict(p) for p in self.points]
        return document

    def spec_hash(self) -> str:
        """SHA-256 of the canonical spec document (resume compatibility)."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode()
        ).hexdigest()

    # ---------------------------------------------------------- expansion

    def expand(self) -> List[TaskKey]:
        """Flatten the spec into its ordered, duplicate-free task list."""
        base = dict(self.base)
        grid_keys = [k for k, _ in self.grid]
        grid_values = [v for _, v in self.grid]
        combos: List[Dict[str, Scalar]] = [
            dict(zip(grid_keys, values)) for values in product(*grid_values)
        ]
        point_dicts: List[Dict[str, Scalar]] = [
            dict(p) for p in self.points
        ] or [{}]
        tasks: List[TaskKey] = []
        seen: Dict[str, TaskKey] = {}
        for point in point_dicts:
            for combo in combos:
                merged = {**base, **combo, **point}
                params = _freeze_params(merged)
                for seed in self.seeds:
                    key = TaskKey(kind=self.kind, params=params, seed=seed)
                    if key.key_id in seen:
                        raise SpecError(
                            f"duplicate task {key.to_json()} — points/grid "
                            "overlap; every expanded task must be unique"
                        )
                    seen[key.key_id] = key
                    tasks.append(key)
        return tasks


def load_spec(path: PathLike) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - Python < 3.11
            raise SpecError(
                f"reading {path} needs the stdlib 'tomllib' (Python 3.11+); "
                "convert the spec to JSON for older interpreters"
            ) from exc
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    return CampaignSpec.from_dict(document)
