"""repro.campaign — parallel experiment-campaign orchestration.

The one audited home of process-level parallelism in this library
(reprolint REP007 keeps ``multiprocessing``/``concurrent.futures`` out
of every other package).  A campaign is:

1. a **spec** (:mod:`repro.campaign.spec`) — a declarative parameter
   grid over a task kind, expanded deterministically into hashable
   :class:`~repro.campaign.spec.TaskKey` points;
2. a **store** (:mod:`repro.campaign.store`) — a crash-safe append-only
   JSONL checkpoint with a manifest, enabling kill-and-resume with no
   duplicated or lost points;
3. a **runner** (:mod:`repro.campaign.runner`) — a bounded
   process-pool fan-out with per-task seed derivation, timeouts,
   deterministic retries and worker-crash isolation;
4. an **aggregator** (:mod:`repro.campaign.aggregate`) — seed-averaged
   group summaries whose JSON/CSV exports are byte-identical between
   serial and parallel executions of the same spec;
5. a **service** (:mod:`repro.campaign.service`) — the distributed
   form of the runner: an asyncio TCP coordinator leases task attempts
   to remote workers with heartbeats, lease-expiry requeue, at-most-once
   result commit and dead-lettering, producing the same bytes as a
   serial run no matter how workers fail.  (It is likewise the one
   audited home of async/socket code — REP007 again.)

CLI: ``python -m repro campaign run|resume|status|report`` locally,
``serve|worker|watch|compact`` distributed; example specs live in
``examples/campaigns/``; the full contract is documented in
``docs/campaigns.md``.
"""

from repro.campaign.aggregate import aggregate, to_csv, to_json
from repro.campaign.progress import ProgressReporter
from repro.campaign.runner import (
    RunnerConfig,
    RunSummary,
    attempt_seed,
    run_campaign,
    run_collect,
    run_tasks,
)
from repro.campaign.spec import (
    CampaignSpec,
    SpecError,
    TaskKey,
    load_spec,
)
from repro.campaign.store import (
    CampaignStore,
    StoreError,
    StoreStatus,
    TaskRecord,
)
from repro.campaign.tasks import (
    TaskError,
    get_task,
    register_task_kind,
    registered_tasks,
    task_kinds,
)

__all__ = [
    "CampaignSpec",
    "CampaignStore",
    "ProgressReporter",
    "RunSummary",
    "RunnerConfig",
    "SpecError",
    "StoreError",
    "StoreStatus",
    "TaskError",
    "TaskKey",
    "TaskRecord",
    "aggregate",
    "attempt_seed",
    "get_task",
    "load_spec",
    "register_task_kind",
    "run_campaign",
    "run_collect",
    "run_tasks",
    "registered_tasks",
    "task_kinds",
    "to_csv",
    "to_json",
]
