"""Live campaign progress over the service wire (`repro campaign watch`).

A watch client is a read-only peer: it says ``hello`` with role
``watch`` and may only ask ``status_request``.  The counters come back
as absolute values, which :class:`~repro.campaign.progress`'s reporter
renders as the same one-line done/total/ETA view the local runner
shows — one campaign, one progress language, local or distributed.

Reconnects follow the worker's discipline (the coordinator may restart
mid-campaign); a watch exits ``0`` once the coordinator reports the
campaign complete, ``1`` when the coordinator stays unreachable.
"""
# reprolint: disable-file=REP005 polling cadence is host time

from __future__ import annotations

import asyncio
import sys
import time
from typing import IO, Optional, Tuple

from repro.campaign.progress import ProgressReporter
from repro.campaign.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)
from repro.campaign.service.worker import (
    PathLike,
    WorkerError,
    read_service_file,
)


async def _poll_once(
    host: str, port: int, name: str
) -> Tuple[str, int, int, int, bool]:
    """One connect/status/close cycle.

    Returns ``(campaign, n_tasks, n_done, n_failed, complete)``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_message(
            writer,
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "role": "watch",
                "name": name,
            },
        )
        hello_ok = await read_message(reader)
        if hello_ok is None or hello_ok["type"] != "hello_ok":
            raise ProtocolError("coordinator did not accept the watch")
        await write_message(writer, {"type": "status_request"})
        status = await read_message(reader)
        if status is None or status["type"] != "status":
            raise ProtocolError("coordinator did not answer status_request")
        return (
            str(status["campaign"]),
            int(status["n_tasks"]),
            int(status["n_done"]),
            int(status["n_failed"]),
            bool(status["complete"]),
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_watch(
    host: Optional[str] = None,
    port: Optional[int] = None,
    connect_dir: Optional[PathLike] = None,
    interval_s: float = 1.0,
    give_up_s: float = 30.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
) -> int:
    """Poll a coordinator and render live progress until completion."""
    if connect_dir is None and (host is None or port is None):
        raise WorkerError("need host+port or a campaign directory")
    stream = sys.stderr if stream is None else stream
    reporter: Optional[ProgressReporter] = None
    last_contact = time.monotonic()
    while True:
        try:
            if connect_dir is not None:
                target = read_service_file(connect_dir)
            else:
                assert host is not None and port is not None
                target = (host, port)
            campaign, n_tasks, n_done, n_failed, complete = await _poll_once(
                target[0], target[1], "watch"
            )
            last_contact = time.monotonic()
            if reporter is None:
                stream.write(
                    f"watching campaign {campaign!r}: {n_tasks} tasks\n"
                )
                reporter = ProgressReporter(n_tasks, stream=stream)
            reporter.update_absolute(n_done, n_failed, final=complete)
            if complete:
                reporter.finish()
                stream.write("campaign complete\n")
                return 0
            if once:
                reporter.finish()
                return 1
        except (
            ConnectionError,
            OSError,
            ProtocolError,
            WorkerError,
            asyncio.IncompleteReadError,
        ) as exc:
            if once:
                stream.write(f"watch: coordinator unreachable: {exc}\n")
                return 1
            if time.monotonic() - last_contact > give_up_s:
                stream.write(
                    f"watch: coordinator unreachable for {give_up_s:g}s "
                    f"({exc}); giving up\n"
                )
                return 1
        await asyncio.sleep(interval_s)


def watch_main(
    host: Optional[str] = None,
    port: Optional[int] = None,
    connect_dir: Optional[PathLike] = None,
    interval_s: float = 1.0,
    give_up_s: float = 30.0,
    once: bool = False,
) -> int:
    """Synchronous entry point for ``repro campaign watch``."""
    return asyncio.run(
        run_watch(
            host=host,
            port=port,
            connect_dir=connect_dir,
            interval_s=interval_s,
            give_up_s=give_up_s,
            once=once,
        )
    )
