"""Fault-tolerant campaign coordinator: lease, heartbeat, commit, drain.

The coordinator owns one campaign directory and leases task *attempts*
to remote workers over the :mod:`~repro.campaign.service.protocol`
wire.  Its one invariant is the campaign determinism contract: **no
worker failure mode may change the bytes of the final report.**  The
mechanisms:

* **Leases, not assignments.**  A granted attempt carries the exact
  ``(key, attempt, task_seed)`` the local runner would use
  (:func:`repro.campaign.runner.attempt_seed`).  A lease expires when
  its worker stops heartbeating (monotonic clock); the *same* attempt —
  same seed — is then re-leased after an exponential backoff, so a
  SIGKILLed worker costs wall-clock time, never bytes.
* **At-most-once commit.**  Results are committed keyed by
  ``(key_id, attempt)``; the first result wins and duplicates from a
  zombie worker (one whose lease expired and whose task was re-leased)
  are acknowledged but discarded.  One final record per ``key_id``
  reaches the store, exactly as ``run_tasks`` guarantees locally.
* **Task errors retry like the local runner** — attempt ``k`` fails →
  attempt ``k+1`` with ``derive_seed(seed, key_id, k+1)`` up to
  ``retries`` — while *lease expiries* (worker death) re-run the same
  attempt.  A task whose leases keep expiring is dead-lettered after
  ``max_requeues`` expiries: a final ``error`` record is written and
  the campaign completes without it, rather than spinning forever on a
  poison task.
* **Graceful drain.**  SIGTERM (or :meth:`Coordinator.begin_drain`)
  stops granting leases, lets outstanding leases finish up to
  ``drain_grace_s``, then closes with every committed record durable —
  ``campaign serve --resume`` continues from the store.
* **Malformed-peer quarantine.**  Any protocol violation drops the
  connection and refuses that host for ``quarantine_s``; a hostile or
  corrupt client cannot wedge the lease table.

Wall-clock time here is host-side orchestration (lease expiry, backoff,
drain grace), never simulated time, hence the file-wide REP005 waiver.
"""
# reprolint: disable-file=REP005 lease expiry/backoff/drain are host time

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass
from collections import deque
from itertools import count
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Set, Tuple

from repro.campaign.runner import RunSummary, attempt_seed
from repro.campaign.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)
from repro.campaign.spec import CampaignSpec, TaskKey
from repro.campaign.store import CampaignStore, TaskRecord

SERVICE_NAME = "service.json"


@dataclass(frozen=True)
class ServiceConfig:
    """Timing and retry knobs of one coordinator."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port lands in service.json
    lease_timeout_s: float = 30.0  #: heartbeat silence before requeue
    heartbeat_interval_s: float = 5.0  #: advertised worker cadence
    task_timeout_s: float = 0.0  #: per-attempt execution budget; 0 = none
    retries: int = 1  #: task-*error* retries (mirrors RunnerConfig)
    max_requeues: int = 3  #: lease *expiries* per attempt before dead-letter
    backoff_base_s: float = 0.5  #: first requeue delay; doubles per expiry
    backoff_max_s: float = 30.0
    drain_grace_s: float = 30.0  #: SIGTERM: wait this long for leases
    linger_s: float = 3.0  #: serve connected workers `drain` after completion
    quarantine_s: float = 30.0  #: refuse a malformed peer's host this long

    def __post_init__(self) -> None:
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if not 0 < self.heartbeat_interval_s < self.lease_timeout_s:
            raise ValueError(
                "heartbeat_interval_s must be positive and below "
                "lease_timeout_s"
            )
        if self.task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 = unlimited)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.linger_s < 0 or self.drain_grace_s < 0:
            raise ValueError("linger_s/drain_grace_s must be >= 0")
        if self.quarantine_s < 0:
            raise ValueError("quarantine_s must be >= 0")


@dataclass
class _Lease:
    """One outstanding attempt: who runs it and until when we believe them."""

    lease_id: str
    key: TaskKey
    attempt: int
    task_seed: int
    worker: str
    expires_at: float  #: monotonic; pushed forward by each heartbeat


class Coordinator:
    """Lease table + result commit over one :class:`CampaignStore`."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: CampaignStore,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.config = config or ServiceConfig()
        all_tasks = spec.expand()
        completed = store.completed_ids()
        self._todo: List[TaskKey] = [
            t for t in all_tasks if t.key_id not in completed
        ]
        self.n_total = len(all_tasks)
        self.n_skipped = len(all_tasks) - len(self._todo)
        self._keys: Dict[str, TaskKey] = {t.key_id: t for t in self._todo}
        self._pending: Deque[Tuple[TaskKey, int]] = deque(
            (key, 0) for key in self._todo
        )
        #: (ready_at, key, attempt) — backoff parking lot, scanned by tick
        self._delayed: List[Tuple[float, TaskKey, int]] = []
        self._leases: Dict[str, _Lease] = {}
        self._processed: Set[Tuple[str, int]] = set()
        self._final: Set[str] = set()
        self._requeues: Dict[str, int] = {}
        self._quarantined: Dict[str, float] = {}
        self._lease_seq: Iterator[int] = count(1)
        self._n_ok = 0
        self._n_failed = 0
        self._n_dead = 0
        self._n_workers = 0
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._done = asyncio.Event()
        self.bound_port: Optional[int] = None

    # ------------------------------------------------------------- state

    @property
    def complete(self) -> bool:
        """Every non-skipped task has produced its final record."""
        return len(self._final) >= len(self._todo)

    def summary(self) -> RunSummary:
        return RunSummary(
            n_tasks=len(self._todo),
            n_ok=self._n_ok,
            n_failed=self._n_failed,
            n_skipped=self.n_skipped,
            stopped_early=self._draining and not self.complete,
        )

    def status_message(self) -> Dict[str, Any]:
        return {
            "type": "status",
            "campaign": self.spec.name,
            "n_tasks": self.n_total,
            "n_done": self.n_skipped + len(self._final),
            "n_ok": self._n_ok,
            "n_failed": self._n_failed,
            "n_dead": self._n_dead,
            "n_leased": len(self._leases),
            "n_pending": len(self._pending) + len(self._delayed),
            "n_workers": self._n_workers,
            "complete": self.complete,
            "draining": self._draining,
        }

    def begin_drain(self) -> None:
        """Stop granting leases; finish or abandon what is out, then stop."""
        if self._draining:
            self._done.set()  # second signal: stop now
            return
        self._draining = True
        if self._leases:
            self._drain_deadline = (
                time.monotonic() + self.config.drain_grace_s
            )
        else:
            self._done.set()

    def _finalize(self, record: TaskRecord, dead: bool = False) -> None:
        """Commit one *final* record per key: store write + counters."""
        key_id = record.key.key_id
        if key_id in self._final:
            return
        self._final.add(key_id)
        self.store.append(record)
        if record.ok:
            self._n_ok += 1
        else:
            self._n_failed += 1
            if dead:
                self._n_dead += 1
        # A finalized key's queued copies are wasted work: drop them.
        self._pending = deque(
            (k, a) for k, a in self._pending if k.key_id != key_id
        )
        self._delayed = [
            (t, k, a) for t, k, a in self._delayed if k.key_id != key_id
        ]
        if self.complete:
            self._done.set()

    def _schedule(self, key: TaskKey, attempt: int, delay_s: float) -> None:
        if delay_s <= 0:
            self._pending.append((key, attempt))
        else:
            self._delayed.append((time.monotonic() + delay_s, key, attempt))

    def _backoff_s(self, n_requeues: int) -> float:
        base = self.config.backoff_base_s * (2.0 ** max(n_requeues - 1, 0))
        return min(base, self.config.backoff_max_s)

    def _expire_lease(self, lease: _Lease) -> None:
        """Heartbeat silence: requeue the same attempt or dead-letter."""
        self._leases.pop(lease.lease_id, None)
        key_id = lease.key.key_id
        if key_id in self._final:
            return  # a zombie's earlier result already finished this key
        n = self._requeues.get(key_id, 0) + 1
        self._requeues[key_id] = n
        if n > self.config.max_requeues:
            self._finalize(
                TaskRecord(
                    key=lease.key,
                    attempt=lease.attempt,
                    task_seed=lease.task_seed,
                    status="error",
                    error=(
                        f"dead-letter: lease expired {n} times "
                        f"(worker failures), giving up"
                    ),
                ),
                dead=True,
            )
            return
        self._schedule(lease.key, lease.attempt, self._backoff_s(n))

    # ----------------------------------------------------- message logic

    def _grant_message(self) -> Dict[str, Any]:
        """Answer one ``lease_request``: grant, no_task or drain."""
        if self._draining or self.complete:
            reason = "complete" if self.complete else "draining"
            return {"type": "drain", "reason": reason}
        if not self._pending:
            # Next availability: a delayed retry or an expiring lease.
            now = time.monotonic()
            horizons = [t for t, _, _ in self._delayed]
            horizons += [lease.expires_at for lease in self._leases.values()]
            wait = min(horizons) - now if horizons else 1.0
            return {
                "type": "no_task",
                "retry_after_s": min(max(wait, 0.1), 2.0),
            }
        key, attempt = self._pending.popleft()
        lease = _Lease(
            lease_id=f"L{next(self._lease_seq):06d}",
            key=key,
            attempt=attempt,
            task_seed=attempt_seed(key, attempt),
            worker="?",
            expires_at=time.monotonic() + self.config.lease_timeout_s,
        )
        self._leases[lease.lease_id] = lease
        return {
            "type": "lease_grant",
            "lease_id": lease.lease_id,
            "key_id": key.key_id,
            "key": key.to_json(),
            "attempt": attempt,
            "task_seed": lease.task_seed,
            "deadline_s": self.config.task_timeout_s,
        }

    def _heartbeat_message(self, lease_id: str) -> Dict[str, Any]:
        lease = self._leases.get(lease_id)
        if lease is None:
            return {"type": "lease_lost", "lease_id": lease_id}
        lease.expires_at = time.monotonic() + self.config.lease_timeout_s
        return {
            "type": "heartbeat_ok",
            "lease_id": lease_id,
            "deadline_s": self.config.lease_timeout_s,
        }

    def _result_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """At-most-once commit of one attempt result."""
        lease_id = str(message["lease_id"])
        key_id = str(message["key_id"])
        attempt = int(message["attempt"])
        payload = message["payload"]
        lease = self._leases.pop(lease_id, None)
        if lease is not None and (
            lease.key.key_id != key_id or lease.attempt != attempt
        ):
            # A worker answering a lease with a different task is not a
            # crash mode, it is a broken client.
            self._leases[lease_id] = lease
            raise ProtocolError(
                f"result for lease {lease_id} names task {key_id}/{attempt}, "
                f"lease holds {lease.key.key_id}/{lease.attempt}"
            )
        key = self._keys.get(key_id)
        if key is None:
            raise ProtocolError(f"result names unknown task {key_id!r}")
        if attempt < 0 or attempt > self.config.retries:
            raise ProtocolError(
                f"result attempt {attempt} outside 0..{self.config.retries}"
            )
        duplicate = (
            (key_id, attempt) in self._processed or key_id in self._final
        )
        if not duplicate:
            # First result for this (task, attempt) wins — whether it
            # came from the live lease holder or from a zombie whose
            # lease expired: determinism makes the bytes identical.
            self._processed.add((key_id, attempt))
            task_seed = attempt_seed(key, attempt)
            status = payload.get("status")
            if status == "ok":
                result = payload.get("result")
                self._finalize(
                    TaskRecord(
                        key=key,
                        attempt=attempt,
                        task_seed=task_seed,
                        status="ok",
                        result=dict(result)
                        if isinstance(result, dict)
                        else {},
                    )
                )
            elif status == "error":
                if attempt < self.config.retries:
                    self._schedule(
                        key,
                        attempt + 1,
                        self._backoff_s(attempt + 1),
                    )
                else:
                    self._finalize(
                        TaskRecord(
                            key=key,
                            attempt=attempt,
                            task_seed=task_seed,
                            status="error",
                            error=str(
                                payload.get("error", "unknown error")
                            ),
                        )
                    )
            else:
                self._processed.discard((key_id, attempt))
                raise ProtocolError(
                    f"result payload status must be 'ok' or 'error', "
                    f"got {status!r}"
                )
        return {
            "type": "result_ok",
            "lease_id": lease_id,
            "committed": not duplicate,
        }

    # ------------------------------------------------------- connections

    def _quarantine(self, host: str) -> None:
        self._quarantined[host] = (
            time.monotonic() + self.config.quarantine_s
        )

    def _is_quarantined(self, host: str) -> bool:
        until = self._quarantined.get(host)
        if until is None:
            return False
        if time.monotonic() >= until:
            del self._quarantined[host]
            return False
        return True

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        host = str(peername[0]) if peername else "?"
        is_worker = False
        try:
            if self._is_quarantined(host):
                return
            hello = await asyncio.wait_for(read_message(reader), timeout=10.0)
            if hello is None:
                return
            if hello["type"] != "hello":
                raise ProtocolError(
                    f"first message must be hello, got {hello['type']!r}"
                )
            if hello["protocol"] != PROTOCOL_VERSION:
                await write_message(
                    writer,
                    {
                        "type": "error",
                        "reason": (
                            f"protocol {hello['protocol']} unsupported "
                            f"(this coordinator speaks {PROTOCOL_VERSION})"
                        ),
                    },
                )
                return
            role = hello["role"]
            if role not in ("worker", "watch"):
                raise ProtocolError(f"unknown role {role!r}")
            await write_message(
                writer,
                {
                    "type": "hello_ok",
                    "protocol": PROTOCOL_VERSION,
                    "campaign": self.spec.name,
                    "n_tasks": self.n_total,
                    "lease_timeout_s": self.config.lease_timeout_s,
                    "heartbeat_interval_s": self.config.heartbeat_interval_s,
                },
            )
            if role == "worker":
                is_worker = True
                self._n_workers += 1
            worker_name = str(hello["name"])
            while True:
                message = await read_message(reader)
                if message is None:
                    return
                # Results must be durable (fsync'd) *before* the ack is
                # sent, or a coordinator crash loses acked work; the
                # stall is one small append per result.
                # reprolint: disable=REP201
                reply = self._dispatch(role, worker_name, message)
                await write_message(writer, reply)
        except ProtocolError as exc:
            self._quarantine(host)
            try:
                await write_message(
                    writer, {"type": "error", "reason": str(exc)}
                )
            except (ConnectionError, OSError):
                pass
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # peer vanished; its leases expire on their own
        finally:
            if is_worker:
                self._n_workers -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(
        self, role: str, worker: str, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        message_type = message["type"]
        if message_type == "status_request":
            return self.status_message()
        if role != "worker":
            raise ProtocolError(
                f"role {role!r} may only send status_request, "
                f"got {message_type!r}"
            )
        if message_type == "lease_request":
            grant = self._grant_message()
            if grant["type"] == "lease_grant":
                self._leases[str(grant["lease_id"])].worker = worker
            return grant
        if message_type == "heartbeat":
            return self._heartbeat_message(str(message["lease_id"]))
        if message_type == "result":
            return self._result_message(message)
        raise ProtocolError(
            f"unexpected message type {message_type!r} from worker"
        )

    # ------------------------------------------------------------- serve

    async def _tick_loop(self) -> None:
        tick = min(self.config.lease_timeout_s / 4.0, 0.25)
        while True:
            await asyncio.sleep(tick)
            now = time.monotonic()
            if self._delayed:
                due = [e for e in self._delayed if e[0] <= now]
                if due:
                    self._delayed = [
                        e for e in self._delayed if e[0] > now
                    ]
                    for _, key, attempt in due:
                        self._pending.append((key, attempt))
            for lease in list(self._leases.values()):
                if now >= lease.expires_at:
                    # Expiry appends a small durable record; accepting
                    # the fsync stall keeps lease state crash-safe.
                    # reprolint: disable=REP201
                    self._expire_lease(lease)
            if (
                self._drain_deadline is not None
                and now >= self._drain_deadline
            ):
                self._done.set()
            if self._draining and not self._leases:
                self._done.set()

    def _write_service_file(self) -> None:
        """Publish host/port/pid for `--connect DIR` discovery."""
        document = {
            "host": self.config.host,
            "port": self.bound_port,
            "pid": os.getpid(),
        }
        path = Path(self.store.directory) / SERVICE_NAME
        tmp = path.with_name(SERVICE_NAME + ".tmp")
        tmp.write_text(json.dumps(document, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)

    async def serve(self, install_signal_handlers: bool = False) -> RunSummary:
        """Run the coordinator until completion, drain, or second signal."""
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.begin_drain)
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self._write_service_file()
        ticker = asyncio.create_task(self._tick_loop())
        try:
            if self.complete:
                self._done.set()
            await self._done.wait()
            # Linger so connected workers get `drain` instead of a
            # connection reset, then stop accepting.
            if self.config.linger_s > 0 and not self._draining:
                self._draining = True
                await asyncio.sleep(self.config.linger_s)
        finally:
            ticker.cancel()
            server.close()
            await server.wait_closed()
            if install_signal_handlers:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)
        if self.complete:
            # Runs after the server has closed — no peers are waiting
            # on the loop, so the compaction fsyncs are harmless here.
            # reprolint: disable=REP201
            self.store.compact()
        return self.summary()


def serve_campaign(
    spec: CampaignSpec,
    store: CampaignStore,
    config: Optional[ServiceConfig] = None,
    install_signal_handlers: bool = True,
) -> RunSummary:
    """Synchronous entry point: run one coordinator to completion/drain.

    This is what ``repro campaign serve`` calls; it exists so the CLI
    never needs to import :mod:`asyncio` (reprolint REP007 confines
    async/socket code to ``repro.campaign.service``).
    """
    coordinator = Coordinator(spec, store, config)
    return asyncio.run(
        coordinator.serve(install_signal_handlers=install_signal_handlers)
    )
