"""Campaign service worker: lease, execute, heartbeat, survive.

A worker is a thin, restartable shell around the *exact* attempt path
the local runner uses — :func:`repro.campaign.runner._execute_attempt`
with the coordinator-supplied ``task_seed`` — so a distributed campaign
is byte-identical to a serial one.  Everything else here is plumbing
for staying alive:

* **Jittered reconnect.**  Connection refused/reset (coordinator not
  up yet, restarted, network blip) retries with exponential backoff
  plus deterministic per-worker jitter (derived from the worker name,
  not wall-clock randomness) until ``give_up_s`` elapses without a
  successful exchange.  With ``--connect DIR`` the worker re-reads the
  campaign directory's ``service.json`` on every attempt, so a
  coordinator restarted on a new ephemeral port is found automatically.
* **Attempts run in a forked child process.**  The asyncio loop stays
  responsive to heartbeat the lease mid-task, and the child can be
  *killed* — a worker self-terminates an attempt that exceeds the
  granted ``deadline_s`` budget and reports a task error (the
  coordinator then retries it with the next derived seed, exactly like
  a local timeout).  Platforms without ``fork`` fall back to inline
  execution: still correct, but without mid-task heartbeats or the
  kill capability.
* **Lease loss is obeyed.**  A ``lease_lost`` heartbeat reply (our
  lease expired while we were slow) kills the child immediately and
  drops the result — the coordinator has already re-leased the attempt
  and will discard zombies anyway, so the worker doesn't waste cycles
  finishing one.

Exit codes of :func:`run_worker`: ``0`` — drained (campaign complete or
coordinator draining); ``3`` — gave up reaching a coordinator.

Wall-clock here is host-side orchestration (backoff, heartbeats, the
task budget), never simulated time — hence the REP005 waiver.
"""
# reprolint: disable-file=REP005 reconnect/heartbeat/budget are host time

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.campaign.runner import _MP_CONTEXT, _execute_attempt
from repro.campaign.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)
from repro.campaign.service.coordinator import SERVICE_NAME
from repro.campaign.spec import SpecError, TaskKey
from repro.util.rng import derive_seed

PathLike = Union[str, Path]

#: Child-process poll / heartbeat-check cadence while a task runs.
_POLL_S = 0.02

EXIT_DRAINED = 0
EXIT_UNREACHABLE = 3


class WorkerError(RuntimeError):
    """The worker cannot proceed (bad discovery file, protocol refusal)."""


@dataclass(frozen=True)
class WorkerConfig:
    """Connection and resilience knobs of one worker."""

    name: str = "worker"
    reconnect_base_s: float = 0.2  #: first reconnect delay; doubles
    reconnect_max_s: float = 5.0
    give_up_s: float = 60.0  #: unreachable this long → exit 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("worker name must be non-empty")
        if self.reconnect_base_s <= 0 or self.reconnect_max_s <= 0:
            raise ValueError("reconnect delays must be positive")
        if self.give_up_s <= 0:
            raise ValueError("give_up_s must be positive")


def read_service_file(directory: PathLike) -> Tuple[str, int]:
    """Resolve ``(host, port)`` from a campaign directory's service file."""
    path = Path(directory) / SERVICE_NAME
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        return str(document["host"]), int(document["port"])
    except FileNotFoundError:
        raise WorkerError(
            f"{path} does not exist (is a coordinator serving "
            f"this campaign directory?)"
        ) from None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise WorkerError(f"{path} is malformed: {exc}") from exc


# ------------------------------------------------------------ attempts


def _attempt_child(
    conn: Connection, kind: str, params: Dict[str, object], seed: int
) -> None:
    """Forked-child entry: run the attempt, pipe the payload back."""
    payload = _execute_attempt(kind, params, seed)
    conn.send(payload)
    conn.close()


class _RunningAttempt:
    """One leased attempt executing in a killable forked child."""

    def __init__(self, kind: str, params: Dict[str, object], seed: int) -> None:
        assert _MP_CONTEXT is not None
        parent_conn, child_conn = _MP_CONTEXT.Pipe(duplex=False)
        self._conn: Connection = parent_conn
        # The forked child execs straight into _attempt_child and never
        # touches the parent's event loop, sockets, or locks; fork is
        # required so a poisoned attempt can be SIGKILLed.
        # reprolint: disable=REP203
        self._process = _MP_CONTEXT.Process(
            target=_attempt_child,
            args=(child_conn, kind, params, seed),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def poll(self) -> Optional[Dict[str, Any]]:
        """Non-blocking: the payload if finished, else ``None``."""
        if self._conn.poll():
            try:
                payload = self._conn.recv()
            except EOFError:
                return self._died()
            self._process.join()
            self._conn.close()
            return payload if isinstance(payload, dict) else self._died()
        if not self._process.is_alive():
            # Exited without sending (segfault, os._exit) — but check
            # the pipe once more: it may have sent, then exited.
            if self._conn.poll():
                return self.poll()
            return self._died()
        return None

    def _died(self) -> Dict[str, Any]:
        self._process.join()
        self._conn.close()
        return {
            "status": "error",
            "error": (
                f"task process died without a result "
                f"(exit code {self._process.exitcode})"
            ),
        }

    def kill(self, reason: str) -> Dict[str, Any]:
        """Terminate the child; the attempt becomes a task error."""
        if self._process.is_alive():
            self._process.kill()
        self._process.join()
        self._conn.close()
        return {"status": "error", "error": reason}


async def _run_leased_attempt(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    grant: Dict[str, Any],
    heartbeat_interval_s: float,
) -> Optional[Dict[str, Any]]:
    """Execute one granted lease; heartbeat while it runs.

    Returns the attempt payload to submit, or ``None`` when the lease
    was lost mid-task (nothing to submit).
    """
    key = TaskKey.from_json(grant["key"])
    if key.key_id != grant["key_id"]:
        raise ProtocolError(
            f"lease {grant['lease_id']}: key hashes to {key.key_id}, "
            f"grant says {grant['key_id']}"
        )
    kind = key.kind
    params = key.as_dict()
    seed = int(grant["task_seed"])
    deadline_s = float(grant["deadline_s"])
    if _MP_CONTEXT is None:  # pragma: no cover - non-POSIX platforms
        return await asyncio.to_thread(_execute_attempt, kind, params, seed)
    attempt = _RunningAttempt(kind, params, seed)
    started = time.monotonic()
    next_heartbeat = started + heartbeat_interval_s
    while True:
        payload = attempt.poll()
        if payload is not None:
            return payload
        now = time.monotonic()
        if deadline_s > 0 and now - started >= deadline_s:
            return attempt.kill(
                f"lease deadline exceeded "
                f"(self-terminated after {deadline_s:g}s)"
            )
        if now >= next_heartbeat:
            next_heartbeat = now + heartbeat_interval_s
            await write_message(
                writer,
                {"type": "heartbeat", "lease_id": grant["lease_id"]},
            )
            reply = await read_message(reader)
            if reply is None:
                raise ConnectionResetError("coordinator closed mid-lease")
            if reply["type"] == "lease_lost":
                attempt.kill("lease lost")
                return None
            if reply["type"] != "heartbeat_ok":
                raise ProtocolError(
                    f"expected heartbeat_ok, got {reply['type']!r}"
                )
        await asyncio.sleep(_POLL_S)


# ------------------------------------------------------------- session


async def _session(
    host: str, port: int, config: WorkerConfig
) -> Tuple[bool, bool]:
    """One connection's lifetime.

    Returns ``(made_progress, drained)`` — whether any exchange
    succeeded (resets the give-up clock) and whether the coordinator
    told us to stop for good.
    """
    reader, writer = await asyncio.open_connection(host, port)
    made_progress = False
    try:
        await write_message(
            writer,
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "role": "worker",
                "name": config.name,
            },
        )
        hello_ok = await read_message(reader)
        if hello_ok is None:
            return made_progress, False
        if hello_ok["type"] == "error":
            raise WorkerError(
                f"coordinator refused us: {hello_ok['reason']}"
            )
        if hello_ok["type"] != "hello_ok":
            raise ProtocolError(
                f"expected hello_ok, got {hello_ok['type']!r}"
            )
        heartbeat_interval_s = float(hello_ok["heartbeat_interval_s"])
        made_progress = True
        while True:
            await write_message(writer, {"type": "lease_request"})
            message = await read_message(reader)
            if message is None:
                return made_progress, False
            if message["type"] == "drain":
                return True, True
            if message["type"] == "no_task":
                await asyncio.sleep(float(message["retry_after_s"]))
                continue
            if message["type"] != "lease_grant":
                raise ProtocolError(
                    f"expected lease_grant/no_task/drain, "
                    f"got {message['type']!r}"
                )
            payload = await _run_leased_attempt(
                reader, writer, message, heartbeat_interval_s
            )
            if payload is None:
                continue  # lease lost; ask for fresh work
            await write_message(
                writer,
                {
                    "type": "result",
                    "lease_id": str(message["lease_id"]),
                    "key_id": str(message["key_id"]),
                    "attempt": int(message["attempt"]),
                    "payload": payload,
                },
            )
            ack = await read_message(reader)
            if ack is None:
                return made_progress, False
            if ack["type"] != "result_ok":
                raise ProtocolError(
                    f"expected result_ok, got {ack['type']!r}"
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_worker(
    host: Optional[str] = None,
    port: Optional[int] = None,
    connect_dir: Optional[PathLike] = None,
    config: Optional[WorkerConfig] = None,
) -> int:
    """Worker main loop: (re)connect and work until drained or give-up.

    Give either ``host``/``port`` or ``connect_dir`` (a campaign
    directory whose coordinator publishes ``service.json``); the
    directory form re-resolves on every reconnect, following a
    restarted coordinator to its new port.
    """
    config = config or WorkerConfig()
    if connect_dir is None and (host is None or port is None):
        raise WorkerError("need host+port or a campaign directory")
    failures = 0
    last_progress = time.monotonic()
    # Deterministic per-worker jitter: spreads a fleet's reconnect
    # stampede without wall-clock randomness.
    jitter = (derive_seed(0, config.name) % 1000) / 1000.0
    while True:
        target: Optional[Tuple[str, int]] = None
        try:
            if connect_dir is not None:
                target = read_service_file(connect_dir)
            else:
                assert host is not None and port is not None
                target = (host, port)
            made_progress, drained = await _session(
                target[0], target[1], config
            )
            if drained:
                return EXIT_DRAINED
            if made_progress:
                failures = 0
                last_progress = time.monotonic()
        except (
            ConnectionError,
            OSError,
            asyncio.IncompleteReadError,
            ProtocolError,
            SpecError,
            WorkerError,
        ):
            pass
        failures += 1
        if time.monotonic() - last_progress > config.give_up_s:
            return EXIT_UNREACHABLE
        delay = min(
            config.reconnect_base_s * (2.0 ** min(failures - 1, 8)),
            config.reconnect_max_s,
        )
        await asyncio.sleep(delay * (0.5 + jitter))


def worker_main(
    host: Optional[str] = None,
    port: Optional[int] = None,
    connect_dir: Optional[PathLike] = None,
    config: Optional[WorkerConfig] = None,
) -> int:
    """Synchronous entry point for ``repro campaign worker``."""
    return asyncio.run(
        run_worker(host=host, port=port, connect_dir=connect_dir,
                   config=config)
    )
