"""Wire protocol of the distributed campaign service.

One message is one *length-delimited JSON frame*::

    <decimal byte length of payload>\\n
    <payload: one JSON object, UTF-8>\\n

The explicit length (rather than bare JSON-lines) lets the reader
allocate exactly once, reject oversized frames *before* parsing, and
detect truncation deterministically; the trailing newline keeps frames
greppable on the wire and in captures.

Every message is a JSON object with a ``type`` field; the remaining
fields are validated strictly against the per-type schema in
:data:`SCHEMAS` — unknown types, missing fields, surplus fields and
wrongly-typed values all raise :class:`ProtocolError`.  The coordinator
treats any :class:`ProtocolError` from a peer as grounds for
*quarantine* (drop the connection, refuse the host for a cooldown), so
a malformed or hostile client cannot wedge a campaign.

``protocol`` version is carried in the ``hello`` exchange; both sides
refuse mismatched peers (:data:`PROTOCOL_VERSION`).

Message catalogue (worker → coordinator unless noted):

====================  ==============================================
``hello``             introduce peer: protocol version, role, name
``hello_ok``          (coord) accept: campaign identity + timing knobs
``lease_request``     ask for one task lease
``lease_grant``       (coord) one attempt: task key, seed, deadline
``no_task``           (coord) nothing leasable now; retry later
``drain``             (coord) stop asking: campaign complete/draining
``heartbeat``         prove liveness of one held lease
``heartbeat_ok``      (coord) lease still held; deadline refreshed
``lease_lost``        (coord) lease expired/unknown; abandon the task
``result``            deliver one finished attempt payload
``result_ok``         (coord) commit acknowledgement (or duplicate)
``status_request``    (watch) ask for campaign progress counters
``status``            (coord) progress counters snapshot
``error``             (coord) protocol-level refusal, sent pre-close
====================  ==============================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional, Tuple

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload; a result record is a few KiB,
#: so anything near this is a corrupt or hostile frame.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Longest accepted decimal length header (fits MAX_FRAME_BYTES).
_MAX_HEADER_BYTES = 16


class ProtocolError(ValueError):
    """A frame or message violates the wire protocol."""


# Field specs: name -> (kind, required).  Kinds: "int" (bool excluded),
# "num" (int or float, bool excluded), "str", "bool", "dict".
_FieldSpec = Tuple[str, bool]

SCHEMAS: Dict[str, Dict[str, _FieldSpec]] = {
    "hello": {
        "protocol": ("int", True),
        "role": ("str", True),
        "name": ("str", True),
    },
    "hello_ok": {
        "protocol": ("int", True),
        "campaign": ("str", True),
        "n_tasks": ("int", True),
        "lease_timeout_s": ("num", True),
        "heartbeat_interval_s": ("num", True),
    },
    "lease_request": {},
    "lease_grant": {
        "lease_id": ("str", True),
        "key_id": ("str", True),
        "key": ("dict", True),
        "attempt": ("int", True),
        "task_seed": ("int", True),
        # total execution budget in seconds; 0 = unlimited
        "deadline_s": ("num", True),
    },
    "no_task": {"retry_after_s": ("num", True)},
    "drain": {"reason": ("str", True)},
    "heartbeat": {"lease_id": ("str", True)},
    "heartbeat_ok": {"lease_id": ("str", True), "deadline_s": ("num", True)},
    "lease_lost": {"lease_id": ("str", True)},
    "result": {
        "lease_id": ("str", True),
        "key_id": ("str", True),
        "attempt": ("int", True),
        "payload": ("dict", True),
    },
    "result_ok": {"lease_id": ("str", True), "committed": ("bool", True)},
    "status_request": {},
    "status": {
        "campaign": ("str", True),
        "n_tasks": ("int", True),
        "n_done": ("int", True),
        "n_ok": ("int", True),
        "n_failed": ("int", True),
        "n_dead": ("int", True),
        "n_leased": ("int", True),
        "n_pending": ("int", True),
        "n_workers": ("int", True),
        "complete": ("bool", True),
        "draining": ("bool", True),
    },
    "error": {"reason": ("str", True)},
}

ROLES = ("worker", "watch")


def _check_kind(message_type: str, name: str, value: object, kind: str) -> None:
    ok: bool
    if kind == "int":
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif kind == "num":
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif kind == "str":
        ok = isinstance(value, str)
    elif kind == "bool":
        ok = isinstance(value, bool)
    elif kind == "dict":
        ok = isinstance(value, dict)
    else:  # pragma: no cover - schema table typo
        raise AssertionError(f"unknown field kind {kind!r}")
    if not ok:
        raise ProtocolError(
            f"{message_type}.{name} must be {kind}, "
            f"got {type(value).__name__}"
        )


def validate(message: Mapping[str, Any]) -> Dict[str, Any]:
    """Check ``message`` against its type schema; return a plain dict."""
    if not isinstance(message, Mapping):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    message_type = message.get("type")
    if not isinstance(message_type, str):
        raise ProtocolError("message lacks a string 'type' field")
    schema = SCHEMAS.get(message_type)
    if schema is None:
        raise ProtocolError(f"unknown message type {message_type!r}")
    fields = {k: v for k, v in message.items() if k != "type"}
    unknown = set(fields) - set(schema)
    if unknown:
        raise ProtocolError(
            f"{message_type}: unknown field(s) {sorted(unknown)}"
        )
    for name, (kind, required) in schema.items():
        if name not in fields:
            if required:
                raise ProtocolError(f"{message_type}: missing field {name!r}")
            continue
        _check_kind(message_type, name, fields[name], kind)
    return {"type": message_type, **fields}


def encode(message: Mapping[str, Any]) -> bytes:
    """Validate and frame one message for the wire."""
    document = validate(message)
    payload = json.dumps(document, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return b"%d\n%s\n" % (len(payload), payload)


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse and validate one frame payload (length/newlines stripped)."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"payload is not valid JSON: {exc}") from exc
    return validate(document)


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean EOF at a frame boundary.

    Anything else — EOF mid-frame, an over-long or non-decimal length
    header, an oversized frame, a missing trailing newline, invalid
    JSON, a schema violation — raises :class:`ProtocolError`.
    """
    try:
        header = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("EOF inside frame header") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("frame header has no newline") from exc
    if len(header) > _MAX_HEADER_BYTES:
        raise ProtocolError(f"frame header too long ({len(header)} bytes)")
    text = header[:-1].decode("ascii", errors="replace").strip()
    if not text.isdigit():
        raise ProtocolError(f"frame header {text!r} is not a decimal length")
    length = int(text)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length + 1)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("EOF inside frame payload") from exc
    if body[-1:] != b"\n":
        raise ProtocolError("frame payload not newline-terminated")
    return decode_payload(body[:-1])


async def write_message(
    writer: asyncio.StreamWriter, message: Mapping[str, Any]
) -> None:
    """Frame, send and flush one message."""
    writer.write(encode(message))
    await writer.drain()
