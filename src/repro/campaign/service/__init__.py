"""repro.campaign.service — the distributed campaign runner.

One coordinator (:mod:`~repro.campaign.service.coordinator`) owns a
campaign directory and leases task attempts over a length-delimited
JSON TCP protocol (:mod:`~repro.campaign.service.protocol`) to any
number of workers (:mod:`~repro.campaign.service.worker`), with
heartbeat-backed lease expiry, at-most-once result commit, bounded
backoff-retried requeues, dead-lettering and graceful drain — the
campaign's bytes are identical to a serial ``run_tasks`` no matter how
workers crash.  :mod:`~repro.campaign.service.watch` renders live
progress.

This package is the one audited home of async/socket code in the
library (reprolint REP007 bans ``asyncio``/``socket`` everywhere
else), just as ``repro.campaign`` is for process pools.

CLI: ``python -m repro campaign serve|worker|watch``; the full
protocol and failure-mode semantics are documented in
``docs/campaigns.md``.
"""

from repro.campaign.service.coordinator import (
    Coordinator,
    ServiceConfig,
    serve_campaign,
)
from repro.campaign.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.campaign.service.watch import run_watch, watch_main
from repro.campaign.service.worker import (
    WorkerConfig,
    WorkerError,
    read_service_file,
    run_worker,
    worker_main,
)

__all__ = [
    "Coordinator",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceConfig",
    "WorkerConfig",
    "WorkerError",
    "read_service_file",
    "run_watch",
    "run_worker",
    "serve_campaign",
    "watch_main",
    "worker_main",
]
