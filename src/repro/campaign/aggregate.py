"""Turn raw campaign records into grouped, seed-averaged summaries.

Grouping key = ``(kind, params)`` — the seeds of a point are its
replicates.  Every numeric field of the task results (bools count as
0/1, one level of dict nesting is flattened with a ``.`` separator)
gets mean/min/max plus the requested percentiles.

Determinism contract: records are ordered by :class:`TaskKey` (never by
completion time) before any statistic is computed, and the JSON/CSV
renderers sort keys — so a serial run and a parallel run of the same
spec export **byte-identical** reports, and ``campaign report`` is
byte-stable across resumes.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.campaign.spec import Params
from repro.campaign.store import TaskRecord

DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


def successful_records(records: Sequence[TaskRecord]) -> List[TaskRecord]:
    """Deduplicate to one ``ok`` record per task, in task order.

    A resumed campaign can hold several records for one ``key_id``
    (failed attempts before the one that stuck); the *first* ``ok``
    record wins — there is never more than one, because completed tasks
    are skipped on resume.
    """
    chosen: Dict[str, TaskRecord] = {}
    for record in records:
        if record.ok and record.key.key_id not in chosen:
            chosen[record.key.key_id] = record
    return sorted(chosen.values(), key=lambda rec: rec.key)


def flatten_metrics(result: Mapping[str, object]) -> Dict[str, float]:
    """Extract the numeric fields of one task result, dots for nesting."""
    metrics: Dict[str, float] = {}
    for name, value in result.items():
        if isinstance(value, bool):
            metrics[name] = float(value)
        elif isinstance(value, (int, float)):
            metrics[name] = float(value)
        elif isinstance(value, dict):
            for sub_name, sub_value in value.items():
                if isinstance(sub_value, bool):
                    metrics[f"{name}.{sub_name}"] = float(sub_value)
                elif isinstance(sub_value, (int, float)):
                    metrics[f"{name}.{sub_name}"] = float(sub_value)
    return metrics


def aggregate(
    records: Sequence[TaskRecord],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> List[Dict[str, object]]:
    """Group ok-records by (kind, params) and summarise across seeds.

    Returns one row per group: the grid/point parameters, ``n_seeds``,
    and ``<metric>_mean`` / ``_min`` / ``_max`` / ``_pNN`` columns,
    sorted by the grouping key.
    """
    ordered = successful_records(records)
    groups: Dict[Tuple[str, Params], List[Dict[str, float]]] = {}
    for record in ordered:
        group_key = (record.key.kind, record.key.params)
        groups.setdefault(group_key, []).append(
            flatten_metrics(record.result or {})
        )
    rows: List[Dict[str, object]] = []
    for (kind, params), metric_dicts in sorted(groups.items()):
        row: Dict[str, object] = {"kind": kind}
        for name, value in params:
            row[name] = value
        row["n_seeds"] = len(metric_dicts)
        # Tasks often echo their parameters (and seed) back in the result;
        # summarising those across seeds is meaningless, so drop them.
        echoed = {name for name, _ in params} | {"seed"}
        metric_names = sorted(
            {n for m in metric_dicts for n in m} - echoed
        )
        for name in metric_names:
            values = np.array(
                [m[name] for m in metric_dicts if name in m], dtype=float
            )
            row[f"{name}_mean"] = float(values.mean())
            row[f"{name}_min"] = float(values.min())
            row[f"{name}_max"] = float(values.max())
            for pct in percentiles:
                row[f"{name}_p{pct:g}"] = float(np.percentile(values, pct))
        rows.append(row)
    return rows


def to_json(rows: Sequence[Mapping[str, object]]) -> str:
    """Canonical JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(list(rows), indent=2, sort_keys=True) + "\n"


def to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """CSV rendering with a deterministic, sorted column union."""
    if not rows:
        return ""
    leading = ["kind", "n_seeds"]
    other = sorted({name for row in rows for name in row} - set(leading))
    fieldnames = leading + other
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=fieldnames, lineterminator="\n", restval=""
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()
