"""Parallel fan-out engine: run task keys across worker processes.

Execution contract (the one the determinism tests pin down):

* **Seeding** — attempt 0 of a task runs with the task's own
  ``TaskKey.seed``; retry attempt ``k`` runs with
  ``derive_seed(seed, key_id, k)``.  Seeds depend only on the task and
  the attempt number, never on scheduling, so serial (``workers=1``)
  and parallel (``workers=N``) runs produce identical per-task results.
* **Isolation** — task exceptions are caught inside the worker and come
  back as ``error`` records.  A hard worker crash (segfault,
  ``os._exit``) breaks the :class:`~concurrent.futures.ProcessPoolExecutor`;
  the runner rebuilds the pool, charges every in-flight task one retry,
  and the campaign continues.  One bad point fails that point, not the
  campaign.
* **Timeouts** — a task overrunning ``timeout_s`` is charged a failed
  attempt immediately and its eventual result is discarded.  The clock
  starts when the task is observed *executing* in a worker, not at
  submit, so time spent queued behind saturated workers never counts
  against the limit.  The worker process is *not* killed mid-task
  (POSIX offers no safe way to do that to a fork-sharing child); the
  pool drains it at shutdown.
* **Bounded in-flight** — at most ``max_inflight`` (default
  ``2 * workers``) tasks are submitted at once, so million-point grids
  don't materialise a million pickled futures.

``workers=1`` runs everything inline in the calling process — no pool,
no pickling — which is both the determinism baseline and the cheap path
for small sweeps (``attack_matrix``, ``sweep_fault_rates`` defaults).

Worker pools are created with the ``fork`` start method where the
platform offers it, so task kinds registered at runtime
(:func:`repro.campaign.tasks.register_task_kind`) are visible inside
workers; under spawn/forkserver only kinds registered at import time of
:mod:`repro.campaign.tasks` would survive the round-trip.

Wall-clock use here times *host* execution (timeouts, throughput); the
simulator's clock is untouched, hence the file-wide REP005 waiver.
"""
# reprolint: disable-file=REP005 orchestration timeouts/throughput are host time

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec, TaskKey
from repro.campaign.store import CampaignStore, TaskRecord
from repro.campaign.tasks import get_task
from repro.util.rng import derive_seed

# Task kinds registered at runtime (register_task_kind) live in this
# process's registry dict; ``fork`` is the only start method that
# carries those registrations into workers, so pin it where available
# rather than inheriting a spawn/forkserver platform default.
try:
    _MP_CONTEXT: Optional[Any] = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-POSIX platforms
    _MP_CONTEXT = None


def _make_pool(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, mp_context=_MP_CONTEXT)


@dataclass(frozen=True)
class RunnerConfig:
    """Knobs of one campaign run."""

    workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 1
    max_inflight: Optional[int] = None
    max_tasks: Optional[int] = None
    progress: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_tasks is not None and self.max_tasks < 0:
            raise ValueError("max_tasks must be >= 0")


@dataclass(frozen=True)
class RunSummary:
    """Outcome of one :func:`run_tasks` / :func:`run_campaign` call."""

    n_tasks: int  #: tasks this run was asked to execute
    n_ok: int
    n_failed: int  #: tasks that exhausted their retries
    n_skipped: int = 0  #: tasks already completed in the store (resume)
    stopped_early: bool = False  #: True when ``max_tasks`` cut the run short

    @property
    def complete(self) -> bool:
        return not self.stopped_early and self.n_failed == 0


def attempt_seed(key: TaskKey, attempt: int) -> int:
    """Seed for one attempt: the task's own seed, re-derived on retries."""
    if attempt == 0:
        return key.seed
    return derive_seed(key.seed, key.key_id, attempt)


def _execute_attempt(
    kind: str, params: Dict[str, object], seed: int
) -> Dict[str, object]:
    """Worker-process entry point: run one attempt, never raise.

    Module-level (picklable) and exception-free by construction: any
    task failure is folded into the returned payload so a worker never
    dies from an ordinary Python error.
    """
    try:
        fn = get_task(kind)
        result = fn(params, seed)  # type: ignore[arg-type]
        return {"status": "ok", "result": result}
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}


Sink = Callable[[TaskRecord], None]


def run_tasks(
    tasks: Sequence[TaskKey],
    config: RunnerConfig,
    sink: Sink,
    reporter: Optional[ProgressReporter] = None,
) -> RunSummary:
    """Execute ``tasks``, delivering exactly one final record per task.

    ``sink`` receives a :class:`TaskRecord` per task — the successful
    attempt, or the last failed one after retries ran out.  Record
    *content* is schedule-independent; only the order ``sink`` sees them
    in differs between serial and parallel runs.
    """
    if reporter is None:
        reporter = ProgressReporter(len(tasks), enabled=False)
    if config.workers == 1:
        summary = _run_serial(tasks, config, sink, reporter)
    else:
        summary = _run_parallel(tasks, config, sink, reporter)
    reporter.finish()
    return summary


def _run_serial(
    tasks: Sequence[TaskKey],
    config: RunnerConfig,
    sink: Sink,
    reporter: ProgressReporter,
) -> RunSummary:
    n_ok = n_failed = 0
    for key in tasks:
        record: Optional[TaskRecord] = None
        for attempt in range(config.retries + 1):
            seed = attempt_seed(key, attempt)
            payload = _execute_attempt(key.kind, key.as_dict(), seed)
            record = _payload_record(key, attempt, seed, payload)
            if record.ok:
                break
        assert record is not None
        if record.ok:
            n_ok += 1
        else:
            n_failed += 1
        sink(record)
        reporter.task_done(record.ok)
    return RunSummary(n_tasks=len(tasks), n_ok=n_ok, n_failed=n_failed)


# ------------------------------------------------------------- parallel


@dataclass
class _Inflight:
    """Bookkeeping for one submitted attempt.

    ``started`` is the monotonic time the attempt was first observed
    occupying a worker slot — ``None`` while it is still queued behind
    saturated workers, so queue wait never counts against ``timeout_s``.
    (``Future.running()`` is useless for this: it flips as soon as the
    executor buffers the item in its call queue, worker or no worker.)
    """

    key: TaskKey
    attempt: int
    seed: int
    started: Optional[float] = None


def _payload_record(
    key: TaskKey, attempt: int, seed: int, payload: Dict[str, object]
) -> TaskRecord:
    if payload.get("status") == "ok":
        result = payload.get("result")
        return TaskRecord(
            key=key, attempt=attempt, task_seed=seed,
            status="ok", result=dict(result) if isinstance(result, dict) else {},
        )
    return TaskRecord(
        key=key, attempt=attempt, task_seed=seed,
        status="error", error=str(payload.get("error", "unknown error")),
    )


def _run_parallel(
    tasks: Sequence[TaskKey],
    config: RunnerConfig,
    sink: Sink,
    reporter: ProgressReporter,
) -> RunSummary:
    max_inflight = config.max_inflight or 2 * config.workers
    pending: Deque[Tuple[TaskKey, int]] = deque((key, 0) for key in tasks)
    inflight: Dict["Future[Dict[str, object]]", _Inflight] = {}
    # Timed-out attempts whose future could not be cancelled: the
    # straggler still occupies a worker until it finishes, so it keeps
    # counting against the executing-slot budget below.
    abandoned: Set["Future[Dict[str, object]]"] = set()
    # key_ids that already produced their final record.  An abandoned
    # (timed-out) attempt whose straggler future completes later — or
    # any other duplicate settle of an already-finished task — must
    # neither touch the counters again nor hand the sink a second
    # record for the same key_id.
    final_ids: Set[str] = set()
    n_ok = n_failed = 0
    executor = _make_pool(config.workers)

    _POOL_BROKEN = {
        "status": "error",
        "error": "worker process crashed (pool broken)",
    }

    def submit(key: TaskKey, attempt: int) -> None:
        seed = attempt_seed(key, attempt)
        future = executor.submit(
            _execute_attempt, key.kind, key.as_dict(), seed
        )
        inflight[future] = _Inflight(key, attempt, seed)

    def settle(key: TaskKey, attempt: int, seed: int,
               payload: Dict[str, object]) -> None:
        """Record a finished attempt: retry on failure, else emit.

        Exactly one final record per ``key_id``: a late duplicate (an
        abandoned straggler's eventual result, a retry racing a
        poisoned pool) is dropped on the floor here, so neither
        :class:`RunSummary` nor the store ever double-counts a task.
        """
        nonlocal n_ok, n_failed
        if key.key_id in final_ids:
            return
        record = _payload_record(key, attempt, seed, payload)
        if not record.ok and attempt < config.retries:
            pending.append((key, attempt + 1))
            return
        final_ids.add(key.key_id)
        if record.ok:
            n_ok += 1
        else:
            n_failed += 1
        sink(record)
        reporter.task_done(record.ok)

    def poison_inflight_and_rebuild() -> None:
        """Every in-flight future is poisoned with the broken pool:
        charge each task one attempt and start a fresh pool."""
        nonlocal executor
        for entry in list(inflight.values()):
            settle(entry.key, entry.attempt, entry.seed, dict(_POOL_BROKEN))
        inflight.clear()
        abandoned.clear()  # stragglers died with their pool
        executor.shutdown(wait=False, cancel_futures=True)
        executor = _make_pool(config.workers)

    try:
        while pending or inflight:
            while pending and len(inflight) < max_inflight:
                key, attempt = pending.popleft()
                try:
                    submit(key, attempt)
                except BrokenProcessPool:
                    # A worker crash can flag the pool mid-submit,
                    # before any future.result() observes it.  The
                    # attempt being submitted never ran: requeue it
                    # uncharged and recover like any other break.
                    pending.appendleft((key, attempt))
                    poison_inflight_and_rebuild()
            done, _ = wait(
                list(inflight), timeout=0.05, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                entry = inflight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    payload = dict(_POOL_BROKEN)
                except Exception as exc:  # pickling errors and friends
                    payload = {
                        "status": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                settle(entry.key, entry.attempt, entry.seed, payload)
            if broken:
                poison_inflight_and_rebuild()
                continue
            if config.timeout_s is not None:
                now = time.monotonic()
                # Workers drain the call queue FIFO, so of the attempts
                # not yet finished, the oldest ones — up to the worker
                # count, minus stragglers still hogging a worker — are
                # the ones executing.  Start (only) their clocks, and
                # leave queued attempts untouched.
                abandoned.difference_update(
                    {f for f in abandoned if f.done()}
                )
                slots = config.workers - len(abandoned)
                for future, entry in list(inflight.items()):
                    if slots <= 0:
                        break  # everything younger is still queued
                    if future.done():
                        continue  # settles on the next wait() pass
                    slots -= 1
                    if entry.started is None:
                        entry.started = now
                        continue
                    if now - entry.started <= config.timeout_s:
                        continue
                    # Charge the attempt now; the straggler's eventual
                    # result is dropped with the abandoned future.
                    if not future.cancel():
                        abandoned.add(future)
                    inflight.pop(future)
                    settle(
                        entry.key, entry.attempt, entry.seed,
                        {
                            "status": "error",
                            "error": (
                                f"timeout after {config.timeout_s:g}s "
                                "(worker abandoned)"
                            ),
                        },
                    )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return RunSummary(n_tasks=len(tasks), n_ok=n_ok, n_failed=n_failed)


def run_collect(
    tasks: Sequence[TaskKey], config: RunnerConfig
) -> List[TaskRecord]:
    """Run ``tasks`` and return their final records **in task order**.

    The in-memory convenience for library callers
    (:func:`repro.experiments.attack_matrix`,
    :func:`repro.analysis.resilience.sweep_fault_rates`) that want the
    parallel fan-out without a campaign directory: no store, no resume —
    just records, re-ordered from completion order back to input order
    so results are schedule-independent.
    """
    by_id: Dict[str, TaskRecord] = {}

    def sink(record: TaskRecord) -> None:
        by_id[record.key.key_id] = record

    run_tasks(tasks, config, sink)
    return [by_id[key.key_id] for key in tasks]


# ------------------------------------------------------------- campaign


def run_campaign(
    spec: CampaignSpec,
    store: CampaignStore,
    config: RunnerConfig,
) -> RunSummary:
    """Expand ``spec``, skip tasks the store already completed, run the rest.

    This is the ``campaign run``/``campaign resume`` engine: records are
    checkpointed through :meth:`CampaignStore.append` as they finish, so
    a kill at any instant loses at most the in-flight tasks — never a
    finished one.
    """
    all_tasks = spec.expand()
    done = store.completed_ids()
    todo: List[TaskKey] = [t for t in all_tasks if t.key_id not in done]
    n_skipped = len(all_tasks) - len(todo)
    stopped_early = False
    if config.max_tasks is not None and len(todo) > config.max_tasks:
        todo = todo[: config.max_tasks]
        stopped_early = True
    reporter = ProgressReporter(len(todo), enabled=config.progress)
    summary = run_tasks(todo, config, store.append, reporter)
    return RunSummary(
        n_tasks=summary.n_tasks,
        n_ok=summary.n_ok,
        n_failed=summary.n_failed,
        n_skipped=n_skipped,
        stopped_early=stopped_early,
    )
