"""Live campaign progress: done/total, throughput and ETA on stderr.

Orchestration-side instrumentation only — wall-clock time here measures
the *host*, never the simulated device, so REP005 is suppressed
file-wide on purpose (simulated time stays the exclusive business of
``elapsed_ns`` inside the simulator).
"""
# reprolint: disable-file=REP005 host-side throughput/ETA, not simulated time

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class ProgressReporter:
    """Rate-limited one-line progress reports (``tasks/s``, ETA).

    On a TTY the line redraws in place via ``\\r``; on a pipe (CI logs)
    it prints at most one full line per ``min_interval_s`` so logs stay
    readable.  ``enabled=False`` turns the reporter into a no-op, which
    keeps library callers (``attack_matrix`` etc.) silent by default.
    """

    def __init__(
        self,
        total: int,
        *,
        stream: Optional[IO[str]] = None,
        enabled: bool = True,
        min_interval_s: float = 0.5,
    ) -> None:
        self.total = total
        self.done = 0
        self.failed = 0
        self._stream = sys.stderr if stream is None else stream
        self._enabled = enabled and total > 0
        self._min_interval_s = min_interval_s
        self._start = time.monotonic()
        self._last_emit = 0.0
        self._wrote_any = False
        self._final_emitted = False

    def task_done(self, ok: bool) -> None:
        """Account one finished task and maybe redraw the status line."""
        self.done += 1
        if not ok:
            self.failed += 1
        self._emit(final=self.done >= self.total)

    def update_absolute(
        self, done: int, failed: int, final: bool = False
    ) -> None:
        """Set absolute counters (distributed ``watch`` view) and redraw.

        The local runner feeds the reporter one :meth:`task_done` per
        task; a watch client instead polls a coordinator for absolute
        counts — same rendering, different feed.
        """
        self.done = done
        self.failed = failed
        self._emit(final=final or (self.total > 0 and done >= self.total))

    def finish(self) -> None:
        """Force a final report and terminate the in-place line."""
        if self._enabled and self._wrote_any:
            self._emit(final=True)

    # ------------------------------------------------------------ intern

    def _render(self) -> str:
        elapsed = max(time.monotonic() - self._start, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else float("inf")
        pct = 100.0 * self.done / self.total
        line = (
            f"[{self.done}/{self.total}] {pct:5.1f}%  "
            f"{rate:6.2f} tasks/s  eta {eta:6.1f}s"
        )
        if self.failed:
            line += f"  failed {self.failed}"
        return line

    def _emit(self, final: bool) -> None:
        if not self._enabled or self._final_emitted:
            return
        now = time.monotonic()
        if not final and now - self._last_emit < self._min_interval_s:
            return
        self._last_emit = now
        self._final_emitted = final
        line = self._render()
        if self._stream.isatty():
            self._stream.write("\r" + line + ("\n" if final else ""))
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
        self._wrote_any = True
