"""Crash-safe campaign persistence: manifest + append-only JSONL results.

A campaign directory holds two primary files and one derived one:

* ``manifest.json`` — written once at campaign creation: the full spec
  document, its hash, the root seed, the expanded task count and the
  library version.  ``resume`` re-expands the spec from here, so the
  original spec file is not needed again (and cannot drift: the hash
  pins it).  The write is tmp-file + ``os.replace`` + **parent
  directory fsync**, so the rename itself is durable — a crash
  immediately after ``create`` cannot leave a directory whose manifest
  evaporates on an ext4-style journal replay.
* ``results.jsonl`` — one JSON record per *finished* task attempt,
  appended and ``fsync``'d record-by-record.  A ``SIGKILL`` can at worst
  leave a partial final line, which :meth:`CampaignStore.records`
  detects and ignores; every fully written record is durable.
* ``index.sqlite`` — *derived* compaction index
  (:meth:`CampaignStore.compact`): the set of completed ``key_id``s
  plus the JSONL byte offset it covers.  :meth:`completed_ids` then
  reads the index and scans only the JSONL *tail* past that offset, so
  resuming a million-task campaign stops re-parsing the whole log.
  The JSONL stays the source of truth: the index is rebuilt at will
  and ignored whenever it does not match the manifest's spec hash or
  the log shrank beneath its covered offset.

Resume semantics: a task counts as done when an ``ok`` record for its
``key_id`` exists; errored tasks are re-attempted on resume.  Because
``key_id`` hashes the task's kind/params/seed (not its schedule), a
campaign killed and resumed any number of times converges on exactly one
``ok`` record per task — no duplicates, no holes.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Set, Tuple, Union

from repro.campaign.spec import CampaignSpec, TaskKey

PathLike = Union[str, Path]

FORMAT_VERSION = 1
INDEX_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
INDEX_NAME = "index.sqlite"


def _fsync_dir(directory: Path) -> None:
    """Durably record a rename: fsync the parent directory itself.

    ``os.replace`` makes a rename atomic but not durable — on ext4 and
    friends the *directory entry* lives in the directory inode, which
    has its own dirty state.  Without this, a crash right after
    ``create``/``compact`` can roll the rename back.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = os.open(directory, flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class StoreError(RuntimeError):
    """A campaign directory is missing, incompatible or corrupt."""


@dataclass(frozen=True)
class TaskRecord:
    """One finished task attempt, as persisted in ``results.jsonl``."""

    key: TaskKey
    attempt: int
    task_seed: int
    status: str  # "ok" | "error"
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict[str, Any]:
        return {
            "key_id": self.key.key_id,
            "key": self.key.to_json(),
            "attempt": self.attempt,
            "task_seed": self.task_seed,
            "status": self.status,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "TaskRecord":
        return cls(
            key=TaskKey.from_json(document["key"]),
            attempt=int(document["attempt"]),
            task_seed=int(document["task_seed"]),
            status=str(document["status"]),
            result=document.get("result"),
            error=document.get("error"),
        )


@dataclass(frozen=True)
class StoreStatus:
    """Progress accounting of one campaign directory."""

    name: str
    kind: str
    n_tasks: int
    n_ok: int
    n_error: int
    n_records: int

    @property
    def n_pending(self) -> int:
        return self.n_tasks - self.n_ok

    @property
    def complete(self) -> bool:
        return self.n_ok == self.n_tasks


class CampaignStore:
    """One campaign directory: create, append, re-read, resume."""

    def __init__(self, directory: Path, manifest: Dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest
        self._results_path = directory / RESULTS_NAME
        self._handle: Optional[IO[str]] = None

    # ------------------------------------------------------ constructors

    @classmethod
    def create(cls, directory: PathLike, spec: CampaignSpec) -> "CampaignStore":
        """Start a fresh campaign directory; refuses to overwrite one."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            raise StoreError(
                f"{directory} already holds a campaign "
                f"(use 'campaign resume' to continue it)"
            )
        directory.mkdir(parents=True, exist_ok=True)
        from repro import __version__

        manifest: Dict[str, Any] = {
            "format_version": FORMAT_VERSION,
            "name": spec.name,
            "kind": spec.kind,
            "seed": spec.seed,
            "n_tasks": len(spec.expand()),
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "code_version": __version__,
        }
        payload = json.dumps(manifest, indent=2, sort_keys=True)
        tmp_path = directory / (MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, manifest_path)
        (directory / RESULTS_NAME).touch()
        _fsync_dir(directory)
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory: PathLike) -> "CampaignStore":
        """Open an existing campaign directory for resume/status/report."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{directory} is not a campaign directory "
                f"(no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"{manifest_path} is corrupt: {exc}") from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreError(
                f"{directory}: manifest format {version!r} unsupported "
                f"(this library reads {FORMAT_VERSION})"
            )
        store = cls(directory, manifest)
        spec = store.spec()
        if spec.spec_hash() != manifest.get("spec_hash"):
            raise StoreError(
                f"{directory}: manifest spec does not match its recorded "
                "hash — the campaign directory was modified"
            )
        return store

    # ----------------------------------------------------------- reading

    def spec(self) -> CampaignSpec:
        """Re-hydrate the spec the campaign was created from."""
        return CampaignSpec.from_dict(self.manifest["spec"])

    def records(self) -> List[TaskRecord]:
        """Every durable record, in append order.

        A partial *final* line (the signature of a mid-write kill) is
        silently dropped; a damaged line anywhere else raises, because
        that means the file was edited, not crashed.
        """
        records, _ = self._scan(0)
        return records

    def _scan(
        self, start: int, include_tail: bool = True
    ) -> Tuple[List[TaskRecord], int]:
        """Parse records from byte offset ``start`` onward.

        Returns ``(records, covered)`` where ``covered`` is the byte
        offset just past the last newline-terminated line — the prefix
        a compaction index may safely claim.  A parseable final line
        *without* a trailing newline is still returned as a record (when
        ``include_tail``), but never counted as covered: the next append
        session truncates it (:meth:`_repair_truncated_tail`), so it is
        not durable and must never enter the compaction index.
        """
        try:
            with open(self._results_path, "rb") as handle:
                handle.seek(start)
                data = handle.read()
        except FileNotFoundError:
            raise StoreError(
                f"{self.directory} lacks {RESULTS_NAME}"
            ) from None
        records: List[TaskRecord] = []
        covered = start
        lines = data.split(b"\n")
        line_number = 0
        offset = start
        for raw in lines[:-1]:  # every element here ends in a newline
            line_number += 1
            end = offset + len(raw) + 1
            if raw.strip():
                try:
                    records.append(
                        TaskRecord.from_json(json.loads(raw.decode("utf-8")))
                    )
                except (
                    UnicodeDecodeError,
                    json.JSONDecodeError,
                    KeyError,
                    TypeError,
                    ValueError,
                ) as exc:
                    raise StoreError(
                        f"{self._results_path}:{line_number}: corrupt "
                        f"record ({exc}); only the final line may be "
                        f"truncated"
                    ) from exc
            offset = end
            covered = end
        tail = lines[-1]
        if include_tail and tail.strip():
            # No trailing newline: a kill mid-append.  Tolerate it —
            # and if it happens to parse, count the record (it is
            # complete JSON) without covering it.
            try:
                records.append(
                    TaskRecord.from_json(json.loads(tail.decode("utf-8")))
                )
            except (
                UnicodeDecodeError,
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
            ):
                pass
        return records, covered

    def completed_ids(self) -> Set[str]:
        """``key_id`` of every task with a durable ``ok`` record.

        When a compaction index exists (and matches this campaign and
        log), only the JSONL bytes *past* the indexed offset are
        parsed; otherwise the whole log is scanned as before.
        """
        indexed = self._read_index()
        if indexed is None:
            return {rec.key.key_id for rec in self.records() if rec.ok}
        ids, covered = indexed
        tail_records, _ = self._scan(covered)
        return ids | {rec.key.key_id for rec in tail_records if rec.ok}

    def status(self) -> StoreStatus:
        """Progress counts for ``campaign status``."""
        records = self.records()
        ok_ids = {rec.key.key_id for rec in records if rec.ok}
        error_ids = {
            rec.key.key_id for rec in records if not rec.ok
        } - ok_ids
        return StoreStatus(
            name=str(self.manifest["name"]),
            kind=str(self.manifest["kind"]),
            n_tasks=int(self.manifest["n_tasks"]),
            n_ok=len(ok_ids),
            n_error=len(error_ids),
            n_records=len(records),
        )

    # -------------------------------------------------------- compaction

    @property
    def _index_path(self) -> Path:
        return self.directory / INDEX_NAME

    def compact(self) -> int:
        """Index completed ``key_id``s into ``index.sqlite``; return count.

        The JSONL log remains the source of truth — the index merely
        records *which* tasks have a durable ``ok`` record and how many
        log bytes that knowledge covers, so :meth:`completed_ids` on a
        million-task resume reads the index plus the (usually empty)
        tail instead of re-parsing every record.  The index is built at
        a tmp path, committed by ``os.replace`` and made durable with a
        parent-directory fsync, so a crash mid-compaction leaves the
        previous index (or none) intact.
        """
        records, covered = self._scan(0, include_tail=False)
        completed: Dict[str, int] = {}
        for record in records:
            if record.ok:
                completed.setdefault(record.key.key_id, record.attempt)
        tmp = self.directory / (INDEX_NAME + ".tmp")
        if tmp.exists():
            tmp.unlink()
        connection = sqlite3.connect(tmp)
        try:
            connection.executescript(
                "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT);"
                "CREATE TABLE completed ("
                "  key_id TEXT PRIMARY KEY, attempt INTEGER NOT NULL);"
            )
            connection.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    ("index_format_version", str(INDEX_FORMAT_VERSION)),
                    ("spec_hash", str(self.manifest.get("spec_hash", ""))),
                    ("jsonl_bytes", str(covered)),
                ],
            )
            connection.executemany(
                "INSERT INTO completed (key_id, attempt) VALUES (?, ?)",
                sorted(completed.items()),
            )
            connection.commit()
        finally:
            connection.close()
        os.replace(tmp, self._index_path)
        _fsync_dir(self.directory)
        return len(completed)

    def _read_index(self) -> Optional[Tuple[Set[str], int]]:
        """Load the compaction index: ``(completed ids, covered bytes)``.

        ``None`` whenever the index is absent, unreadable, from another
        spec, from a future format, or claims more log bytes than exist
        — every one of those means "fall back to the full JSONL scan",
        never an error, because the index is derived state.
        """
        if not self._index_path.exists():
            return None
        try:
            connection = sqlite3.connect(self._index_path)
        except sqlite3.Error:
            return None
        try:
            meta = dict(
                connection.execute("SELECT key, value FROM meta")
            )
            if int(meta.get("index_format_version", -1)) != INDEX_FORMAT_VERSION:
                return None
            if meta.get("spec_hash") != self.manifest.get("spec_hash"):
                return None
            covered = int(meta.get("jsonl_bytes", -1))
            if covered < 0:
                return None
            try:
                size = os.path.getsize(self._results_path)
            except OSError:
                return None
            if size < covered:
                return None  # log was truncated/replaced under the index
            ids = {
                str(row[0])
                for row in connection.execute(
                    "SELECT key_id FROM completed"
                )
            }
            return ids, covered
        except (sqlite3.Error, ValueError, TypeError):
            return None
        finally:
            connection.close()

    # ----------------------------------------------------------- writing

    def append(self, record: TaskRecord) -> None:
        """Durably append one record: write, flush, ``fsync``."""
        if self._handle is None:
            self._repair_truncated_tail()
            self._handle = open(self._results_path, "a", encoding="utf-8")
        line = json.dumps(record.to_json(), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _repair_truncated_tail(self) -> None:
        """Truncate a partial final line left by a kill mid-append.

        :meth:`records` tolerates a truncated *final* line, but appending
        after one would concatenate the new record onto it, turning a
        recoverable tail into a corrupt mid-file line that bricks every
        later read.  So before the first append of a session, cut the
        file back to its last newline; the half-written attempt simply
        re-runs, which is the resume contract anyway.
        """
        try:
            handle = open(self._results_path, "rb+")
        except FileNotFoundError:
            return
        with handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            keep = 0
            pos = size
            while pos > 0:
                step = min(4096, pos)
                pos -= step
                handle.seek(pos)
                newline = handle.read(step).rfind(b"\n")
                if newline != -1:
                    keep = pos + newline + 1
                    break
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
