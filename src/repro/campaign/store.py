"""Crash-safe campaign persistence: manifest + append-only JSONL results.

A campaign directory holds exactly two files:

* ``manifest.json`` — written once at campaign creation: the full spec
  document, its hash, the root seed, the expanded task count and the
  library version.  ``resume`` re-expands the spec from here, so the
  original spec file is not needed again (and cannot drift: the hash
  pins it).
* ``results.jsonl`` — one JSON record per *finished* task attempt,
  appended and ``fsync``'d record-by-record.  A ``SIGKILL`` can at worst
  leave a partial final line, which :meth:`CampaignStore.records`
  detects and ignores; every fully written record is durable.

Resume semantics: a task counts as done when an ``ok`` record for its
``key_id`` exists; errored tasks are re-attempted on resume.  Because
``key_id`` hashes the task's kind/params/seed (not its schedule), a
campaign killed and resumed any number of times converges on exactly one
``ok`` record per task — no duplicates, no holes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Set, Union

from repro.campaign.spec import CampaignSpec, TaskKey

PathLike = Union[str, Path]

FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"


class StoreError(RuntimeError):
    """A campaign directory is missing, incompatible or corrupt."""


@dataclass(frozen=True)
class TaskRecord:
    """One finished task attempt, as persisted in ``results.jsonl``."""

    key: TaskKey
    attempt: int
    task_seed: int
    status: str  # "ok" | "error"
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict[str, Any]:
        return {
            "key_id": self.key.key_id,
            "key": self.key.to_json(),
            "attempt": self.attempt,
            "task_seed": self.task_seed,
            "status": self.status,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "TaskRecord":
        return cls(
            key=TaskKey.from_json(document["key"]),
            attempt=int(document["attempt"]),
            task_seed=int(document["task_seed"]),
            status=str(document["status"]),
            result=document.get("result"),
            error=document.get("error"),
        )


@dataclass(frozen=True)
class StoreStatus:
    """Progress accounting of one campaign directory."""

    name: str
    kind: str
    n_tasks: int
    n_ok: int
    n_error: int
    n_records: int

    @property
    def n_pending(self) -> int:
        return self.n_tasks - self.n_ok

    @property
    def complete(self) -> bool:
        return self.n_ok == self.n_tasks


class CampaignStore:
    """One campaign directory: create, append, re-read, resume."""

    def __init__(self, directory: Path, manifest: Dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest
        self._results_path = directory / RESULTS_NAME
        self._handle: Optional[IO[str]] = None

    # ------------------------------------------------------ constructors

    @classmethod
    def create(cls, directory: PathLike, spec: CampaignSpec) -> "CampaignStore":
        """Start a fresh campaign directory; refuses to overwrite one."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            raise StoreError(
                f"{directory} already holds a campaign "
                f"(use 'campaign resume' to continue it)"
            )
        directory.mkdir(parents=True, exist_ok=True)
        from repro import __version__

        manifest: Dict[str, Any] = {
            "format_version": FORMAT_VERSION,
            "name": spec.name,
            "kind": spec.kind,
            "seed": spec.seed,
            "n_tasks": len(spec.expand()),
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "code_version": __version__,
        }
        payload = json.dumps(manifest, indent=2, sort_keys=True)
        tmp_path = directory / (MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, manifest_path)
        (directory / RESULTS_NAME).touch()
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory: PathLike) -> "CampaignStore":
        """Open an existing campaign directory for resume/status/report."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{directory} is not a campaign directory "
                f"(no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"{manifest_path} is corrupt: {exc}") from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreError(
                f"{directory}: manifest format {version!r} unsupported "
                f"(this library reads {FORMAT_VERSION})"
            )
        store = cls(directory, manifest)
        spec = store.spec()
        if spec.spec_hash() != manifest.get("spec_hash"):
            raise StoreError(
                f"{directory}: manifest spec does not match its recorded "
                "hash — the campaign directory was modified"
            )
        return store

    # ----------------------------------------------------------- reading

    def spec(self) -> CampaignSpec:
        """Re-hydrate the spec the campaign was created from."""
        return CampaignSpec.from_dict(self.manifest["spec"])

    def records(self) -> List[TaskRecord]:
        """Every durable record, in append order.

        A partial *final* line (the signature of a mid-write kill) is
        silently dropped; a damaged line anywhere else raises, because
        that means the file was edited, not crashed.
        """
        try:
            text = self._results_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StoreError(
                f"{self.directory} lacks {RESULTS_NAME}"
            ) from None
        lines = text.split("\n")
        records: List[TaskRecord] = []
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(TaskRecord.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if index == last_index:
                    # Truncated trailing record from a kill mid-append —
                    # the task will simply re-run on resume.
                    continue
                raise StoreError(
                    f"{self._results_path}:{index + 1}: corrupt record "
                    f"({exc}); only the final line may be truncated"
                ) from exc
        return records

    def completed_ids(self) -> Set[str]:
        """``key_id`` of every task with a durable ``ok`` record."""
        return {rec.key.key_id for rec in self.records() if rec.ok}

    def status(self) -> StoreStatus:
        """Progress counts for ``campaign status``."""
        records = self.records()
        ok_ids = {rec.key.key_id for rec in records if rec.ok}
        error_ids = {
            rec.key.key_id for rec in records if not rec.ok
        } - ok_ids
        return StoreStatus(
            name=str(self.manifest["name"]),
            kind=str(self.manifest["kind"]),
            n_tasks=int(self.manifest["n_tasks"]),
            n_ok=len(ok_ids),
            n_error=len(error_ids),
            n_records=len(records),
        )

    # ----------------------------------------------------------- writing

    def append(self, record: TaskRecord) -> None:
        """Durably append one record: write, flush, ``fsync``."""
        if self._handle is None:
            self._repair_truncated_tail()
            self._handle = open(self._results_path, "a", encoding="utf-8")
        line = json.dumps(record.to_json(), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _repair_truncated_tail(self) -> None:
        """Truncate a partial final line left by a kill mid-append.

        :meth:`records` tolerates a truncated *final* line, but appending
        after one would concatenate the new record onto it, turning a
        recoverable tail into a corrupt mid-file line that bricks every
        later read.  So before the first append of a session, cut the
        file back to its last newline; the half-written attempt simply
        re-runs, which is the resume contract anyway.
        """
        try:
            handle = open(self._results_path, "rb+")
        except FileNotFoundError:
            return
        with handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            keep = 0
            pos = size
            while pos > 0:
                step = min(4096, pos)
                pos -= step
                handle.seek(pos)
                newline = handle.read(step).rfind(b"\n")
                if newline != -1:
                    keep = pos + newline + 1
                    break
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
