"""Glue between the traffic layer and the exact simulator.

Three jobs:

* :func:`open_trace_chunks` / :func:`open_trace_entries` — one dispatch
  point that turns *any* on-disk trace (MSR/SNIA CSV, gzipped CSV,
  ``.rbt``) into the stream shape an engine wants, by suffix with a
  magic-byte fallback.
* :func:`run_traffic` — drive a :class:`~repro.sim.memory_system.
  MemoryController` with any traffic source on the batched fast path
  (``fast=False`` for the scalar reference; results are bit-identical,
  the PR-5 contract), returning the usual
  :class:`~repro.sim.engine.SimulationResult`.
* :func:`convert_to_rbt` — CSV → ``.rbt`` conversion with the windowing
  already applied, so the binary file replays with zero further
  normalisation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.pcm.timing import ALL1, LineData
from repro.sim.engine import SimulationResult, run_trace, run_trace_fast
from repro.sim.memory_system import MemoryController
from repro.sim.trace import TraceChunk, TraceEntry, trace_entries
from repro.traffic.csvtrace import (
    AddressWindow,
    csv_trace_chunks,
)
from repro.traffic.errors import TraceFileMissingError
from repro.traffic.rbt import read_rbt_chunks, write_rbt

PathLike = Union[str, Path]

_RBT_SUFFIX = ".rbt"


def _is_rbt(path: Path) -> bool:
    if path.suffix == _RBT_SUFFIX:
        return True
    if not path.exists():
        raise TraceFileMissingError(f"{path}: no such trace file")
    with open(path, "rb") as handle:
        return handle.read(3) == b"RBT"


def trace_format(path: PathLike) -> str:
    """``"rbt"`` or ``"csv"``, by suffix with a magic-byte fallback."""
    return "rbt" if _is_rbt(Path(path)) else "csv"


def open_trace_chunks(
    path: PathLike,
    *,
    n_lines: int,
    line_bytes: int = 64,
    window_start: int = 0,
    window_mode: str = "wrap",
    data: LineData = ALL1,
    batch: int = 8192,
) -> Iterator[TraceChunk]:
    """Open any supported trace file as a chunked stream.

    ``.rbt`` files replay as stored (their addresses were normalised at
    conversion time); CSV files are normalised here through an
    :class:`~repro.traffic.csvtrace.AddressWindow` built from
    ``n_lines``/``window_start``/``window_mode``.
    """
    source = Path(path)
    if _is_rbt(source):
        return read_rbt_chunks(source)
    return csv_trace_chunks(
        source,
        window=AddressWindow(
            n_lines=n_lines, start=window_start, mode=window_mode
        ),
        line_bytes=line_bytes,
        data=data,
        batch=batch,
    )


def open_trace_entries(
    path: PathLike,
    *,
    n_lines: int,
    line_bytes: int = 64,
    window_start: int = 0,
    window_mode: str = "wrap",
    data: LineData = ALL1,
    batch: int = 8192,
) -> Iterator[TraceEntry]:
    """Scalar twin of :func:`open_trace_chunks` — the same stream,
    unrolled entry-wise for the scalar engine."""
    return trace_entries(open_trace_chunks(
        path,
        n_lines=n_lines,
        line_bytes=line_bytes,
        window_start=window_start,
        window_mode=window_mode,
        data=data,
        batch=batch,
    ))


def run_traffic(
    controller: MemoryController,
    traffic: Union[Iterator[TraceEntry], Iterator[TraceChunk]],
    *,
    max_writes: Optional[int] = None,
    fast: bool = True,
    batch: int = 8192,
) -> SimulationResult:
    """Drive a controller with any traffic stream.

    ``fast=True`` (default) routes chunks through
    :meth:`~repro.sim.memory_system.MemoryController.write_chunk` via
    :func:`~repro.sim.engine.run_trace_fast`; ``fast=False`` runs the
    scalar reference.  For streams built by this package the two are
    bit-identical.
    """
    if fast:
        return run_trace_fast(
            controller, traffic, max_writes=max_writes, batch=batch
        )
    return run_trace(
        controller, trace_entries(traffic), max_writes=max_writes
    )


def convert_to_rbt(
    csv_path: PathLike,
    rbt_path: PathLike,
    *,
    n_lines: int,
    line_bytes: int = 64,
    window_start: int = 0,
    window_mode: str = "wrap",
    data: LineData = ALL1,
    batch: int = 8192,
) -> int:
    """Convert a CSV trace to ``.rbt``, normalising addresses now.

    Returns the number of line writes stored.  The conversion
    parameters are recorded in the ``.rbt`` metadata so ``repro trace
    info`` can show where a binary trace came from.
    """
    metadata: Dict[str, object] = {
        "source": str(Path(csv_path).name),
        "n_lines": int(n_lines),
        "line_bytes": int(line_bytes),
        "window_start": int(window_start),
        "window_mode": window_mode,
        "data": LineData(data).name,
    }
    return write_rbt(
        rbt_path,
        csv_trace_chunks(
            csv_path,
            window=AddressWindow(
                n_lines=n_lines, start=window_start, mode=window_mode
            ),
            line_bytes=line_bytes,
            data=data,
            batch=batch,
        ),
        metadata=metadata,
        batch=batch,
    )
