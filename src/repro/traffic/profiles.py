"""Declarative tenant-population specs: file -> profiles -> mixer.

A *traffic spec* describes a tenant population as groups — "700 zipf
tenants with 256-line windows and a diurnal swing, 300 uniform tenants
with small windows" — plus mixer-level churn knobs.  Layout (TOML shown;
JSON with the same shape also loads)::

    [traffic]
    name = "tenant-mix"
    tenants = 1000           # optional sanity check: must equal sum of
                             # group counts when groups are given
    churn_interval = 50000   # writes between hot-set redraws (0 = off)
    churn_fraction = 0.02
    churn_boost = 8.0
    schedule_interval = 8192

    [[group]]
    count = 700
    kind = "zipf"            # zipf | uniform | sequential
    alpha = 1.3
    window_lines = 256       # or window_fraction = 0.01
    rate = 1.0
    diurnal_amplitude = 0.5  # optional; 0 = flat arrival rate
    diurnal_period = 100000
    data = "ALL1"            # optional LineData class name

With no ``[[group]]`` tables the spec means "``tenants`` zipf tenants"
— and :func:`mixed_spec` builds the standard 60/30/10
zipf/uniform/sequential population the CLI uses for inline flags.

Window *placement* is not in the file: windows are placed by a
``derive_seed(seed, "placement")`` stream when the spec is instantiated
against a device size, so the same spec is reusable across device
scales and stays bit-reproducible per seed.  Diurnal phases are spread
per-tenant from ``derive_seed(seed, "phase")`` so a population's load
curve is staggered, not synchronised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.pcm.timing import LineData
from repro.traffic.tenants import TenantMixer, TenantProfile
from repro.util.rng import as_generator, derive_seed

PathLike = Union[str, Path]


class TrafficSpecError(ValueError):
    """A traffic specification is malformed."""


@dataclass(frozen=True)
class TenantGroup:
    """A homogeneous slice of the tenant population."""

    count: int
    kind: str = "zipf"
    alpha: float = 1.2
    window_lines: Optional[int] = None
    window_fraction: Optional[float] = None
    rate: float = 1.0
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 0
    data: str = "ALL1"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise TrafficSpecError("group count must be >= 1")
        if self.window_lines is not None and self.window_fraction is not None:
            raise TrafficSpecError(
                "give either window_lines or window_fraction, not both"
            )
        if self.window_lines is not None and self.window_lines < 1:
            raise TrafficSpecError("window_lines must be >= 1")
        if self.window_fraction is not None and not (
            0.0 < self.window_fraction <= 1.0
        ):
            raise TrafficSpecError("window_fraction must be in (0, 1]")
        if self.data.upper() not in LineData.__members__:
            raise TrafficSpecError(
                f"unknown data class {self.data!r}; expected one of "
                f"{sorted(LineData.__members__)}"
            )

    def resolve_window(self, n_lines: int) -> int:
        """The group's window width on an ``n_lines``-line device."""
        if self.window_lines is not None:
            width = self.window_lines
        elif self.window_fraction is not None:
            width = int(round(self.window_fraction * n_lines))
        else:
            # Default: square-root windows — small tenants on big devices
            # without ever degenerating to a single line.
            width = int(round(n_lines ** 0.5))
        return max(1, min(width, n_lines))


@dataclass(frozen=True)
class TrafficSpec:
    """Immutable description of a tenant population and its dynamics."""

    name: str = "traffic"
    groups: Tuple[TenantGroup, ...] = field(default=())
    churn_interval: int = 0
    churn_fraction: float = 0.02
    churn_boost: float = 8.0
    schedule_interval: int = 8192

    def __post_init__(self) -> None:
        if not self.groups:
            raise TrafficSpecError("traffic spec needs at least one group")

    @property
    def n_tenants(self) -> int:
        return sum(group.count for group in self.groups)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "TrafficSpec":
        """Parse the TOML/JSON document layout (see module docstring)."""
        unknown_tables = set(document) - {"traffic", "group"}
        if unknown_tables:
            raise TrafficSpecError(
                f"unknown top-level table(s) {sorted(unknown_tables)}"
            )
        traffic = dict(document.get("traffic", {}))
        known = {"name", "tenants", "churn_interval", "churn_fraction",
                 "churn_boost", "schedule_interval"}
        unknown = set(traffic) - known
        if unknown:
            raise TrafficSpecError(
                f"unknown [traffic] keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        raw_groups = document.get("group", [])
        groups: List[TenantGroup] = []
        for index, raw in enumerate(raw_groups):
            try:
                groups.append(TenantGroup(**dict(raw)))
            except TypeError as exc:
                raise TrafficSpecError(
                    f"[[group]] #{index + 1}: {exc}"
                ) from None
        declared = traffic.get("tenants")
        if not groups:
            if declared is None:
                raise TrafficSpecError(
                    "spec needs [[group]] tables or [traffic] tenants"
                )
            groups = [TenantGroup(count=int(declared))]
        spec = cls(
            name=str(traffic.get("name", "traffic")),
            groups=tuple(groups),
            churn_interval=int(traffic.get("churn_interval", 0)),
            churn_fraction=float(traffic.get("churn_fraction", 0.02)),
            churn_boost=float(traffic.get("churn_boost", 8.0)),
            schedule_interval=int(traffic.get("schedule_interval", 8192)),
        )
        if declared is not None and int(declared) != spec.n_tenants:
            raise TrafficSpecError(
                f"[traffic] declares {declared} tenants but the groups "
                f"sum to {spec.n_tenants}"
            )
        return spec

    def build_profiles(
        self, n_lines: int, seed: int
    ) -> List[TenantProfile]:
        """Instantiate the population against a device of ``n_lines``.

        Window placement and per-tenant diurnal phases come from
        ``derive_seed`` child streams of ``seed``; tenant order (and so
        each tenant's identity in the mixer) is group order.
        """
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        placement = as_generator(derive_seed(seed, "placement"))
        phases = as_generator(derive_seed(seed, "phase"))
        profiles: List[TenantProfile] = []
        for group in self.groups:
            width = group.resolve_window(n_lines)
            for _ in range(group.count):
                start = int(placement.integers(0, n_lines - width + 1))
                phase = (
                    float(phases.uniform(0.0, 1.0))
                    if group.diurnal_period > 0 else 0.0
                )
                profiles.append(TenantProfile(
                    kind=group.kind,
                    window_start=start,
                    window_len=width,
                    alpha=group.alpha,
                    rate=group.rate,
                    diurnal_amplitude=group.diurnal_amplitude,
                    diurnal_period=group.diurnal_period,
                    diurnal_phase=phase,
                    data=LineData[group.data.upper()],
                ))
        return profiles

    def build_mixer(self, n_lines: int, seed: int) -> TenantMixer:
        """Profiles plus mixer knobs, ready to stream."""
        return TenantMixer(
            self.build_profiles(n_lines, seed),
            seed=seed,
            churn_interval=self.churn_interval,
            churn_fraction=self.churn_fraction,
            churn_boost=self.churn_boost,
            schedule_interval=self.schedule_interval,
        )


def mixed_spec(
    n_tenants: int,
    *,
    alpha: float = 1.2,
    churn_interval: int = 0,
    churn_fraction: float = 0.02,
    churn_boost: float = 8.0,
    schedule_interval: int = 8192,
    name: str = "mixed",
) -> TrafficSpec:
    """The standard inline population: 60% zipf, 30% uniform, 10%
    sequential (streaming) tenants — what ``repro traffic`` builds when
    given ``--tenants N`` instead of a spec file."""
    if n_tenants < 1:
        raise TrafficSpecError("n_tenants must be >= 1")
    n_zipf = max(1, round(n_tenants * 0.6))
    n_uniform = max(0, round(n_tenants * 0.3))
    n_seq = n_tenants - n_zipf - n_uniform
    groups = [TenantGroup(count=n_zipf, kind="zipf", alpha=alpha)]
    if n_uniform:
        groups.append(TenantGroup(count=n_uniform, kind="uniform"))
    if n_seq > 0:
        groups.append(TenantGroup(count=n_seq, kind="sequential"))
    return TrafficSpec(
        name=name,
        groups=tuple(groups),
        churn_interval=churn_interval,
        churn_fraction=churn_fraction,
        churn_boost=churn_boost,
        schedule_interval=schedule_interval,
    )


def load_traffic_spec(path: PathLike) -> TrafficSpec:
    """Load a traffic spec from a ``.toml`` or ``.json`` file."""
    source = Path(path)
    if not source.exists():
        raise TrafficSpecError(f"{source}: no such traffic spec")
    text = source.read_text(encoding="utf-8")
    if source.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - Python < 3.11
            raise TrafficSpecError(
                f"reading {source} needs the stdlib 'tomllib' "
                "(Python 3.11+); convert the spec to JSON for older "
                "interpreters"
            ) from exc
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise TrafficSpecError(
                f"{source}: invalid TOML: {exc}"
            ) from exc
    else:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrafficSpecError(
                f"{source}: invalid JSON: {exc}"
            ) from exc
    return TrafficSpec.from_dict(document)
