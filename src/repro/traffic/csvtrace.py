"""Streaming loader for MSR-Cambridge / SNIA-style block-trace CSV.

The format is the one the MSR Cambridge enterprise traces (and most
SNIA IOTTA block traces) use — one I/O per line::

    timestamp,hostname,disk,type,offset,size[,response_time]

``timestamp`` is an opaque tick count, ``type`` is ``Read``/``Write``
(case-insensitive; ``R``/``W`` accepted), ``offset`` and ``size`` are in
bytes.  A header row is tolerated; blank lines are skipped; anything
else malformed raises :class:`~repro.traffic.errors.TraceFileCorruptError`
naming the file and line.  ``.gz`` files (by suffix *or* magic bytes)
are decompressed transparently; a gzip stream that ends early raises
:class:`~repro.traffic.errors.TraceFileTruncatedError`.

Byte offsets are normalised to line addresses: each operation of
``size`` bytes starting at ``offset`` touches the cache lines
``offset // line_bytes .. (offset + size - 1) // line_bytes`` and the
loader emits one write per touched line.  The resulting raw line
addresses are then folded into the simulated device's address space by
an :class:`AddressWindow` (wrap / drop / clamp — see its docstring).

Two granularities, same data: :func:`csv_trace_chunks` yields
``(las, datas)`` numpy pairs for :func:`repro.sim.engine.run_trace_fast`;
:func:`csv_trace_entries` is the scalar unrolling of exactly those
chunks, so the two engines replay the identical stream.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.pcm.timing import ALL1, LineData
from repro.sim.trace import TraceChunk, TraceEntry, trace_entries
from repro.traffic.errors import (
    TraceFileCorruptError,
    TraceFileMissingError,
    TraceFileTruncatedError,
)

PathLike = Union[str, Path]

_GZIP_MAGIC = b"\x1f\x8b"

#: Accepted spellings of the operation-type field.
_WRITE_TYPES = frozenset({"write", "w"})
_READ_TYPES = frozenset({"read", "r"})


@dataclass(frozen=True)
class AddressWindow:
    """Fold raw trace line addresses into ``[0, n_lines)``.

    ``start`` is subtracted first (select a region of the traced disk),
    then ``mode`` decides what happens to addresses outside the window:

    * ``"wrap"``  — modulo ``n_lines`` (default; keeps every write,
      aliases the traced footprint onto the device),
    * ``"drop"``  — out-of-window writes are silently skipped,
    * ``"clamp"`` — out-of-window writes pin to the nearest edge line.
    """

    n_lines: int
    start: int = 0
    mode: str = "wrap"

    def __post_init__(self) -> None:
        if self.n_lines < 1:
            raise ValueError("window needs n_lines >= 1")
        if self.mode not in ("wrap", "drop", "clamp"):
            raise ValueError(
                f"unknown window mode {self.mode!r}; "
                "expected wrap / drop / clamp"
            )

    def apply(self, las: np.ndarray) -> np.ndarray:
        """Map raw line addresses to device addresses (may shrink)."""
        relative = las - self.start
        if self.mode == "wrap":
            return relative % self.n_lines
        if self.mode == "drop":
            return relative[(relative >= 0) & (relative < self.n_lines)]
        return np.clip(relative, 0, self.n_lines - 1)


@dataclass(frozen=True)
class CSVRecord:
    """One parsed trace operation (byte-granular, before windowing)."""

    timestamp: int
    host: str
    disk: int
    is_write: bool
    offset: int
    size: int


def _open_text(path: PathLike) -> IO[str]:
    """Open a trace file for text reading, decompressing gzip if needed."""
    path = Path(path)
    if not path.exists():
        raise TraceFileMissingError(f"{path}: no such trace file")
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if path.suffix == ".gz" or magic == _GZIP_MAGIC:
        if magic != _GZIP_MAGIC:
            raise TraceFileCorruptError(
                f"{path}: .gz suffix but not gzip data"
            )
        return io.TextIOWrapper(
            gzip.open(path, "rb"), encoding="utf-8", newline=""
        )
    return open(path, "r", encoding="utf-8", newline="")


def _looks_like_header(fields: List[str]) -> bool:
    """First data field non-numeric => treat the row as a header."""
    try:
        int(fields[0])
        return False
    except ValueError:
        return True


def _parse_line(
    path: Path, lineno: int, line: str
) -> Optional[CSVRecord]:
    fields = [f.strip() for f in line.split(",")]
    if len(fields) < 6:
        raise TraceFileCorruptError(
            f"{path}:{lineno}: expected >= 6 comma-separated fields "
            f"(timestamp,host,disk,type,offset,size[,...]), got "
            f"{len(fields)}"
        )
    kind = fields[3].lower()
    if kind not in _WRITE_TYPES and kind not in _READ_TYPES:
        raise TraceFileCorruptError(
            f"{path}:{lineno}: operation type {fields[3]!r} is neither "
            "Read nor Write"
        )
    try:
        timestamp = int(fields[0])
        disk = int(fields[2])
        offset = int(fields[4])
        size = int(fields[5])
    except ValueError as exc:
        raise TraceFileCorruptError(
            f"{path}:{lineno}: non-numeric field ({exc})"
        ) from None
    if offset < 0 or size < 0:
        raise TraceFileCorruptError(
            f"{path}:{lineno}: negative offset/size"
        )
    return CSVRecord(
        timestamp=timestamp,
        host=fields[1],
        disk=disk,
        is_write=kind in _WRITE_TYPES,
        offset=offset,
        size=size,
    )


def iter_csv_records(path: PathLike) -> Iterator[CSVRecord]:
    """Stream parsed records; validates the file itself eagerly.

    The file is opened and its compression probed at the *call*, so a
    missing file or a mislabelled ``.gz`` raises here — not on the first
    ``next()`` deep in a replay loop.  Malformed rows and a gzip stream
    that ends mid-member raise during iteration, with the file and line
    in the message — those defects cannot be detected up front without
    reading everything.
    """
    source = Path(path)
    handle = _open_text(source)

    def records() -> Iterator[CSVRecord]:
        lineno = 0
        try:
            with handle:
                for raw in handle:
                    lineno += 1
                    line = raw.strip()
                    if not line:
                        continue
                    if lineno == 1 and _looks_like_header(
                        [f.strip() for f in line.split(",")]
                    ):
                        continue
                    record = _parse_line(source, lineno, line)
                    if record is not None:
                        yield record
        except (EOFError, gzip.BadGzipFile, OSError) as exc:
            raise TraceFileTruncatedError(
                f"{source}: gzip stream ends early at line ~{lineno} "
                f"({type(exc).__name__}: {exc}); re-download or "
                "re-compress the trace"
            ) from exc

    return records()


def csv_trace_chunks(
    path: PathLike,
    *,
    window: AddressWindow,
    line_bytes: int = 64,
    data: LineData = ALL1,
    include_reads: bool = False,
    max_lines_per_op: int = 4096,
    batch: int = 8192,
) -> Iterator[TraceChunk]:
    """Stream a CSV trace as ``(las, datas)`` chunks for the fast engine.

    Each operation expands to one write per touched ``line_bytes``-sized
    line (capped at ``max_lines_per_op`` so a single pathological
    multi-gigabyte I/O cannot flood the stream), then ``window`` folds
    the raw addresses into the device.  Reads are skipped unless
    ``include_reads`` (reads do not wear PCM; including them models a
    write-through controller).
    """
    if line_bytes < 1:
        raise ValueError("line_bytes must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if max_lines_per_op < 1:
        raise ValueError("max_lines_per_op must be >= 1")

    def chunks() -> Iterator[TraceChunk]:
        pending: List[np.ndarray] = []
        pending_n = 0
        for record in iter_csv_records(path):
            if not record.is_write and not include_reads:
                continue
            first = record.offset // line_bytes
            last = (record.offset + max(record.size, 1) - 1) // line_bytes
            count = min(last - first + 1, max_lines_per_op)
            las = window.apply(
                np.arange(first, first + count, dtype=np.int64)
            )
            if las.size == 0:
                continue
            pending.append(las)
            pending_n += int(las.size)
            while pending_n >= batch:
                merged = np.concatenate(pending)
                head, tail = merged[:batch], merged[batch:]
                yield head, np.full(batch, int(data), dtype=np.int8)
                pending = [tail] if tail.size else []
                pending_n = int(tail.size)
        if pending_n:
            merged = np.concatenate(pending)
            yield merged, np.full(merged.size, int(data), dtype=np.int8)

    return chunks()


def csv_trace_entries(
    path: PathLike,
    *,
    window: AddressWindow,
    line_bytes: int = 64,
    data: LineData = ALL1,
    include_reads: bool = False,
    max_lines_per_op: int = 4096,
    batch: int = 8192,
) -> Iterator[TraceEntry]:
    """Scalar twin of :func:`csv_trace_chunks` — the exact unrolling of
    the same chunks, so both engines replay one identical stream."""
    return trace_entries(
        csv_trace_chunks(
            path,
            window=window,
            line_bytes=line_bytes,
            data=data,
            include_reads=include_reads,
            max_lines_per_op=max_lines_per_op,
            batch=batch,
        )
    )


def csv_info(
    path: PathLike, *, line_bytes: int = 64
) -> Tuple[int, int, int, int]:
    """Cheap scan: ``(n_records, n_writes, n_write_lines, max_raw_la)``.

    ``n_write_lines`` counts line-granular writes before windowing (what
    a convert will emit); ``max_raw_la`` bounds the traced footprint.
    """
    n_records = n_writes = n_lines_touched = 0
    max_la = -1
    for record in iter_csv_records(path):
        n_records += 1
        if not record.is_write:
            continue
        n_writes += 1
        first = record.offset // line_bytes
        last = (record.offset + max(record.size, 1) - 1) // line_bytes
        n_lines_touched += last - first + 1
        max_la = max(max_la, last)
    return n_records, n_writes, n_lines_touched, max_la
