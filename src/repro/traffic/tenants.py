"""Multi-tenant traffic synthesis: thousands of tenants, one controller.

A :class:`TenantMixer` multiplexes many independent tenants — each with
its own access pattern (zipf / uniform / sequential), its own address
window, its own arrival-rate schedule (optionally diurnal) — through a
single deterministic interleaver.  This is the "millions of users"
traffic model the ROADMAP north-star asks for, and the shared-controller
substrate cross-tenant timing attacks need.

Determinism contract (the PR-5 chunked-generator contract, extended):

* Every random stream derives from one root seed via
  :func:`repro.util.rng.derive_seed` — the interleaver, each tenant's
  address draws, churn selection and window placement all get their own
  independent child streams, so adding a tenant never perturbs another
  tenant's addresses.
* :meth:`TenantMixer.chunks` and :meth:`TenantMixer.entries` emit the
  *identical* write stream for the same ``(n_writes, batch)`` — the
  scalar form is literally the unrolled chunks — so the batched and
  scalar engines replay one stream and report identical
  ``elapsed_ns``/wear.
* Each call restarts from the root seed: a mixer is a reusable factory,
  not a consumable iterator.

Virtual time is the write index: arrival-rate schedules and churn are
evaluated against "writes so far", which keeps the stream independent
of any host clock (reprolint REP104/REP204 territory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.pcm.timing import ALL1, LineData
from repro.sim.trace import TraceChunk, TraceEntry, trace_entries
from repro.util.rng import as_generator, derive_seed

_KINDS = ("zipf", "uniform", "sequential")

#: Floor for per-tenant arrival weights: a diurnal trough or churn must
#: never zero a tenant out entirely (choice() needs a valid distribution
#: and "idle" tenants still trickle requests in production).
_MIN_WEIGHT = 1e-9


@dataclass(frozen=True)
class TenantProfile:
    """One tenant: access pattern, address window, arrival schedule.

    ``window_start``/``window_len`` bound the tenant to its own region
    of the logical address space (tenants may overlap — shared pages —
    or partition it).  ``rate`` is the tenant's base arrival weight;
    with ``diurnal_period > 0`` the effective weight swings as
    ``rate * (1 + diurnal_amplitude * sin(2*pi*(t/period + phase)))``
    where ``t`` is the virtual write clock.
    """

    kind: str
    window_start: int
    window_len: int
    alpha: float = 1.2
    rate: float = 1.0
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 0
    diurnal_phase: float = 0.0
    data: LineData = ALL1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown tenant kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        if self.window_len < 1:
            raise ValueError("tenant window_len must be >= 1")
        if self.window_start < 0:
            raise ValueError("tenant window_start must be >= 0")
        if self.kind == "zipf" and self.alpha <= 0:
            raise ValueError("zipf tenants need alpha > 0")
        if self.rate <= 0:
            raise ValueError("tenant rate must be > 0")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.diurnal_period < 0:
            raise ValueError("diurnal_period must be >= 0")


class TenantMixer:
    """Deterministic interleaver over a tenant population.

    Parameters
    ----------
    profiles:
        The tenant population (order is identity: tenant ``i`` always
        draws from the ``derive_seed(seed, "tenant", i)`` stream).
    seed:
        Root seed; every internal stream derives from it.
    churn_interval:
        Every this-many writes, a fresh hot set is drawn and those
        tenants' arrival weights are multiplied by ``churn_boost``
        (0 disables churn).
    churn_fraction:
        Fraction of tenants in the hot set.
    schedule_interval:
        How often (in writes) diurnal arrival weights are re-evaluated.
        Chunks never straddle a schedule or churn boundary, so the
        scalar unrolling sees weight changes at the same write index.
    """

    def __init__(
        self,
        profiles: Sequence[TenantProfile],
        *,
        seed: int,
        churn_interval: int = 0,
        churn_fraction: float = 0.02,
        churn_boost: float = 8.0,
        schedule_interval: int = 8192,
    ) -> None:
        if not profiles:
            raise ValueError("mixer needs at least one tenant profile")
        if churn_interval < 0:
            raise ValueError("churn_interval must be >= 0")
        if not 0.0 <= churn_fraction <= 1.0:
            raise ValueError("churn_fraction must be in [0, 1]")
        if churn_boost <= 0:
            raise ValueError("churn_boost must be > 0")
        if schedule_interval < 1:
            raise ValueError("schedule_interval must be >= 1")
        self.profiles: Tuple[TenantProfile, ...] = tuple(profiles)
        self.seed = int(seed)
        self.churn_interval = int(churn_interval)
        self.churn_fraction = float(churn_fraction)
        self.churn_boost = float(churn_boost)
        self.schedule_interval = int(schedule_interval)
        self._base_rates = np.array(
            [p.rate for p in self.profiles], dtype=np.float64
        )
        self._datas = np.array(
            [int(p.data) for p in self.profiles], dtype=np.int8
        )
        # Shared zipf rank-probability vectors, keyed (window_len, alpha):
        # thousands of tenants typically reuse a handful of shapes.
        self._zipf_cache: Dict[Tuple[int, float], np.ndarray] = {}

    @property
    def n_tenants(self) -> int:
        return len(self.profiles)

    @property
    def span_lines(self) -> int:
        """Highest logical address any tenant can emit, plus one."""
        return max(p.window_start + p.window_len for p in self.profiles)

    # ----------------------------------------------------------- streams

    def chunks(
        self,
        n_writes: Optional[int] = None,
        *,
        batch: int = 8192,
    ) -> Iterator[TraceChunk]:
        """Chunked mixed-traffic stream for the batched engine.

        Restarts from the root seed on every call.  Chunk boundaries are
        cut at ``batch``, schedule-interval and churn-interval edges —
        never mid-epoch — so the stream is a pure function of
        ``(profiles, seed, n_writes, batch)``.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self._generate(n_writes, batch)

    def entries(
        self,
        n_writes: Optional[int] = None,
        *,
        batch: int = 8192,
    ) -> Iterator[TraceEntry]:
        """Scalar twin of :meth:`chunks` — the exact unrolled stream."""
        return trace_entries(self.chunks(n_writes, batch=batch))

    # ---------------------------------------------------------- internals

    def _zipf_probabilities(self, window_len: int, alpha: float) -> np.ndarray:
        key = (window_len, alpha)
        probabilities = self._zipf_cache.get(key)
        if probabilities is None:
            weights = np.arange(
                1, window_len + 1, dtype=np.float64
            ) ** (-alpha)
            probabilities = weights / weights.sum()
            self._zipf_cache[key] = probabilities
        return probabilities

    def _weights_at(
        self, t: int, hot_boost: np.ndarray
    ) -> np.ndarray:
        """Arrival probabilities at virtual time ``t`` (one per tenant)."""
        rates = self._base_rates.copy()
        for i, profile in enumerate(self.profiles):
            if profile.diurnal_period > 0:
                phase = t / profile.diurnal_period + profile.diurnal_phase
                rates[i] *= 1.0 + profile.diurnal_amplitude * np.sin(
                    2.0 * np.pi * phase
                )
        rates = np.maximum(rates * hot_boost, _MIN_WEIGHT)
        return rates / rates.sum()

    def _draw_addresses(
        self,
        tenant: int,
        count: int,
        rng: np.random.Generator,
        seq_pos: np.ndarray,
    ) -> np.ndarray:
        profile = self.profiles[tenant]
        start, width = profile.window_start, profile.window_len
        if profile.kind == "uniform":
            return start + rng.integers(0, width, size=count, dtype=np.int64)
        if profile.kind == "zipf":
            ranks = rng.choice(
                width,
                size=count,
                p=self._zipf_probabilities(width, profile.alpha),
            )
            return start + np.asarray(ranks, dtype=np.int64)
        # sequential: a persistent cursor, no RNG draw at all
        position = int(seq_pos[tenant])
        addresses = start + (
            (position + np.arange(count, dtype=np.int64)) % width
        )
        seq_pos[tenant] = (position + count) % width
        return addresses

    def _generate(
        self, n_writes: Optional[int], batch: int
    ) -> Iterator[TraceChunk]:
        mixer_rng = as_generator(derive_seed(self.seed, "mixer"))
        churn_rng = as_generator(derive_seed(self.seed, "churn"))
        tenant_rngs: List[np.random.Generator] = [
            as_generator(derive_seed(self.seed, "tenant", i))
            for i in range(self.n_tenants)
        ]
        seq_pos = np.zeros(self.n_tenants, dtype=np.int64)
        hot_boost = np.ones(self.n_tenants, dtype=np.float64)
        probabilities = np.empty(0, dtype=np.float64)
        t = 0
        while n_writes is None or t < n_writes:
            if self.churn_interval and t % self.churn_interval == 0:
                hot_boost = np.ones(self.n_tenants, dtype=np.float64)
                n_hot = max(
                    1, int(round(self.churn_fraction * self.n_tenants))
                )
                hot = churn_rng.choice(
                    self.n_tenants, size=min(n_hot, self.n_tenants),
                    replace=False,
                )
                hot_boost[hot] = self.churn_boost
                probabilities = np.empty(0, dtype=np.float64)
            if t % self.schedule_interval == 0 or probabilities.size == 0:
                probabilities = self._weights_at(t, hot_boost)
            size = batch if n_writes is None else min(batch, n_writes - t)
            size = min(
                size, self.schedule_interval - t % self.schedule_interval
            )
            if self.churn_interval:
                size = min(
                    size, self.churn_interval - t % self.churn_interval
                )
            tenant_ids = np.asarray(
                mixer_rng.choice(
                    self.n_tenants, size=size, p=probabilities
                ),
                dtype=np.int64,
            )
            las = np.empty(size, dtype=np.int64)
            order = np.argsort(tenant_ids, kind="stable")
            sorted_ids = tenant_ids[order]
            uniques, starts = np.unique(sorted_ids, return_index=True)
            bounds = np.append(starts, size)
            for which, tenant in enumerate(uniques.tolist()):
                slots = order[bounds[which]:bounds[which + 1]]
                las[slots] = self._draw_addresses(
                    tenant, int(slots.size), tenant_rngs[tenant], seq_pos
                )
            yield las, self._datas[tenant_ids]
            t += size
