"""The trace-file error taxonomy shared by every loader in the repo.

One base class, four defects.  Every loader — the ``.npz`` persistence in
:mod:`repro.sim.tracefile`, the MSR/SNIA CSV reader in
:mod:`repro.traffic.csvtrace`, the ``.rbt`` binary chunk reader in
:mod:`repro.traffic.rbt` — raises the *same* subclasses, so callers
(CLI, campaign tasks, smoke scripts) can branch on the defect without
knowing which format they were handed:

* :class:`TraceFileMissingError`   — the path does not exist.
* :class:`TraceFileTruncatedError` — the bytes run out mid-structure
  (interrupted download, killed writer, partial copy).
* :class:`TraceFileCorruptError`   — the bytes are complete but are not
  the format they claim to be (bad magic, unparseable fields, wrong
  dtypes).
* :class:`TraceFileVersionError`   — a well-formed file written by a
  newer (or unknown) format revision.

All four subclass :class:`TraceFileError`, which remains a ``ValueError``
— existing ``except TraceFileError`` / ``except ValueError`` sites keep
working unchanged.
"""

from __future__ import annotations


class TraceFileError(ValueError):
    """A trace file is missing, truncated or not a trace at all."""


class TraceFileMissingError(TraceFileError):
    """The trace file does not exist."""


class TraceFileTruncatedError(TraceFileError):
    """The trace file ends mid-structure (partial copy / killed writer)."""


class TraceFileCorruptError(TraceFileError):
    """The trace file's bytes are not the format they claim to be."""


class TraceFileVersionError(TraceFileError):
    """The trace file was written by an unknown format revision."""
