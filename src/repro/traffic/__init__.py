"""``repro.traffic`` — real-trace ingestion and multi-tenant synthesis.

The workload layer above the simulator: streaming loaders for real
block-trace formats (MSR-Cambridge/SNIA CSV, the compact ``.rbt``
binary chunk format) and a :class:`TenantMixer` that multiplexes
thousands of independent tenants through one deterministic interleaver.
Both halves emit the dual-granularity streams
:func:`repro.sim.engine.run_trace_fast` and :func:`~repro.sim.engine.
run_trace` consume interchangeably — chunked and scalar forms of one
identical write stream.

See ``docs/workloads.md`` for formats, the tenant-profile spec schema
and windowing semantics.
"""

from repro.traffic.adapter import (
    convert_to_rbt,
    open_trace_chunks,
    open_trace_entries,
    run_traffic,
    trace_format,
)
from repro.traffic.csvtrace import (
    AddressWindow,
    CSVRecord,
    csv_info,
    csv_trace_chunks,
    csv_trace_entries,
    iter_csv_records,
)
from repro.traffic.errors import (
    TraceFileCorruptError,
    TraceFileError,
    TraceFileMissingError,
    TraceFileTruncatedError,
    TraceFileVersionError,
)
from repro.traffic.profiles import (
    TenantGroup,
    TrafficSpec,
    TrafficSpecError,
    load_traffic_spec,
    mixed_spec,
)
from repro.traffic.rbt import (
    read_rbt_chunks,
    read_rbt_entries,
    rbt_metadata,
    rbt_n_entries,
    write_rbt,
)
from repro.traffic.tenants import TenantMixer, TenantProfile

__all__ = [
    "AddressWindow",
    "CSVRecord",
    "TenantGroup",
    "TenantMixer",
    "TenantProfile",
    "TraceFileCorruptError",
    "TraceFileError",
    "TraceFileMissingError",
    "TraceFileTruncatedError",
    "TraceFileVersionError",
    "TrafficSpec",
    "TrafficSpecError",
    "convert_to_rbt",
    "csv_info",
    "csv_trace_chunks",
    "csv_trace_entries",
    "iter_csv_records",
    "load_traffic_spec",
    "mixed_spec",
    "open_trace_chunks",
    "open_trace_entries",
    "rbt_metadata",
    "rbt_n_entries",
    "read_rbt_chunks",
    "read_rbt_entries",
    "run_traffic",
    "trace_format",
    "write_rbt",
]
