"""``.rbt`` — the repro binary trace: chunked, versioned, zero-copy.

A compact on-disk format whose reader yields ``(las, datas)`` numpy
chunks straight into :func:`repro.sim.engine.run_trace_fast` without
per-entry Python objects.  Layout (all integers little-endian)::

    magic    4 bytes   b"RBT\\x01"  (the byte is the format version)
    hlen     4 bytes   uint32 — length of the JSON header that follows
    header   hlen bytes  UTF-8 JSON: dtypes, entry count, user metadata
    chunks   repeated:
        n       4 bytes  uint32 — entries in this chunk (never 0)
        las     n * 8 bytes  int64 line addresses
        datas   n * 1 bytes  int8 LineData classes

The header records ``{"las_dtype": "<i8", "datas_dtype": "i1",
"n_entries": N, "meta": {...}}``; readers check the dtypes so a file
written by a foreign tool cannot silently misparse.  End of file is
only legal on a chunk boundary — anything else raises
:class:`~repro.traffic.errors.TraceFileTruncatedError`.  The chunk
arrays are built with :func:`numpy.frombuffer` over the read buffer
(zero-copy; the las array is handed out read-only).

Writers accept either trace granularity — scalar
:class:`~repro.sim.trace.TraceEntry` iterators or native chunk streams —
so any generator, loader or recorded trace in the repo converts.
"""

from __future__ import annotations

import json
import struct
from itertools import chain
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.sim.trace import TraceChunk, TraceEntry, trace_chunks, trace_entries
from repro.traffic.errors import (
    TraceFileCorruptError,
    TraceFileMissingError,
    TraceFileTruncatedError,
    TraceFileVersionError,
)

PathLike = Union[str, Path]

MAGIC = b"RBT"
FORMAT_VERSION = 1

_LAS_DTYPE = "<i8"
_DATAS_DTYPE = "i1"
_CHUNK_HEADER = struct.Struct("<I")


def _read_exact(handle: IO[bytes], n: int, path: Path, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise TraceFileTruncatedError(
            f"{path}: truncated .rbt file — expected {n} byte(s) of "
            f"{what}, got {len(data)}; re-write it with write_rbt"
        )
    return data


def _read_header(handle: IO[bytes], path: Path) -> Dict[str, object]:
    magic = handle.read(4)
    if len(magic) < 4:
        raise TraceFileTruncatedError(
            f"{path}: truncated .rbt file — shorter than its magic"
        )
    if magic[:3] != MAGIC:
        raise TraceFileCorruptError(
            f"{path}: not an .rbt trace (bad magic {magic[:3]!r})"
        )
    version = magic[3]
    if version != FORMAT_VERSION:
        raise TraceFileVersionError(
            f"{path}: .rbt format version {version} is not supported "
            f"(this reader understands version {FORMAT_VERSION})"
        )
    (hlen,) = _CHUNK_HEADER.unpack(
        _read_exact(handle, 4, path, "header length")
    )
    raw = _read_exact(handle, hlen, path, "JSON header")
    try:
        header = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TraceFileCorruptError(
            f"{path}: corrupt .rbt JSON header ({exc})"
        ) from exc
    if not isinstance(header, dict):
        raise TraceFileCorruptError(
            f"{path}: .rbt header is not a JSON object"
        )
    for key, expected in (("las_dtype", _LAS_DTYPE),
                          ("datas_dtype", _DATAS_DTYPE)):
        if header.get(key) != expected:
            raise TraceFileCorruptError(
                f"{path}: .rbt header declares {key}={header.get(key)!r}; "
                f"this reader requires {expected!r}"
            )
    count = header.get("n_entries")
    if isinstance(count, str) and set(count) == {"@"}:
        raise TraceFileTruncatedError(
            f"{path}: .rbt writer died before finalizing the header; "
            "re-write it with write_rbt"
        )
    try:
        header["n_entries"] = int(str(count))
    except (TypeError, ValueError) as exc:
        raise TraceFileCorruptError(
            f"{path}: .rbt header lacks a usable n_entries "
            f"(got {count!r})"
        ) from exc
    return header


def rbt_metadata(path: PathLike) -> Dict[str, object]:
    """Read the header of an ``.rbt`` file: dtypes, counts, user metadata."""
    source = Path(path)
    if not source.exists():
        raise TraceFileMissingError(f"{source}: no such trace file")
    with open(source, "rb") as handle:
        return _read_header(handle, source)


def read_rbt_chunks(path: PathLike) -> Iterator[TraceChunk]:
    """Stream ``(las, datas)`` chunks from an ``.rbt`` file.

    The header is read and validated eagerly at the call; chunk payloads
    stream lazily.  Arrays are :func:`numpy.frombuffer` views over the
    read buffer (no copy); treat them as read-only.
    """
    source = Path(path)
    if not source.exists():
        raise TraceFileMissingError(f"{source}: no such trace file")
    handle = open(source, "rb")
    try:
        header = _read_header(handle, source)
    except Exception:
        handle.close()
        raise
    declared = int(header["n_entries"])  # normalised by _read_header

    def chunks() -> Iterator[TraceChunk]:
        seen = 0
        with handle:
            while True:
                head = handle.read(4)
                if len(head) == 0:
                    break
                if len(head) < 4:
                    raise TraceFileTruncatedError(
                        f"{source}: truncated .rbt file — partial chunk "
                        "header at EOF"
                    )
                (n,) = _CHUNK_HEADER.unpack(head)
                if n == 0:
                    raise TraceFileCorruptError(
                        f"{source}: corrupt .rbt file — zero-length chunk"
                    )
                payload = _read_exact(
                    handle, n * 9, source, f"chunk payload ({n} entries)"
                )
                las = np.frombuffer(payload, dtype=_LAS_DTYPE, count=n)
                datas = np.frombuffer(
                    payload, dtype=_DATAS_DTYPE, count=n, offset=n * 8
                )
                seen += n
                yield las, datas
        if seen != declared:
            raise TraceFileTruncatedError(
                f"{source}: .rbt header declares {declared} entries but "
                f"the chunks hold {seen}"
            )

    return chunks()


def read_rbt_entries(path: PathLike) -> Iterator[TraceEntry]:
    """Scalar unrolling of :func:`read_rbt_chunks` (same stream)."""
    return trace_entries(read_rbt_chunks(path))


def write_rbt(
    path: PathLike,
    trace: Union[Iterable[TraceEntry], Iterable[TraceChunk]],
    *,
    metadata: Optional[Dict[str, object]] = None,
    batch: int = 8192,
) -> int:
    """Convert any trace — scalar entries or native chunks — to ``.rbt``.

    Returns the number of entries written.  The header's ``n_entries``
    count is patched in after the chunk walk, so readers can detect a
    writer that died mid-stream.  Scalar input is batched ``batch`` at a
    time; chunked input keeps its own chunk boundaries.
    """
    target = Path(path)
    header: Dict[str, object] = {
        "las_dtype": _LAS_DTYPE,
        "datas_dtype": _DATAS_DTYPE,
        "n_entries": 0,
        "meta": dict(metadata or {}),
    }
    # Fixed-width n_entries placeholder so the patch-in-place below
    # cannot change the header length.
    total = 0
    with open(target, "wb") as handle:
        handle.write(MAGIC + bytes([FORMAT_VERSION]))
        raw = json.dumps(
            {**header, "n_entries": "@" * 20}, sort_keys=True
        ).encode("utf-8")
        handle.write(_CHUNK_HEADER.pack(len(raw)))
        header_at = handle.tell()
        handle.write(raw)
        for las, datas in _as_chunks(trace, batch):
            n = int(las.size)
            if n == 0:
                continue
            las64 = np.ascontiguousarray(las, dtype=_LAS_DTYPE)
            datas8 = np.ascontiguousarray(datas, dtype=_DATAS_DTYPE)
            if datas8.size != n:
                raise ValueError(
                    f"chunk las/datas length mismatch: {n} vs {datas8.size}"
                )
            handle.write(_CHUNK_HEADER.pack(n))
            handle.write(las64.tobytes())
            handle.write(datas8.tobytes())
            total += n
        patched = json.dumps(
            {**header, "n_entries": f"{total:020d}"}, sort_keys=True
        ).encode("utf-8")
        assert len(patched) == len(raw)
        handle.seek(header_at)
        handle.write(patched)
    return total


def _as_chunks(
    trace: Union[Iterable[TraceEntry], Iterable[TraceChunk]], batch: int
) -> Iterator[TraceChunk]:
    """Accept either granularity (mirror of the fast engine's adapter)."""
    it = iter(trace)
    try:
        first = next(it)
    except StopIteration:
        return iter(())
    rest = chain([first], it)
    if isinstance(first, TraceEntry):
        return trace_chunks(rest, batch=batch)
    return rest  # type: ignore[return-value]


def rbt_n_entries(path: PathLike) -> int:
    """The entry count a well-formed header declares."""
    return int(rbt_metadata(path)["n_entries"])  # type: ignore[arg-type]
