"""Detector-driven wear-leveling rate escalation.

Wraps any :class:`~repro.wearlevel.base.WearLeveler` together with an
:class:`~repro.defense.attack_detector.OnlineAttackDetector`: while the
alarm is raised, every remapping interval the scheme exposes is divided by
``escalation`` (more frequent remaps), and restored when the stream calms
down.

Interval discovery is duck-typed: the wrapper rescales every
``remap_interval`` / ``inner_interval`` / ``outer_interval`` attribute it
finds on the scheme and on its ``region`` / ``regions`` / ``inners`` /
``outer`` sub-objects — which covers every scheme in this library.

This is the mechanism the paper's §III-B warns about: against RAA/BPA it
multiplies lifetime, but against the Remapping Timing Attack a higher
remap rate means cheaper detection and *shorter* lifetime.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.defense.attack_detector import OnlineAttackDetector
from repro.wearlevel.base import Move, WearLeveler

_INTERVAL_FIELDS = ("remap_interval", "inner_interval", "outer_interval")
_SUBOBJECT_FIELDS = ("region", "outer")
_SUBLIST_FIELDS = ("regions", "inners")


def _interval_slots(scheme) -> List[Tuple[object, str, int]]:
    """Enumerate (object, attribute, base_value) interval knobs."""
    slots: List[Tuple[object, str, int]] = []

    def visit(obj):
        for field in _INTERVAL_FIELDS:
            value = getattr(obj, field, None)
            if isinstance(value, int) and value >= 1:
                slots.append((obj, field, value))

    visit(scheme)
    for field in _SUBOBJECT_FIELDS:
        child = getattr(scheme, field, None)
        if child is not None:
            visit(child)
    for field in _SUBLIST_FIELDS:
        children = getattr(scheme, field, None)
        if children:
            for child in children:
                visit(child)
    return slots


class AdaptiveWearLeveler(WearLeveler):
    """Rate-escalating wrapper around any wear-leveling scheme."""

    def __init__(
        self,
        scheme: WearLeveler,
        detector: OnlineAttackDetector = None,
        escalation: int = 4,
    ):
        if escalation < 1:
            raise ValueError("escalation must be >= 1")
        self.scheme = scheme
        self.detector = detector or OnlineAttackDetector()
        self.escalation = escalation
        self.n_lines = scheme.n_lines
        self.n_physical = scheme.n_physical
        self.escalated = False
        self.escalations = 0
        self._slots = _interval_slots(scheme)
        if not self._slots:
            raise ValueError("scheme exposes no remapping intervals to adapt")

    # ------------------------------------------------------------ plumbing

    def translate(self, la: int) -> int:
        return self.scheme.translate(la)

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self.scheme.translate_many(las)

    def record_write(self, la: int) -> List[Move]:
        alarmed = self.detector.record(la)
        if alarmed and not self.escalated:
            self._apply(escalate=True)
        elif not alarmed and self.escalated:
            self._apply(escalate=False)
        return self.scheme.record_write(la)

    def _apply(self, escalate: bool) -> None:
        for obj, field, base in self._slots:
            value = max(1, base // self.escalation) if escalate else base
            setattr(obj, field, value)
        self.escalated = escalate
        if escalate:
            self.escalations += 1
