"""Delayed Write Policy — a coalescing buffer in front of the PCM bank.

The RBSG paper proposes delaying writes in a small buffer so that repeated
writes to the same line coalesce before touching PCM; an attacker must then
cycle through *more distinct lines than the buffer holds* to generate any
wear at all ("the attackers have to write more extra lines besides the
line attacked").  The Security-RBSG paper notes RTA remains efficient
despite it — RTA's labelling sweeps and hammer phases already touch many
lines.

:class:`DelayedWriteController` wraps the usual controller interface:

* a write to a buffered line updates the buffer (zero PCM latency beyond
  the buffer access, modelled as free),
* a write to a new line may evict the least-recently-written entry, which
  is then written through the wear-leveling scheme to PCM,
* reads hit the buffer first.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.config import PCMConfig
from repro.pcm.timing import LineData
from repro.sim.memory_system import MemoryController
from repro.wearlevel.base import WearLeveler


class DelayedWriteController:
    """A write-coalescing front-end over :class:`MemoryController`."""

    def __init__(
        self,
        scheme: WearLeveler,
        config: PCMConfig,
        buffer_lines: int = 8,
        raise_on_failure: bool = True,
    ):
        if buffer_lines < 1:
            raise ValueError("buffer_lines must be >= 1")
        self.inner = MemoryController(
            scheme, config, raise_on_failure=raise_on_failure
        )
        self.buffer_lines = buffer_lines
        self._buffer: "OrderedDict[int, LineData]" = OrderedDict()
        self.coalesced_writes = 0
        self.evictions = 0

    # ----------------------------------------------------------------- API

    def write(self, la: int, data: LineData) -> float:
        """Buffer the write; return the latency of any triggered eviction."""
        if la in self._buffer:
            self._buffer.move_to_end(la)
            self._buffer[la] = data
            self.coalesced_writes += 1
            return 0.0
        self._buffer[la] = data
        if len(self._buffer) <= self.buffer_lines:
            return 0.0
        victim_la, victim_data = self._buffer.popitem(last=False)
        self.evictions += 1
        return self.inner.write(victim_la, victim_data)

    def read(self, la: int) -> Tuple[LineData, float]:
        """Read through the buffer (buffered lines cost nothing extra)."""
        if la in self._buffer:
            return self._buffer[la], 0.0
        return self.inner.read(la)

    def flush(self) -> float:
        """Drain the buffer to PCM; returns the total latency."""
        total = 0.0
        while self._buffer:
            la, data = self._buffer.popitem(last=False)
            total += self.inner.write(la, data)
        return total

    # ------------------------------------------------------------- queries

    @property
    def scheme(self) -> WearLeveler:
        return self.inner.scheme

    @property
    def array(self):
        return self.inner.array

    @property
    def elapsed_ns(self) -> float:
        return self.inner.elapsed_ns

    @property
    def total_writes(self) -> int:
        return self.inner.total_writes
