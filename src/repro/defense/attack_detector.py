"""Online detection of malicious write streams (paper ref. [15]).

Benign traffic — even heavily skewed zipf traffic — spreads its writes over
many lines; wear-out attacks concentrate them on very few.  The detector
keeps a sliding window of recent write addresses and raises an alarm when
the hottest address (or the hottest few) exceeds a concentration threshold.

This is deliberately simple (a counting window, not the HPCA'11 paper's
full multi-queue design) but captures the property the Security-RBSG paper
leans on: RAA/BPA-style streams are detectable, so a system can escalate
its wear-leveling rate — which, per §III-B, *helps* RTA rather than
hurting it (see ``benchmarks/test_ablation_detector.py``).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque


class OnlineAttackDetector:
    """Sliding-window address-concentration alarm.

    Parameters
    ----------
    window:
        Number of most recent writes considered.
    threshold:
        Alarm when the hottest ``top_k`` addresses hold more than this
        fraction of the window.  Wear-out attacks concentrate essentially
        the whole window on the target set, while even zipf(1.1) benign
        traffic keeps its top-4 share near 26 % — so 0.5 separates them
        with margin on both sides.
    top_k:
        How many hottest addresses to pool (catches small rotation sets,
        e.g. a BPA dwell or a delayed-write-buffer-cycling attacker).
    """

    def __init__(self, window: int = 4096, threshold: float = 0.5,
                 top_k: int = 4):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.window = window
        self.threshold = threshold
        self.top_k = top_k
        self._recent: Deque[int] = deque()
        self._counts: Counter = Counter()
        self.alarms = 0
        self.observed = 0

    def record(self, la: int) -> bool:
        """Feed one write; returns True when the stream looks malicious."""
        self.observed += 1
        self._recent.append(la)
        self._counts[la] += 1
        if len(self._recent) > self.window:
            old = self._recent.popleft()
            self._counts[old] -= 1
            if self._counts[old] == 0:
                del self._counts[old]
        if len(self._recent) < self.window:
            return False  # not enough evidence yet
        hot = sum(count for _, count in self._counts.most_common(self.top_k))
        alarmed = hot > self.threshold * len(self._recent)
        if alarmed:
            self.alarms += 1
        return alarmed

    @property
    def concentration(self) -> float:
        """Current hottest-``top_k`` share of the window (diagnostics)."""
        if not self._recent:
            return 0.0
        hot = sum(count for _, count in self._counts.most_common(self.top_k))
        return hot / len(self._recent)

    def reset(self) -> None:
        """Clear the window (e.g. after the system responded)."""
        self._recent.clear()
        self._counts.clear()
