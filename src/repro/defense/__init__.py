"""Complementary defenses the paper discusses around its main scheme.

* :mod:`repro.defense.attack_detector` — online malicious-write-stream
  detection (the paper's ref. [15], Qureshi et al. HPCA'11): watches the
  write stream's address concentration and raises an alarm under
  hammering-style traffic.
* :mod:`repro.defense.adaptive` — detector-driven remapping-rate
  escalation.  §III-B's warning is demonstrable with it: escalating the
  wear-leveling rate defeats RAA/BPA but *accelerates* the Remapping
  Timing Attack.
* :mod:`repro.defense.delayed_write` — the Delayed Write Policy the RBSG
  paper proposes: a small coalescing write buffer in front of the bank, so
  an attacker must touch more distinct lines than the buffer holds before
  any wear reaches PCM.
"""

from repro.defense.adaptive import AdaptiveWearLeveler
from repro.defense.attack_detector import OnlineAttackDetector
from repro.defense.delayed_write import DelayedWriteController

__all__ = [
    "AdaptiveWearLeveler",
    "DelayedWriteController",
    "OnlineAttackDetector",
]
