"""Multi-stage Feistel network with the paper's cubing round function.

Section IV-B / Fig. 7: each stage splits the ``B``-bit input into halves
``(L, R)`` and produces ``(L', R')`` with::

    L' = R XOR (L XOR K)^3      (mod 2**(B/2))
    R' = L

Decryption runs the stages with the key schedule reversed (each stage is
individually invertible: ``L = R'`` and ``R = L' XOR (R' XOR K)^3``).

Odd address widths are supported by *cycle-walking*: the permutation is built
on the next even width and re-applied until the output falls back inside the
domain.  This yields an exact permutation of ``[0, 2**B)`` for any ``B``
(expected <2 walk iterations per call) and keeps every caller oblivious to
the parity of the address width.

Both scalar ``int`` and vectorized :class:`numpy.ndarray` code paths are
provided; the vector path is what the round-granularity simulation engines
use to randomize whole windows of addresses per remapping round.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.util.bitops import mask
from repro.util.rng import SeedLike, as_generator

IntOrArray = Union[int, np.ndarray]

_U64 = np.uint64


def _cube_mod(x: int, modmask: int) -> int:
    """``x**3 mod 2**h`` for scalar ``x`` (``modmask == 2**h - 1``)."""
    return (x * x * x) & modmask


def _cube_mod_vec(x: np.ndarray, modmask: int) -> np.ndarray:
    """Vectorized ``x**3 mod 2**h``; safe for half-widths up to 32 bits.

    Intermediate products are reduced after each multiply so values stay
    below 2**64 (h <= 32 ⇒ x < 2**32 ⇒ x*x < 2**64).
    """
    m = _U64(modmask)
    sq = (x * x) & m
    return (sq * x) & m


class FeistelNetwork:
    """An ``n_stages``-stage Feistel permutation of ``[0, 2**n_bits)``.

    Parameters
    ----------
    n_bits:
        Address width ``B``; the permuted domain is ``[0, 2**B)``.
    keys:
        One key per stage.  Keys are half-width values (``B//2`` bits for
        even ``B``; ``(B+1)//2`` bits internally for odd ``B`` due to
        cycle-walking) — wider values are masked down.

    Use :meth:`random` to draw a fresh key schedule, and :meth:`rekeyed`
    to derive a same-shape network with new keys (what the dynamic Feistel
    network does every remapping round).
    """

    def __init__(self, n_bits: int, keys: Sequence[int]):
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        if len(keys) < 1:
            raise ValueError("at least one stage key is required")
        self.n_bits = n_bits
        self.domain = 1 << n_bits
        # Cycle-walking width: smallest even width >= n_bits.
        self._walk_bits = n_bits if n_bits % 2 == 0 else n_bits + 1
        self._half_bits = self._walk_bits // 2
        self._half_mask = mask(self._half_bits)
        self.keys = tuple(int(k) & self._half_mask for k in keys)
        self._keys_u64 = np.array(self.keys, dtype=_U64)

    # ------------------------------------------------------------- factory

    @classmethod
    def random(
        cls, n_bits: int, n_stages: int, rng: SeedLike = None
    ) -> "FeistelNetwork":
        """Draw a network with ``n_stages`` uniformly random stage keys."""
        gen = as_generator(rng)
        walk_bits = n_bits if n_bits % 2 == 0 else n_bits + 1
        high = 1 << (walk_bits // 2)
        keys = gen.integers(0, high, size=n_stages)
        return cls(n_bits, [int(k) for k in keys])

    def rekeyed(self, rng: SeedLike = None) -> "FeistelNetwork":
        """Return a new network of identical shape with fresh random keys."""
        return FeistelNetwork.random(self.n_bits, self.n_stages, rng)

    @property
    def n_stages(self) -> int:
        """Number of Feistel stages (the paper's security knob ``S``)."""
        return len(self.keys)

    # -------------------------------------------------------- scalar paths

    def _encrypt_once(self, x: int) -> int:
        left = x >> self._half_bits
        right = x & self._half_mask
        for key in self.keys:
            left, right = right ^ _cube_mod(left ^ key, self._half_mask), left
        return (left << self._half_bits) | right

    def _decrypt_once(self, y: int) -> int:
        left = y >> self._half_bits
        right = y & self._half_mask
        for key in reversed(self.keys):
            left, right = right, left ^ _cube_mod(right ^ key, self._half_mask)
        return (left << self._half_bits) | right

    def _encrypt_scalar(self, x: int) -> int:
        if not 0 <= x < self.domain:
            raise ValueError(f"address {x} outside domain [0, {self.domain})")
        y = self._encrypt_once(x)
        while y >= self.domain:  # cycle-walk back into the domain
            y = self._encrypt_once(y)
        return y

    def _decrypt_scalar(self, y: int) -> int:
        if not 0 <= y < self.domain:
            raise ValueError(f"address {y} outside domain [0, {self.domain})")
        x = self._decrypt_once(y)
        while x >= self.domain:
            x = self._decrypt_once(x)
        return x

    # -------------------------------------------------------- vector paths

    def _encrypt_vec(self, x: np.ndarray) -> np.ndarray:
        v = x.astype(_U64, copy=True)
        half = _U64(self._half_bits)
        hmask = _U64(self._half_mask)
        left = v >> half
        right = v & hmask
        for key in self._keys_u64:
            new_left = right ^ _cube_mod_vec(left ^ key, self._half_mask)
            right = left
            left = new_left
        return (left << half) | right

    def _decrypt_vec(self, y: np.ndarray) -> np.ndarray:
        v = y.astype(_U64, copy=True)
        half = _U64(self._half_bits)
        hmask = _U64(self._half_mask)
        left = v >> half
        right = v & hmask
        for key in self._keys_u64[::-1]:
            new_right = left ^ _cube_mod_vec(right ^ key, self._half_mask)
            left = right
            right = new_right
        return (left << half) | right

    def _walk_vec(self, values: np.ndarray, step) -> np.ndarray:
        out = step(values)
        outside = out >= _U64(self.domain)
        while outside.any():
            out[outside] = step(out[outside])
            outside = out >= _U64(self.domain)
        return out

    # ----------------------------------------------------------- public API

    def encrypt(self, x: IntOrArray) -> IntOrArray:
        """Permute address(es) forward: LA → IA in the paper's terms."""
        if isinstance(x, np.ndarray):
            if x.size and (x.min() < 0 or int(x.max()) >= self.domain):
                raise ValueError("addresses outside domain")
            return self._walk_vec(x, self._encrypt_vec)
        return self._encrypt_scalar(int(x))

    def decrypt(self, y: IntOrArray) -> IntOrArray:
        """Invert the permutation: IA → LA."""
        if isinstance(y, np.ndarray):
            if y.size and (y.min() < 0 or int(y.max()) >= self.domain):
                raise ValueError("addresses outside domain")
            return self._walk_vec(y, self._decrypt_vec)
        return self._decrypt_scalar(int(y))

    def permutation(self) -> np.ndarray:
        """Materialize the full permutation table (tests / small domains)."""
        return self.encrypt(np.arange(self.domain, dtype=_U64)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"FeistelNetwork(n_bits={self.n_bits}, n_stages={self.n_stages}, "
            f"keys={self.keys})"
        )
