"""Dynamic Feistel Network (DFN) remapping engine (Section IV-B, Figs. 8-10).

The DFN permutes the ``N``-line logical space with an S-stage Feistel
network whose stage keys are re-randomized every remapping round, so a
timing attacker can never finish recovering a key before it changes.
State (as in the paper):

* ``Gap`` register — the currently-empty slot,
* key arrays ``Kc`` (current round) and ``Kp`` (previous round), realised
  here as two :class:`~repro.core.feistel.FeistelNetwork` instances,
* one ``isRemap`` bit per line,
* one spare slot at index ``N`` used to park data while a permutation cycle
  is walked.

Round protocol.  At a round start the keys rotate (``Kp ← Kc``, fresh
``Kc``), all ``isRemap`` bits clear, and the content of slot 0 is parked in
the spare (``[N] ← [0]``, ``Gap ← 0``).  Each subsequent movement asks
"whose new home is the gap?" (``LOC = DEC_Kc(Gap)``), copies that line's
data from its old home ``ENC_Kp(LOC)`` into the gap, marks
``isRemap[LOC]``, and adopts the vacated old home as the new gap.  The walk
traces one cycle of the slot permutation ``σ = ENC_Kc ∘ DEC_Kp``; it closes
when the wanted data is the parked one, which is then copied out of the
spare (``[Gap] ← [N]``) and the gap returns to ``N``.

**Correctness + endurance corrections (deviations from the paper).**
The paper's Fig. 9 flowchart assumes ``σ`` forms a *single* cycle through
slot 0.  That is false in general — and for the paper's own cubing-Feistel
construction it fails spectacularly: the composition of two independently
keyed networks has *low order*, so ``σ`` decomposes into very many short
cycles (measured here: hundreds at 2^16 lines).  Lines on other cycles
would never be remapped, and the round-end key rotation would silently
corrupt their mapping.  Worse, the obvious fix — walking every cycle
through the spare — writes the spare once per cycle and wears it out
orders of magnitude faster than any data line.  We therefore:

1. walk the **first** cycle (through slot 0) exactly as the paper does,
   parking in the spare — one spare write per round, matching Fig. 9;
2. rotate every **further** cycle as a chain of line *swaps* (one swap per
   remap trigger), the same controller-buffered exchange Security Refresh
   is built on — no spare involvement, two line writes per swap;
3. remap **fixed points** of ``σ`` (``ENC_Kp(la) == ENC_Kc(la)``, which
   the cubing round function makes common) for free: their data already
   sits at its new home, so the trigger sets ``isRemap`` and moves nothing.

Every remap trigger still performs at most one movement (a copy or a
swap), and the paper's Fig. 10 translation rule is preserved, extended by
one register pair: the *displaced* line of an in-progress swap chain reads
from the chain's pivot slot (the analogue of the parked line reading from
the spare).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.feistel import FeistelNetwork
from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import CopyMove, Move, SwapMove


class DynamicFeistelMapper:
    """Key-rotating Feistel permutation with gap-walk / swap-chain remapping.

    Addresses in / slots out are in ``[0, n_lines]`` where slot ``n_lines``
    is the spare.  :meth:`step` performs one remap trigger and returns the
    slot-level movement it requires: a :class:`CopyMove`, a
    :class:`SwapMove`, or ``None`` for a fixed-point remap.

    Parameters
    ----------
    n_lines:
        Logical lines (power of two).
    n_stages:
        Feistel stages ``S`` — the paper's adjustable security level.
    rng:
        Seed / generator for key material.
    """

    def __init__(self, n_lines: int, n_stages: int = 7, rng: SeedLike = None):
        self.n_bits = bit_length_exact(n_lines)
        self.n_lines = n_lines
        self.n_stages = n_stages
        self._rng = as_generator(rng)
        initial = FeistelNetwork.random(self.n_bits, n_stages, self._rng)
        self.feistel_c = initial
        self.feistel_p = initial
        # Boot state: behave as if a round just completed under `initial`.
        self.is_remapped = np.ones(n_lines, dtype=bool)
        self._n_remapped = n_lines
        self.gap = n_lines  # the spare slot
        self.parked_la: Optional[int] = None  # first cycle (spare walk)
        self.displaced_la: Optional[int] = None  # later cycles (swap chain)
        self.displaced_slot: Optional[int] = None
        self.round_count = 0
        self.total_movements = 0

    # ------------------------------------------------------------- mapping

    @property
    def spare_slot(self) -> int:
        """Index of the spare (park) slot."""
        return self.n_lines

    def translate(self, la: int) -> int:
        """LA → IA slot under the current remapping state (Fig. 10)."""
        if not 0 <= la < self.n_lines:
            raise ValueError(f"address {la} outside [0, {self.n_lines})")
        if self.is_remapped[la]:
            return int(self.feistel_c.encrypt(la))
        if la == self.parked_la:
            return self.spare_slot
        if la == self.displaced_la:
            return self.displaced_slot
        return int(self.feistel_p.encrypt(la))

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate` (bounds are the caller's problem).

        The parked and displaced lines are never marked remapped while
        their registers are live, so the two patches below never collide
        with the ``is_remapped`` branch.
        """
        las = np.asarray(las, dtype=np.int64)
        u64 = las.astype(np.uint64)
        remapped = self.is_remapped[las]
        out = np.empty(las.size, dtype=np.int64)
        if remapped.all():  # common case (boot state, round just ended)
            out[:] = np.asarray(self.feistel_c.encrypt(u64)).astype(np.int64)
        else:
            out[remapped] = np.asarray(
                self.feistel_c.encrypt(u64[remapped])
            ).astype(np.int64)
            old = ~remapped
            out[old] = np.asarray(self.feistel_p.encrypt(u64[old])).astype(
                np.int64
            )
        if self.parked_la is not None:
            out[las == self.parked_la] = self.spare_slot
        if self.displaced_la is not None:
            out[las == self.displaced_la] = self.displaced_slot
        return out

    def round_complete(self) -> bool:
        """True when every line has been remapped in the current round."""
        return self._n_remapped == self.n_lines

    def advance_rounds(self, rounds: int) -> None:
        """Jump ``rounds`` whole remapping rounds in one step.

        Rotates the key pair ``rounds`` times (each rotation draws fresh
        key material from this mapper's RNG, exactly as ``_begin_round``
        would) and lands on the round-boundary state: every line remapped
        under the final ``feistel_c``, gap parked at the spare, no line
        parked or displaced.  The analytic fast-forward tier uses this to
        skip the per-trigger cycle walk; ``total_movements`` is the
        caller's responsibility (it knows how many triggers it modelled).
        """
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        for _ in range(rounds):
            self.feistel_p = self.feistel_c
            self.feistel_c = self.feistel_c.rekeyed(self._rng)
        if rounds:
            self.is_remapped[:] = True
            self._n_remapped = self.n_lines
            self.gap = self.n_lines
            self.parked_la = None
            self.displaced_la = None
            self.displaced_slot = None
            self.round_count += rounds

    def fixed_point_fraction(self, sample: int = 1 << 16) -> float:
        """Fraction of lines mapped identically by the old and new keys.

        Fixed points of ``σ = ENC_Kc ∘ DEC_Kp`` remap for free (no data
        movement); the cubing-Feistel composition makes them common, so
        the analytic movement-wear model measures the fraction on a
        sample of the current key pair as its per-round representative.
        """
        probe = np.arange(min(self.n_lines, sample), dtype=np.uint64)
        same = np.asarray(self.feistel_c.encrypt(probe)) == np.asarray(
            self.feistel_p.encrypt(probe)
        )
        return float(same.mean())

    # ------------------------------------------------------------ movement

    def step(self) -> Optional[Move]:
        """Perform one remap trigger; return the movement it requires.

        The mapping state visible through :meth:`translate` is updated
        before returning, consistent with the data layout once the caller
        executes the returned movement.
        """
        self.total_movements += 1
        if self.round_complete():
            return self._begin_round()
        if self.parked_la is not None:
            return self._walk_first_cycle()
        if self.displaced_la is not None:
            return self._chain_step()
        return self._begin_cycle(self._lowest_unremapped())

    # ---- round start + first cycle: the paper's spare-parked gap walk ----

    def _begin_round(self) -> Optional[Move]:
        """Rotate keys, clear isRemap, start with slot 0's resident line."""
        self.feistel_p = self.feistel_c
        self.feistel_c = self.feistel_c.rekeyed(self._rng)
        self.is_remapped[:] = False
        self._n_remapped = 0
        self.round_count += 1
        # Park slot 0's resident line in the spare ([N] <- [0], Gap <- 0),
        # per Fig. 9 — unless slot 0's resident is a fixed point.
        la = int(self.feistel_p.decrypt(0))
        if int(self.feistel_c.encrypt(la)) == 0:
            self._mark(la)
            return None
        self.parked_la = la
        self.gap = 0
        return CopyMove(src=0, dst=self.spare_slot)

    def _walk_first_cycle(self) -> Move:
        loc = int(self.feistel_c.decrypt(self.gap))
        dst = self.gap
        if loc == self.parked_la:
            # Cycle closes: the wanted data sits in the spare.
            src = self.spare_slot
            self.gap = self.spare_slot
            self.parked_la = None
        else:
            src = int(self.feistel_p.encrypt(loc))
            self.gap = src
        self._mark(loc)
        return CopyMove(src=src, dst=dst)

    # ---- further cycles: swap-chain rotation, no spare involvement -------

    def _begin_cycle(self, la: int) -> Optional[Move]:
        """Start remapping the cycle containing line ``la``."""
        old_home = int(self.feistel_p.encrypt(la))
        new_home = int(self.feistel_c.encrypt(la))
        if new_home == old_home:
            # Fixed point: already home under the new keys; no movement.
            self._mark(la)
            return None
        return self._swap_from_pivot(pivot=old_home, la=la, target=new_home)

    def _chain_step(self) -> Move:
        la = self.displaced_la
        target = int(self.feistel_c.encrypt(la))
        return self._swap_from_pivot(
            pivot=self.displaced_slot, la=la, target=target
        )

    def _swap_from_pivot(self, pivot: int, la: int, target: int) -> Move:
        """Swap the pivot slot (holding ``la``'s data) with ``la``'s new home.

        After the swap ``la`` is remapped; the line whose data the pivot
        received becomes the displaced line — unless the pivot happens to
        *be* its new home, which closes the cycle.
        """
        self._mark(la)
        displaced = int(self.feistel_p.decrypt(target))
        if int(self.feistel_c.encrypt(displaced)) == pivot:
            # The incoming data lands exactly at its own new home.
            self._mark(displaced)
            self.displaced_la = None
            self.displaced_slot = None
        else:
            self.displaced_la = displaced
            self.displaced_slot = pivot
        return SwapMove(pa_a=pivot, pa_b=target)

    def _mark(self, la: int) -> None:
        self.is_remapped[la] = True
        self._n_remapped += 1

    def _lowest_unremapped(self) -> int:
        return int(np.argmin(self.is_remapped))

    # -------------------------------------------------------------- oracle

    def mapping_snapshot(self) -> List[int]:
        """Full LA → slot table (tests / small domains)."""
        return [self.translate(la) for la in range(self.n_lines)]
