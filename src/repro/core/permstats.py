"""Permutation statistics for Feistel networks and their compositions.

The library's two key empirical facts about the cubing Feistel network live
here as measurable quantities:

* **fixed-input bias** — for a fixed input, `ENC_K(x0)` over random keys is
  far from uniform at few stages (Fig. 14's mechanism);
* **low composition order** — `ENC_K1 ∘ DEC_K2` decomposes into many short
  cycles (the reason the paper's single-cycle DFN walk needed correction —
  see DESIGN.md).

These functions power the ablation benches, the design docs, and give
library users the instruments to evaluate alternative round functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.feistel import FeistelNetwork
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class CycleStructure:
    """Cycle decomposition of a permutation."""

    n: int  #: domain size
    n_cycles: int
    n_fixed_points: int
    max_cycle: int
    lengths: Dict[int, int]  #: cycle length -> count

    @property
    def mean_cycle(self) -> float:
        return self.n / self.n_cycles if self.n_cycles else 0.0


def cycle_structure(permutation: np.ndarray) -> CycleStructure:
    """Decompose a permutation (given as an index array) into cycles."""
    perm = np.asarray(permutation, dtype=np.int64)
    n = perm.size
    if n and (sorted(perm.tolist()) != list(range(n))):
        raise ValueError("input is not a permutation of [0, n)")
    seen = np.zeros(n, dtype=bool)
    lengths: Dict[int, int] = {}
    n_cycles = fixed = longest = 0
    for start in range(n):
        if seen[start]:
            continue
        n_cycles += 1
        length = 0
        s = start
        while not seen[s]:
            seen[s] = True
            s = int(perm[s])
            length += 1
        lengths[length] = lengths.get(length, 0) + 1
        longest = max(longest, length)
        if length == 1:
            fixed += 1
    return CycleStructure(
        n=n,
        n_cycles=n_cycles,
        n_fixed_points=fixed,
        max_cycle=longest,
        lengths=lengths,
    )


def composition_cycle_structure(
    n_bits: int, n_stages: int, rng: SeedLike = None
) -> CycleStructure:
    """Cycle structure of ``ENC_K1 ∘ DEC_K2`` for fresh random key arrays.

    This is exactly the slot permutation one DFN remapping round must
    realise; compare its ``n_cycles`` with the ~``ln N`` of a uniformly
    random permutation to see how structured the composition is.
    """
    gen = as_generator(rng)
    current = FeistelNetwork.random(n_bits, n_stages, gen)
    previous = FeistelNetwork.random(n_bits, n_stages, gen)
    domain = np.arange(1 << n_bits, dtype=np.uint64)
    perm = current.encrypt(previous.decrypt(domain))
    return cycle_structure(np.asarray(perm, dtype=np.int64))


def fixed_input_bias(
    n_bits: int,
    n_stages: int,
    samples: int = 4000,
    n_bins: int = 64,
    input_value: int = 5,
    rng: SeedLike = None,
) -> float:
    """Max-bin load of ``ENC_K(x0)`` over random keys, relative to uniform.

    1.0 means indistinguishable from uniform binning; the 2-3 stage cubing
    network measures in the 5-15x range.
    """
    if samples < n_bins:
        raise ValueError("samples must be >= n_bins")
    gen = as_generator(rng)
    shift = n_bits - int(np.log2(n_bins))
    if shift < 0:
        raise ValueError("n_bins larger than the domain")
    out = np.empty(samples, dtype=np.int64)
    for i in range(samples):
        network = FeistelNetwork.random(n_bits, n_stages, gen)
        out[i] = network.encrypt(input_value)
    counts = np.bincount(out >> shift, minlength=n_bins)
    return float(counts.max() / (samples / n_bins))


def avalanche_coefficient(
    n_bits: int,
    n_stages: int,
    samples: int = 2000,
    rng: SeedLike = None,
) -> float:
    """Mean fraction of output bits flipped by a one-bit input flip.

    0.5 is ideal diffusion; low-stage cubing networks fall well short,
    another view of why few stages leak structure.
    """
    gen = as_generator(rng)
    network = FeistelNetwork.random(n_bits, n_stages, gen)
    xs = gen.integers(0, 1 << n_bits, size=samples, dtype=np.uint64)
    bit_positions = gen.integers(0, n_bits, size=samples)
    flipped = xs ^ (np.uint64(1) << bit_positions.astype(np.uint64))
    ya = np.asarray(network.encrypt(xs), dtype=np.uint64)
    yb = np.asarray(network.encrypt(flipped), dtype=np.uint64)
    diff = ya ^ yb
    # popcount via bit tricks (numpy has no vectorized popcount pre-2.0).
    total_flips = 0
    value = diff.copy()
    for _ in range(n_bits):
        total_flips += int((value & np.uint64(1)).sum())
        value >>= np.uint64(1)
    return total_flips / (samples * n_bits)
