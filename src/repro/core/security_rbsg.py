"""Security Region-Based Start-Gap — the paper's proposed scheme (Section IV).

Two-level, both levels *dynamic*:

* **Outer level** — Security-Level Adjustable Dynamic Mapping: a
  :class:`~repro.core.dynamic_feistel.DynamicFeistelMapper` transforms
  LA → IA over the whole bank.  Its keys rotate every remapping round, so
  the Remapping Timing Attack can never finish recovering them; the number
  of Feistel stages is the security knob.  One outer remap movement fires
  every ``outer_interval`` writes to the bank.
* **Inner level** — the IA space is divided into ``n_subregions`` equal
  contiguous sub-regions, each wear-leveled by plain Start-Gap
  (:class:`~repro.wearlevel.startgap.StartGapRegion`); one gap movement per
  ``inner_interval`` writes to the sub-region.  Start-Gap is cheap and its
  weak (sequential) remapping rule is harmless here because the outer level
  already randomizes which IA an attacker can reach.

Physical layout: sub-region ``r`` owns ``subregion_size + 1`` physical lines
(its gap line included); one extra physical line at the very end backs the
outer level's spare slot.  Total: ``n_lines + n_subregions + 1`` lines.
(The paper's overhead accounting says the outer and per-sub-region extra
lines total "(S+1) x 256 byte"; the count is actually one per sub-region
plus one for the outer level, i.e. ``R + 1`` lines — an apparent typo we
document here and in :mod:`repro.analysis.overhead`.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.dynamic_feistel import DynamicFeistelMapper
from repro.util.rng import SeedLike, as_generator
from repro.wearlevel.base import (
    CopyMove,
    Move,
    RoundProfile,
    SwapMove,
    WearLeveler,
    grouped_cumcount,
    spread_exact,
)
from repro.wearlevel.startgap import StartGapRegion, gap_walk_wear

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pcm.timing import TimingModel
    from repro.sim.fastforward import TraceSpec


class SecurityRBSG(WearLeveler):
    """Security RBSG: dynamic-Feistel outer level + Start-Gap inner level.

    Parameters
    ----------
    n_lines:
        Logical lines (power of two).
    n_subregions:
        Inner Start-Gap sub-regions; must divide ``n_lines``.
    inner_interval:
        Writes to a sub-region per inner gap movement.
    outer_interval:
        Writes to the bank per outer DFN movement.
    n_stages:
        Feistel stages of the outer DFN (the security level).
    """

    def __init__(
        self,
        n_lines: int,
        n_subregions: int = 512,
        inner_interval: int = 64,
        outer_interval: int = 128,
        n_stages: int = 7,
        rng: SeedLike = None,
    ):
        if n_subregions < 1 or n_lines % n_subregions != 0:
            raise ValueError(
                f"n_subregions ({n_subregions}) must divide n_lines ({n_lines})"
            )
        self.n_lines = n_lines
        self.n_subregions = n_subregions
        self.subregion_size = n_lines // n_subregions
        self.inner_interval = inner_interval
        self.outer_interval = outer_interval
        self.n_stages = n_stages
        gen = as_generator(rng)
        self.outer = DynamicFeistelMapper(n_lines, n_stages=n_stages, rng=gen)
        self.inners = [
            StartGapRegion(self.subregion_size, inner_interval)
            for _ in range(n_subregions)
        ]
        # Layout: R regions of (size+1) slots, then the outer spare line.
        self._region_stride = self.subregion_size + 1
        self._outer_spare_pa = n_subregions * self._region_stride
        self.n_physical = n_lines + n_subregions + 1
        self.outer_write_count = 0

    # ------------------------------------------------------------- mapping

    def _phys_of_ia(self, ia: int) -> int:
        """IA slot (0..N, N = outer spare) to physical line."""
        if ia == self.outer.spare_slot:
            return self._outer_spare_pa
        region = ia // self.subregion_size
        local = ia % self.subregion_size
        return region * self._region_stride + self.inners[region].translate(local)

    def translate(self, la: int) -> int:
        self._check_la(la)
        return self._phys_of_ia(self.outer.translate(la))

    def subregion_of_la(self, la: int) -> int:
        """Sub-region the line currently lives in (spare maps to -1)."""
        ia = self.outer.translate(la)
        if ia == self.outer.spare_slot:
            return -1
        return ia // self.subregion_size

    # -------------------------------------------------------------- writes

    def record_write(self, la: int) -> List[Move]:
        self._check_la(la)
        moves: List[Move] = []
        # Outer level: one DFN movement per outer_interval bank writes.
        self.outer_write_count += 1
        if self.outer_write_count % self.outer_interval == 0:
            step = self.outer.step()
            if isinstance(step, CopyMove):
                moves.append(
                    CopyMove(
                        src=self._phys_of_ia(step.src),
                        dst=self._phys_of_ia(step.dst),
                    )
                )
            elif isinstance(step, SwapMove):
                moves.append(
                    SwapMove(
                        pa_a=self._phys_of_ia(step.pa_a),
                        pa_b=self._phys_of_ia(step.pa_b),
                    )
                )
            # None = fixed-point remap: no data movement needed.
        # Inner level: count the write in the sub-region it lands in
        # (under the post-movement outer mapping).
        ia = self.outer.translate(la)
        if ia != self.outer.spare_slot:
            region = ia // self.subregion_size
            inner_move = self.inners[region].record_write()
            if inner_move is not None:
                base = region * self._region_stride
                src, dst = inner_move
                moves.append(CopyMove(src=base + src, dst=base + dst))
        return moves

    # ------------------------------------------------------- batched API

    def _phys_of_ias(self, ias: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_phys_of_ia` (spare slot handled by patch)."""
        spare = ias == self.outer.spare_slot
        regions = np.where(spare, 0, ias // self.subregion_size)
        starts = np.fromiter(
            (r.start for r in self.inners),
            dtype=np.int64,
            count=self.n_subregions,
        )
        gaps = np.fromiter(
            (r.gap for r in self.inners),
            dtype=np.int64,
            count=self.n_subregions,
        )
        local = (ias % self.subregion_size + starts[regions]) % self.subregion_size
        local += local >= gaps[regions]
        pas = regions * self._region_stride + local
        pas[spare] = self._outer_spare_pa
        return pas

    def translate_many(self, las: np.ndarray) -> np.ndarray:
        return self._phys_of_ias(
            self.outer.translate_many(np.asarray(las, dtype=np.int64))
        )

    def writes_until_next_remap(self) -> int:
        outer_rem = self.outer_interval - (
            self.outer_write_count % self.outer_interval
        )
        inner_min = min(r.writes_until_next_movement for r in self.inners)
        return min(outer_rem, inner_min)

    def consume_chunk(self, las: np.ndarray) -> Tuple[np.ndarray, int]:
        """Exact split: global outer counter, per-sub-region inner counters.

        Writes landing on the outer spare slot advance no inner counter —
        exactly as :meth:`record_write` skips them — so they are excluded
        from the grouped occurrence count.
        """
        if las.size == 0:
            return np.empty(0, dtype=np.int64), 0
        outer_rem = self.outer_interval - (
            self.outer_write_count % self.outer_interval
        )
        limit = min(int(las.size), outer_rem - 1)
        if limit <= 0:
            return np.empty(0, dtype=np.int64), 0
        remaining = np.fromiter(
            (r.writes_until_next_movement for r in self.inners),
            dtype=np.int64,
            count=self.n_subregions,
        )
        # Trigger right at index 0 (the call after an inner remap) needs
        # no scan: one scalar DFN translate tells whether the first write
        # hits a region whose counter is about to fire (spare-slot writes
        # never do).
        first_ia = self.outer.translate(int(las[0]))
        if (first_ia != self.outer.spare_slot
                and remaining[first_ia // self.subregion_size] <= 1):
            return np.empty(0, dtype=np.int64), 0
        # Inner scan-window cap (same rationale as RBSG's consume_chunk);
        # spare-slot writes hit no inner counter, so the bound stays safe
        # (they only stretch the run, never trigger inside it).
        limit = min(limit, max(int(remaining.sum()), 1))
        las = np.asarray(las[:limit], dtype=np.int64)
        ias = self.outer.translate_many(las)
        spare = ias == self.outer.spare_slot
        # Spare-slot writes get group -1: they keep their position in the
        # chunk but never match a region's remaining count.
        regions = np.where(spare, -1, ias // self.subregion_size)
        occ = grouped_cumcount(regions)
        hits = (occ + 1 >= remaining[np.where(spare, 0, regions)]) & ~spare
        trigger = np.nonzero(hits)[0]
        n = int(trigger[0]) if trigger.size else limit
        if n == 0:
            return np.empty(0, dtype=np.int64), 0
        pas = self._phys_of_ias(ias[:n])
        self.outer_write_count += n
        inner_regions = regions[:n][~spare[:n]]
        counts = np.bincount(inner_regions, minlength=self.n_subregions)
        for r in np.nonzero(counts)[0]:
            self.inners[int(r)].write_count += int(counts[r])
        return pas, n

    # -------------------------------------------------- fast-forward API

    def round_wear_profile(
        self, spec: "TraceSpec", writes: int, timing: "TimingModel"
    ) -> Optional[RoundProfile]:
        """Analytic Security-RBSG round: DFN key rotations + inner gap walks.

        The dynamic outer randomizer re-keys every round, so user wear is
        fully smoothed over the physical space under uniform/sequential
        traffic; zipf clips ``writes`` to roughly one outer round and
        snapshots the current mapping.  Outer movement wear is ~2 line
        writes per non-fixed-point trigger (swap chains write the pivot
        and the target), with the fixed-point fraction measured on the
        current key pair (:meth:`DynamicFeistelMapper.
        fixed_point_fraction`); the spare line takes one park write per
        completed round.  Inner Start-Gap movement wear is the exact gap
        walk per sub-region.  RAA is declined — the chunk engine and
        :mod:`repro.sim.roundsim` own that regime.
        """
        if spec.kind == "raa":
            return None
        writes = int(writes)
        n = self.n_lines
        stride = self._region_stride
        if spec.kind == "zipf":
            writes = min(writes, n * self.outer_interval)
        interval = self.outer_interval
        t_out = (self.outer_write_count + writes) // interval - (
            self.outer_write_count // interval
        )
        rounds = t_out // n
        move_frac = 1.0 - self.outer.fixed_point_fraction()
        rates = np.zeros(self.n_physical)
        counts = np.zeros(self.n_physical, dtype=np.int64)
        data_slots = self.n_subregions * stride
        rates[:data_slots] += 2.0 * move_frac * t_out / data_slots
        counts[self._outer_spare_pa] += rounds
        if spec.kind == "zipf":
            weights = spec.weights()
            assert weights is not None
            ias = self.outer.translate_many(np.arange(n, dtype=np.int64))
            spare = ias == self.outer.spare_slot
            region_q = np.bincount(
                np.where(spare, 0, ias // self.subregion_size),
                weights=np.where(spare, 0.0, weights),
                minlength=self.n_subregions,
            )
            total_q = float(region_q.sum())
            if total_q > 0:
                region_q = region_q / total_q
            user = np.zeros(self.n_physical)
            np.add.at(
                user,
                self.translate_many(np.arange(n, dtype=np.int64)),
                weights,
            )
            rates += user * writes
        else:
            region_q = np.full(self.n_subregions, 1.0 / self.n_subregions)
            if spec.kind == "uniform":
                rates += writes / self.n_physical
            else:  # sequential: deterministic aggregate, DFN-smoothed
                counts += spread_exact(
                    np.full(self.n_physical, writes / self.n_physical), writes
                )
        region_writes = spread_exact(region_q * writes, writes)
        inner_movements = 0
        for index, region in enumerate(self.inners):
            movements = region.pending_movements(int(region_writes[index]))
            inner_movements += movements
            base = index * stride
            counts[base : base + stride] += gap_walk_wear(
                stride, region.gap, movements
            )
        elapsed = writes * timing.write_latency(spec.data)
        elapsed += (
            move_frac * t_out * timing.swap_latency(spec.data, spec.data)
        )
        elapsed += inner_movements * timing.copy_latency(spec.data)
        return RoundProfile(
            writes,
            elapsed,
            wear_counts=counts,
            wear_rates=rates,
            meta={
                "rounds": rounds,
                "triggers": t_out,
                "region_writes": region_writes,
            },
        )

    def apply_round(self, profile: RoundProfile) -> float:
        self.outer_write_count += profile.writes
        rounds = profile.meta["rounds"]
        triggers = profile.meta["triggers"]
        assert isinstance(rounds, int) and isinstance(triggers, int)
        self.outer.advance_rounds(rounds)
        self.outer.total_movements += triggers
        region_writes = profile.meta["region_writes"]
        assert isinstance(region_writes, np.ndarray)
        for region, w_r in zip(self.inners, region_writes):
            movements = region.pending_movements(int(w_r))
            region.write_count += int(w_r)
            region.advance_movements(movements)
        return profile.elapsed_ns

    # ------------------------------------------------------------- queries

    @property
    def dfn_round_count(self) -> int:
        """Completed + in-progress outer remapping rounds so far."""
        return self.outer.round_count
