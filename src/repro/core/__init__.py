"""The paper's primary contribution and its cryptographic building blocks.

* :mod:`repro.core.feistel` — multi-stage Feistel network with the cubing
  round function (Section IV-B, Fig. 7), usable as RBSG's static randomizer
  or as the key-rotated permutation inside the dynamic Feistel network.
* :mod:`repro.core.randomizer` — the alternative static randomizer RBSG
  mentions (random invertible binary matrix).
* :mod:`repro.core.dynamic_feistel` — the Dynamic Feistel Network (DFN)
  remapping engine (Figs. 8-10): gap-line walk, ``Kc``/``Kp`` key arrays and
  per-line ``isRemap`` bits.
* :mod:`repro.core.security_rbsg` — Security RBSG itself: DFN outer level
  over the whole bank + per-sub-region Start-Gap inner level.
"""

from repro.core.dynamic_feistel import DynamicFeistelMapper
from repro.core.feistel import FeistelNetwork
from repro.core.randomizer import RandomInvertibleMatrix
from repro.core.security_rbsg import SecurityRBSG

__all__ = [
    "DynamicFeistelMapper",
    "FeistelNetwork",
    "RandomInvertibleMatrix",
    "SecurityRBSG",
]
