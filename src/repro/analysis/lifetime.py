"""Closed-form lifetime models for every scheme/attack pair in the paper.

All models return nanoseconds of device lifetime and use the paper's time
accounting: one write occupies one SET pulse (``config.set_ns``), which is
what makes the models land on the paper's quoted numbers:

* RBSG under RTA, recommended config → 478 s (paper: 478 s),
* RBSG under RAA → 27435x the RTA lifetime (paper: 27435x),
* ideal lifetime → 4.63e3 days (consistent with Figs. 12-15's ceiling),
* two-level SR under RAA → ≈0.68 of ideal ≈ 105 months (paper: 105 months).

Trend note: the paper's §V-A prose claims RBSG fails *faster* under RTA as
the remapping interval grows, while §III-B says increasing the wear-leveling
*rate* (i.e. shrinking the interval) accelerates RTA.  The two statements
conflict; this model follows §III-B's detection-cost formula (which exactly
reproduces the 478 s / 27435x headline): smaller interval ⇒ cheaper
detection ⇒ shorter lifetime.  See DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.analysis.ballsbins import dwells_to_max_load
from repro.config import PCMConfig, RBSGConfig, SecurityRBSGConfig, SRConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import FastTrace
    from repro.wearlevel.base import WearLeveler


def ideal_lifetime_ns(pcm: PCMConfig) -> float:
    """Perfectly uniform wear: every line absorbs the full endurance."""
    return pcm.ideal_lifetime_ns


def raa_nowl_lifetime_ns(pcm: PCMConfig) -> float:
    """RAA against no wear leveling: one line eats every write."""
    return pcm.endurance * pcm.set_ns


# --------------------------------------------------------------------- RBSG


def raa_rbsg_lifetime_ns(pcm: PCMConfig, cfg: RBSGConfig) -> float:
    """RAA against RBSG (the line of Fig. 11).

    The hammered LA's physical slot shifts by one per Start-Gap round, so
    each of the region's ``N/R + 1`` slots receives the full attack stream
    once per rotation; a slot dies after absorbing ``E`` writes, which takes
    ``E * (N/R + 1)`` attack writes.  Independent of the remap interval.
    """
    region_slots = pcm.n_lines // cfg.n_regions + 1
    return pcm.endurance * region_slots * pcm.set_ns


def rta_rbsg_detection_writes(pcm: PCMConfig, cfg: RBSGConfig) -> float:
    """Writes the RTA spends recovering the address sequence (§III-B step 6).

    ``(N + (psi - 1) * N/R) * log2(N)``: one full-memory labelling sweep plus
    the re-synchronisation writes, per address bit.
    """
    n = pcm.n_lines
    region = n // cfg.n_regions
    return (n + (cfg.remap_interval - 1) * region) * math.log2(n)


def rta_rbsg_lifetime_ns(pcm: PCMConfig, cfg: RBSGConfig) -> float:
    """RTA against RBSG (the bars of Fig. 11).

    Detection cost plus ``E`` wear writes, all landing on one physical slot
    (the attacker always writes the LA currently resident there).
    """
    writes = rta_rbsg_detection_writes(pcm, cfg) + pcm.endurance
    return writes * pcm.set_ns


# ------------------------------------------------------------ two-level SR


def _sr_dwell_writes(pcm: PCMConfig, n_subregions: int, inner_interval: int) -> float:
    """Writes a hammered LA delivers to one slot before the inner SR moves it.

    One inner round of its sub-region: ``(N/R) * inner_interval`` writes.
    """
    return (pcm.n_lines / n_subregions) * inner_interval


def raa_two_level_sr_lifetime_ns(pcm: PCMConfig, cfg: SRConfig) -> float:
    """RAA against two-level SR (Fig. 13).

    Each dwell parks ``D = (N/R) * psi_inner`` writes on one uniformly
    random slot (inner key XOR per inner round; outer remap re-randomises
    the sub-region each outer round) — balls-into-bins with ball weight
    ``D`` over all ``N`` lines; death when the max-loaded bin accumulates
    ``E / D`` balls.
    """
    dwell = _sr_dwell_writes(pcm, cfg.n_subregions, cfg.inner_interval)
    balls_needed = dwells_to_max_load(pcm.endurance / dwell, pcm.n_lines)
    return balls_needed * dwell * pcm.set_ns


def bpa_two_level_sr_lifetime_ns(pcm: PCMConfig, cfg: SRConfig) -> float:
    """BPA against two-level SR — "RAA has been proved to have the same
    effect with BPA" (§V-B): random-address hammering lands on the same
    balls-into-bins process."""
    return raa_two_level_sr_lifetime_ns(pcm, cfg)


def rta_two_level_sr_lifetime_ns(
    pcm: PCMConfig, cfg: SRConfig, detection_factor: float = 0.75
) -> float:
    """RTA against two-level SR (Fig. 12).

    Per outer round the attacker spends ``detection_factor * N * log2(R)``
    writes re-detecting the outer key's high bits (paper §III-E: between
    ``N/2 * log2 R`` and ``N * log2 R``; 0.75 is the mean) and sprays the
    rest onto the target sub-region, whose inner SR spreads them evenly over
    its ``N/R`` lines.  The sub-region dies after absorbing
    ``(N/R) * E`` attack writes.
    """
    n = pcm.n_lines
    round_writes = n * cfg.outer_interval
    detect_writes = detection_factor * n * math.log2(cfg.n_subregions)
    if detect_writes >= round_writes:
        raise ValueError(
            "detection cannot finish within an outer round for this config"
        )
    attack_fraction = 1.0 - detect_writes / round_writes
    subregion_capacity = (n / cfg.n_subregions) * pcm.endurance
    total_writes = subregion_capacity / attack_fraction
    return total_writes * pcm.set_ns


# ------------------------------------------------------------ Security RBSG


def raa_security_rbsg_lifetime_ns(
    pcm: PCMConfig, cfg: SecurityRBSGConfig
) -> float:
    """RAA against Security RBSG with an *ideal* (uniform) outer randomizer
    (Fig. 15's model; the measured stage-count sensitivity is Fig. 14).

    Per outer round the hammered LA lands at a pseudo-random slot and the
    inner Start-Gap walks it through a contiguous window of
    ``W = R * psi_outer / psi_inner`` slots, delivering
    ``D = (N/R + 1) * psi_inner`` writes per slot.  Marginally each slot is
    covered with probability ``W / N`` per round; the window's contiguity
    only reduces within-round collisions, so the balls-into-bins max-load
    estimate over per-slot *coverage events* (weight ``D``) applies with
    a ``(1 - W/N)`` variance correction — the source of the (mild) "longer
    outer interval ⇒ longer lifetime" trend the paper reports.
    """
    n = pcm.n_lines
    subregion = n // cfg.n_subregions
    dwell = (subregion + 1) * cfg.inner_interval
    window = max(1.0, cfg.n_subregions * cfg.outer_interval / cfg.inner_interval)
    # A window longer than its sub-region laps it: every slot is covered
    # and receives `laps` dwells per round.
    laps = max(1.0, window / subregion)
    window = min(window, float(subregion))
    coverage = window / n
    hits_needed = pcm.endurance / (dwell * laps)
    # Solve mu + sqrt(2 mu (1 - coverage) ln N) = hits_needed  for mu.
    shrink = max(1e-12, 1.0 - coverage)
    b = math.sqrt(2.0 * shrink * math.log(n))
    x = (-b + math.sqrt(b * b + 4.0 * hits_needed)) / 2.0
    mu = x * x
    rounds = mu / coverage
    round_writes = n * cfg.outer_interval
    return rounds * round_writes * pcm.set_ns


# ---------------------------------------------------- measured lifetime


def measured_lifetime_ns(
    scheme: "WearLeveler",
    pcm: PCMConfig,
    trace: "FastTrace",
    max_writes: int = 10_000_000,
    fast: bool = True,
    fast_forward: str = "auto",
    n_shards: "Optional[int]" = None,
    memmap_dir: "Optional[str]" = None,
) -> float:
    """Lifetime *measured* on the exact simulator, not modelled.

    Drives ``scheme`` with ``trace`` until the first line failure and
    returns the elapsed nanoseconds — the empirical counterpart of the
    closed-form models above, for the scheme/workload pairs they do not
    cover.  ``fast=True`` (default) uses the chunked vectorized engine,
    which is bit-identical to the scalar path (``fast=False``) and falls
    back to it automatically where chunking does not apply.

    ``fast_forward`` selects the third, analytic tier when ``trace`` is a
    :class:`~repro.sim.fastforward.TraceSpec`: ``"auto"`` (default)
    engages it only at paper scale, where it is within the documented
    error bound of the closed forms above (see docs/performance.md) and
    the chunk engine would take hours; ``"off"`` forces chunk-exact;
    ``"analytic"`` forces the analytic tier regardless of scale.  At
    small scale ``"auto"`` falls through to the chunk engine, keeping the
    historical bit-exact behaviour.  ``n_shards``/``memmap_dir`` put the
    physical array on a :class:`~repro.pcm.sharded.ShardedPCMArray` for
    devices too large for one resident allocation.

    Raises ``RuntimeError`` if the device survives ``max_writes`` user
    writes — a lifetime measurement must end in a failure.
    """
    from repro.sim.engine import run_trace, run_trace_fast
    from repro.sim.fastforward import TraceSpec
    from repro.sim.memory_system import MemoryController
    from repro.sim.trace import trace_entries

    controller = MemoryController(
        scheme, pcm, n_shards=n_shards, memmap_dir=memmap_dir
    )
    if not fast and not isinstance(trace, TraceSpec):
        trace = trace_entries(trace)
    if fast:
        result = run_trace_fast(
            controller, trace, max_writes=max_writes, fast_forward=fast_forward
        )
    else:
        result = run_trace(controller, trace, max_writes=max_writes)
    if not result.failed:
        raise RuntimeError(
            f"device did not fail within {max_writes} writes; "
            "increase max_writes or reduce endurance for this experiment"
        )
    return result.elapsed_ns
