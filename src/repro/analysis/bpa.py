"""Analytic Birthday-Paradox-Attack models (Seznec 2009; paper §II-B).

BPA hammers randomly chosen logical addresses, each for roughly one Line
Vulnerability Factor (LVF) worth of writes — the longest a line can sit at
one physical slot.  Against the Start-Gap family every dwell deposits
``LVF`` writes on one *uniformly random* (thanks to the static randomizer)
physical slot, which is the same balls-into-bins process as RAA against
Security Refresh:

    lifetime = dwells_to_max_load(E / LVF, N) * LVF * t_write

The models quantify the paper's §II-B rule of thumb — to resist BPA "the
LVF should be dozen times less than the endurance" — and provide the
BPA column of the attack/defense matrix at paper scale.
"""

from __future__ import annotations

from repro.analysis.ballsbins import dwells_to_max_load
from repro.config import PCMConfig, RBSGConfig


def line_vulnerability_factor(pcm: PCMConfig, cfg: RBSGConfig) -> float:
    """Writes a hammered line can absorb before RBSG moves it.

    One full region rotation: ``(N/R + 1) * psi`` region writes.
    """
    return (pcm.n_lines / cfg.n_regions + 1) * cfg.remap_interval


def bpa_rbsg_lifetime_ns(pcm: PCMConfig, cfg: RBSGConfig) -> float:
    """BPA against RBSG: random-LA dwells of one LVF each, uniform slots."""
    lvf = line_vulnerability_factor(pcm, cfg)
    if lvf >= pcm.endurance:
        # A single dwell kills a line: expected draws until that line is
        # chosen dominate; the device dies after ~1 dwell per the paper's
        # "LVF should be less than the endurance" criterion.
        return lvf * pcm.set_ns
    balls = dwells_to_max_load(pcm.endurance / lvf, pcm.n_lines)
    return balls * lvf * pcm.set_ns


def bpa_safe_region_count(pcm: PCMConfig, remap_interval: int,
                          margin: float = 8.0) -> int:
    """Smallest region count keeping LVF ``margin``× below the endurance.

    The paper (§V-A): "to resist the BPA, there must be no more than
    ``Endurance/(8 * psi)`` lines in a region" — i.e. ``margin = 8``.
    """
    if margin <= 0:
        raise ValueError("margin must be positive")
    max_region_lines = pcm.endurance / (margin * remap_interval)
    regions = 1
    while pcm.n_lines / regions > max_region_lines:
        regions *= 2
    return regions
