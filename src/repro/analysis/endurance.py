"""Endurance-variation statistics: the weakest line bounds the device.

With per-line endurance ``~ N(E, cv*E)`` over ``N`` lines, uniform traffic
kills the device when the *minimum* endurance line exhausts.  The expected
minimum of ``N`` normals follows the Gumbel extreme-value approximation

    E_min ≈ E − cv·E · (b_N + γ/a_N),
    a_N = sqrt(2 ln N),
    b_N = a_N − (ln ln N + ln 4π) / (2 a_N),   γ = 0.5772…

(within a few percent for N ≥ 2¹⁰, validated by Monte Carlo in the tests),
which explains the §I-adjacent observation that perfect wear leveling alone
cannot reach nominal lifetime on a varied part — and quantifies how much
margin line sparing must recover.
"""

from __future__ import annotations

import math

from repro.config import PCMConfig

_EULER_GAMMA = 0.5772156649015329


def expected_min_endurance(pcm: PCMConfig, cv: float) -> float:
    """Approximate expected weakest-line endurance under variation ``cv``."""
    if cv < 0:
        raise ValueError("cv must be >= 0")
    if cv == 0 or pcm.n_lines < 2:
        return pcm.endurance
    n = pcm.n_lines
    a = math.sqrt(2.0 * math.log(n))
    b = a - (math.log(math.log(n)) + math.log(4.0 * math.pi)) / (2.0 * a)
    deviation = cv * pcm.endurance * (b + _EULER_GAMMA / a)
    floor = max(1.0, 0.01 * pcm.endurance)  # matches PCMArray's clipping
    return max(floor, pcm.endurance - deviation)


def uniform_lifetime_fraction(pcm: PCMConfig, cv: float) -> float:
    """Fraction of nominal lifetime reachable by perfect leveling.

    Under ideal wear leveling every line wears at the same rate, so the
    device ends at ``E_min / E`` of its nominal write budget.
    """
    return expected_min_endurance(pcm, cv) / pcm.endurance


def spares_to_recover(pcm: PCMConfig, cv: float, target_fraction: float) -> int:
    """Spare lines needed so expected failures before ``target_fraction``
    of nominal per-line wear are absorbed.

    Uses the normal tail: lines weaker than ``target_fraction·E`` must be
    spared out; their expected count is ``N · Φ((target−1)/cv)``.
    """
    if not 0 < target_fraction <= 1:
        raise ValueError("target_fraction must be in (0, 1]")
    if cv < 0:
        raise ValueError("cv must be >= 0")
    if cv == 0:
        return 0
    z = (target_fraction - 1.0) / cv
    tail = 0.5 * math.erfc(-z / math.sqrt(2.0))
    return math.ceil(pcm.n_lines * tail)
