"""Hardware overhead model of Security RBSG (paper Section V-C3).

Storage:

* registers: ``(S+1)*B + log2(psi_outer)`` bits for the outer level (Gap,
  the Kc/Kp arrays, the write counter) plus
  ``R * (2*log2(N/R) + log2(psi_inner))`` bits for the per-sub-region
  Start/Gap registers and write counters — about 2 KB for the recommended
  1 GB-bank configuration, matching the paper;
* spare PCM lines: one per sub-region plus one for the outer level,
  ``(R+1) * line_bytes``  (the paper prints "(S+1) x 256 byte", an apparent
  typo — spare lines scale with sub-regions, not Feistel stages);
* isRemap SRAM: one bit per line = ``N`` bits (0.5 MB at 2^22 lines; the
  paper's value matches, its "log2(N) bit" formula is another typo).

Logic: one cubing circuit per stage at ``(3/8) * B^2`` gates (a squarer at
``B^2/2`` plus a multiplier at ``B^2``, scaled per the paper's source),
``(3/8) * S * B^2`` gates total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import PCMConfig, SecurityRBSGConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import FastTrace, SimulationResult
    from repro.wearlevel.base import WearLeveler


@dataclass(frozen=True)
class HardwareOverhead:
    """Storage and logic costs of one Security RBSG instance."""

    register_bits: int
    spare_lines: int
    spare_bytes: int
    isremap_sram_bits: int
    cubing_gates: int

    @property
    def register_bytes(self) -> float:
        return self.register_bits / 8.0

    @property
    def isremap_sram_bytes(self) -> float:
        return self.isremap_sram_bits / 8.0


def security_rbsg_overhead(
    pcm: PCMConfig, cfg: SecurityRBSGConfig
) -> HardwareOverhead:
    """Evaluate the §V-C3 overhead formulas for a configuration."""
    n = pcm.n_lines
    b = pcm.address_bits
    r = cfg.n_subregions
    subregion = n // r
    outer_bits = (cfg.n_stages + 1) * b + math.ceil(math.log2(cfg.outer_interval))
    inner_bits = r * (
        2 * math.ceil(math.log2(subregion))
        + math.ceil(math.log2(cfg.inner_interval))
    )
    gates = (3 * cfg.n_stages * b * b) // 8
    return HardwareOverhead(
        register_bits=outer_bits + inner_bits,
        spare_lines=r + 1,
        spare_bytes=(r + 1) * pcm.line_bytes,
        isremap_sram_bits=n,
        cubing_gates=gates,
    )


# ------------------------------------------------- measured write cost


def measured_write_overhead(
    scheme: "WearLeveler",
    pcm: PCMConfig,
    trace: "FastTrace",
    max_writes: int,
    fast: bool = True,
) -> "SimulationResult":
    """Write overhead *measured* on the exact simulator.

    Drives ``scheme`` with up to ``max_writes`` writes of ``trace`` and
    returns the :class:`~repro.sim.engine.SimulationResult`, whose
    ``write_amplification`` (physical writes per user write) is the
    empirical counterpart of the hardware table above: it counts the
    actual remap movements the workload triggered.  ``fast=True``
    (default) uses the chunked vectorized engine — bit-identical to the
    scalar path, with automatic fallback where chunking does not apply.
    """
    from repro.sim.engine import run_trace, run_trace_fast
    from repro.sim.memory_system import MemoryController
    from repro.sim.trace import trace_entries

    controller = MemoryController(scheme, pcm, raise_on_failure=False)
    if not fast:
        trace = trace_entries(trace)
    driver = run_trace_fast if fast else run_trace
    return driver(controller, trace, max_writes=max_writes)
