"""Hardware overhead model of Security RBSG (paper Section V-C3).

Storage:

* registers: ``(S+1)*B + log2(psi_outer)`` bits for the outer level (Gap,
  the Kc/Kp arrays, the write counter) plus
  ``R * (2*log2(N/R) + log2(psi_inner))`` bits for the per-sub-region
  Start/Gap registers and write counters — about 2 KB for the recommended
  1 GB-bank configuration, matching the paper;
* spare PCM lines: one per sub-region plus one for the outer level,
  ``(R+1) * line_bytes``  (the paper prints "(S+1) x 256 byte", an apparent
  typo — spare lines scale with sub-regions, not Feistel stages);
* isRemap SRAM: one bit per line = ``N`` bits (0.5 MB at 2^22 lines; the
  paper's value matches, its "log2(N) bit" formula is another typo).

Logic: one cubing circuit per stage at ``(3/8) * B^2`` gates (a squarer at
``B^2/2`` plus a multiplier at ``B^2``, scaled per the paper's source),
``(3/8) * S * B^2`` gates total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import PCMConfig, SecurityRBSGConfig


@dataclass(frozen=True)
class HardwareOverhead:
    """Storage and logic costs of one Security RBSG instance."""

    register_bits: int
    spare_lines: int
    spare_bytes: int
    isremap_sram_bits: int
    cubing_gates: int

    @property
    def register_bytes(self) -> float:
        return self.register_bits / 8.0

    @property
    def isremap_sram_bytes(self) -> float:
        return self.isremap_sram_bits / 8.0


def security_rbsg_overhead(
    pcm: PCMConfig, cfg: SecurityRBSGConfig
) -> HardwareOverhead:
    """Evaluate the §V-C3 overhead formulas for a configuration."""
    n = pcm.n_lines
    b = pcm.address_bits
    r = cfg.n_subregions
    subregion = n // r
    outer_bits = (cfg.n_stages + 1) * b + math.ceil(math.log2(cfg.outer_interval))
    inner_bits = r * (
        2 * math.ceil(math.log2(subregion))
        + math.ceil(math.log2(cfg.inner_interval))
    )
    gates = (3 * cfg.n_stages * b * b) // 8
    return HardwareOverhead(
        register_bits=outer_bits + inner_bits,
        spare_lines=r + 1,
        spare_bytes=(r + 1) * pcm.line_bytes,
        isremap_sram_bits=n,
        cubing_gates=gates,
    )
