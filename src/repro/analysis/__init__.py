"""Analytic models: lifetimes, max-load bounds, security sizing, HW overhead.

The lifetime models are closed-form counterparts of the simulation engines,
validated two ways: against the exact per-write simulator at small scale
(tests), and against the paper's own headline numbers at full scale
(478 s / 27435x for RBSG under RTA/RAA, ~105 months for two-level SR under
RAA, 4.6e3 days ideal — see EXPERIMENTS.md).
"""

from repro.analysis.ballsbins import (
    dwells_to_max_load,
    expected_max_load,
)
from repro.analysis.bpa import (
    bpa_rbsg_lifetime_ns,
    bpa_safe_region_count,
    line_vulnerability_factor,
)
from repro.analysis.lifetime import (
    bpa_two_level_sr_lifetime_ns,
    ideal_lifetime_ns,
    measured_lifetime_ns,
    raa_nowl_lifetime_ns,
    raa_rbsg_lifetime_ns,
    raa_security_rbsg_lifetime_ns,
    raa_two_level_sr_lifetime_ns,
    rta_rbsg_detection_writes,
    rta_rbsg_lifetime_ns,
    rta_two_level_sr_lifetime_ns,
)
from repro.analysis.endurance import (
    expected_min_endurance,
    spares_to_recover,
    uniform_lifetime_fraction,
)
from repro.analysis.overhead import (
    HardwareOverhead,
    measured_write_overhead,
    security_rbsg_overhead,
)
from repro.analysis.resilience import (
    CampaignResult,
    SideChannelProbe,
    run_fault_campaign,
    side_channel_separation_ns,
    sweep_fault_rates,
    verify_retry_side_channel,
)
from repro.analysis.tradeoff import (
    DesignPoint,
    evaluate_design,
    explore_design_space,
    pareto_front,
    recommend,
)
from repro.analysis.security import (
    key_detection_writes,
    min_secure_stages,
    remapping_round_writes,
)

__all__ = [
    "CampaignResult",
    "DesignPoint",
    "HardwareOverhead",
    "SideChannelProbe",
    "run_fault_campaign",
    "side_channel_separation_ns",
    "sweep_fault_rates",
    "verify_retry_side_channel",
    "evaluate_design",
    "explore_design_space",
    "pareto_front",
    "recommend",
    "bpa_rbsg_lifetime_ns",
    "bpa_safe_region_count",
    "bpa_two_level_sr_lifetime_ns",
    "line_vulnerability_factor",
    "dwells_to_max_load",
    "expected_max_load",
    "expected_min_endurance",
    "spares_to_recover",
    "uniform_lifetime_fraction",
    "ideal_lifetime_ns",
    "measured_lifetime_ns",
    "measured_write_overhead",
    "key_detection_writes",
    "min_secure_stages",
    "raa_nowl_lifetime_ns",
    "raa_rbsg_lifetime_ns",
    "raa_security_rbsg_lifetime_ns",
    "raa_two_level_sr_lifetime_ns",
    "remapping_round_writes",
    "rta_rbsg_detection_writes",
    "rta_rbsg_lifetime_ns",
    "rta_two_level_sr_lifetime_ns",
    "security_rbsg_overhead",
]
