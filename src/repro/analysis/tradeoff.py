"""Design-space advisor: pick a Security RBSG configuration.

Given a device and constraints, enumerate (sub-regions, inner interval,
outer interval, stages) candidates, score each on the three axes the paper
trades off (§IV-B, §V-C):

* **security** — the stage count must keep the DFN keys undetectable
  within one remapping round (``S·B > ψ_outer``), with a configurable
  safety factor;
* **lifetime** — RAA lifetime from the analytic model, as a fraction of
  ideal;
* **overhead** — wear-leveling write amplification (``≈ 1/ψᵢ + 1/ψₒ``)
  must stay inside the §II-A budget (1 % by default), plus the register /
  logic costs from the §V-C3 model.

Returns the feasible set sorted by lifetime, and the Pareto front over
(lifetime, register bits, gates).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.lifetime import (
    ideal_lifetime_ns,
    raa_security_rbsg_lifetime_ns,
)
from repro.analysis.overhead import HardwareOverhead, security_rbsg_overhead
from repro.analysis.security import is_secure, min_secure_stages
from repro.config import PCMConfig, SecurityRBSGConfig


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated Security RBSG configuration."""

    config: SecurityRBSGConfig
    secure: bool
    lifetime_fraction: float  #: RAA lifetime / ideal lifetime
    write_overhead: float  #: extra physical writes per user write
    overhead: HardwareOverhead

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (lifetime ↑, registers ↓, gates ↓)."""
        at_least = (
            self.lifetime_fraction >= other.lifetime_fraction
            and self.overhead.register_bits <= other.overhead.register_bits
            and self.overhead.cubing_gates <= other.overhead.cubing_gates
        )
        strictly = (
            self.lifetime_fraction > other.lifetime_fraction
            or self.overhead.register_bits < other.overhead.register_bits
            or self.overhead.cubing_gates < other.overhead.cubing_gates
        )
        return at_least and strictly


def evaluate_design(
    pcm: PCMConfig,
    config: SecurityRBSGConfig,
    security_factor: float = 1.0,
) -> DesignPoint:
    """Score one configuration on security / lifetime / overhead."""
    secure = is_secure(
        pcm, config.n_stages, int(config.outer_interval * security_factor)
    )
    lifetime = raa_security_rbsg_lifetime_ns(pcm, config) / ideal_lifetime_ns(
        pcm
    )
    write_overhead = 1.0 / config.inner_interval + 1.0 / config.outer_interval
    return DesignPoint(
        config=config,
        secure=secure,
        lifetime_fraction=lifetime,
        write_overhead=write_overhead,
        overhead=security_rbsg_overhead(pcm, config),
    )


def explore_design_space(
    pcm: PCMConfig,
    subregions: Sequence[int] = (256, 512, 1024),
    inner_intervals: Sequence[int] = (16, 32, 64, 128),
    outer_intervals: Sequence[int] = (32, 64, 128, 256),
    max_write_overhead: float = 0.01,
    security_factor: float = 1.0,
) -> List[DesignPoint]:
    """Enumerate feasible designs, most durable first.

    A design is feasible when it is secure at its (minimal sufficient)
    stage count and its write overhead fits the budget.  The stage count
    is auto-sized to ``min_secure_stages`` for each outer interval.
    """
    feasible: List[DesignPoint] = []
    for r in subregions:
        if pcm.n_lines % r != 0:
            continue
        for inner in inner_intervals:
            for outer in outer_intervals:
                stages = min_secure_stages(
                    pcm, int(outer * security_factor)
                )
                config = SecurityRBSGConfig(r, inner, outer, stages)
                point = evaluate_design(pcm, config, security_factor)
                if point.secure and point.write_overhead <= max_write_overhead:
                    feasible.append(point)
    feasible.sort(key=lambda p: p.lifetime_fraction, reverse=True)
    return feasible


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset on (lifetime ↑, registers ↓, gates ↓)."""
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    front.sort(key=lambda p: p.lifetime_fraction, reverse=True)
    return front


def recommend(
    pcm: PCMConfig,
    max_write_overhead: float = 0.01,
    security_factor: float = 1.0,
) -> DesignPoint:
    """The single most durable feasible design under the default sweep."""
    feasible = explore_design_space(
        pcm,
        max_write_overhead=max_write_overhead,
        security_factor=security_factor,
    )
    if not feasible:
        raise ValueError(
            "no feasible design: relax the write-overhead budget or the "
            "security factor"
        )
    return feasible[0]
