"""Max-load balls-into-bins estimates for randomized wear leveling.

A scheme that repeatedly re-places an attacked line at a uniformly random
slot turns a Repeated Address Attack into balls-into-bins: each "dwell"
(the writes delivered while the mapping holds still) is a ball of weight
``D`` writes, and the device dies when some bin's total reaches the
endurance.  For ``m`` balls in ``n`` bins with ``mu = m/n >> ln n``, the
classical heavily-loaded bound gives

    max_load ≈ mu + sqrt(2 * mu * ln n).

:func:`dwells_to_max_load` inverts this: how many balls until the maximum
bin holds ``target`` balls — the quantity lifetime models need.
"""

from __future__ import annotations

import math


def expected_max_load(n_balls: float, n_bins: int) -> float:
    """Expected maximum bin occupancy after throwing ``n_balls`` uniformly.

    Uses the heavily-loaded regime approximation
    ``mu + sqrt(2 mu ln n)`` with ``mu = n_balls / n_bins``; accurate when
    ``mu`` exceeds ``ln n`` (always the case in these lifetime models).
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if n_balls < 0:
        raise ValueError("n_balls must be non-negative")
    if n_bins == 1:
        return float(n_balls)
    mu = n_balls / n_bins
    return mu + math.sqrt(2.0 * mu * math.log(n_bins))


def dwells_to_max_load(target: float, n_bins: int) -> float:
    """Balls needed before the fullest of ``n_bins`` holds ``target`` balls.

    Inverts :func:`expected_max_load`: solves
    ``mu + sqrt(2 mu ln n) = target`` for ``mu`` (quadratic in
    ``sqrt(mu)``) and returns ``mu * n_bins``.
    """
    if target <= 0:
        raise ValueError("target must be positive")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if n_bins == 1:
        return float(target)
    b = math.sqrt(2.0 * math.log(n_bins))
    # x^2 + b*x - target = 0,  x = sqrt(mu) >= 0
    x = (-b + math.sqrt(b * b + 4.0 * target)) / 2.0
    mu = x * x
    return mu * n_bins
