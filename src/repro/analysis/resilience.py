"""Fault-injection campaigns and the verify-retry side channel.

Two drivers on top of the resilience stack (:mod:`repro.pcm.faults`,
:mod:`repro.pcm.ecc`, :class:`~repro.pcm.sparing.SparingController`):

* :func:`run_fault_campaign` / :func:`sweep_fault_rates` — hammer a device
  with a seeded, skewed workload under injected faults and report how it
  degrades: retirement timeline, availability (fraction of the intended
  workload served before read-only), and the final
  :class:`~repro.pcm.health.DeviceHealth`.  Campaigns are deterministic:
  the same seed and config replay the identical timeline.

* :func:`verify_retry_side_channel` — the "mitigations backfire"
  experiment: with a nonzero verify-failure rate, the write-verify-retry
  loop makes write latency depend on the target line's *wear* (failure
  probability rises with wear) and *data* (RESET-only programs fail less),
  opening a timing side channel alongside the paper's remap channel — an
  attacker can profile which lines are near death.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config import PCMConfig
from repro.pcm.array import LineFailure, PCMArray
from repro.pcm.health import DeviceHealth
from repro.pcm.sparing import (
    DeviceReadOnly,
    SparesExhausted,
    SparingController,
)
from repro.pcm.timing import ALL0, ALL1, MIXED, LineData
from repro.util.rng import as_generator


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one fault-injection campaign on one scheme."""

    scheme: str
    verify_fail_base: float
    read_disturb_ber: float
    seed: int
    #: writes the workload intended to issue / writes the device served
    writes_attempted: int
    writes_accepted: int
    #: device writes at the first line failure (None if none occurred)
    first_failure_write: Optional[int]
    #: workload index at which the device stopped accepting writes
    end_write: Optional[int]
    #: ``survived`` | ``read-only`` | ``spares-exhausted``
    end_cause: str
    #: fraction of the intended workload served — the availability metric
    availability: float
    #: (device_total_writes, failed_pa) per retirement, in order
    retirements: Tuple[Tuple[int, int], ...]
    health: DeviceHealth


def run_fault_campaign(
    scheme_name: str,
    config: PCMConfig,
    *,
    n_spares: int = 8,
    n_writes: int = 20_000,
    seed: int = 0,
    degraded_mode: bool = True,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.8,
    read_fraction: float = 0.1,
) -> CampaignResult:
    """Run one seeded fault-injection campaign.

    The workload is skewed — ``hot_weight`` of the writes land on the
    hottest ``hot_fraction`` of the logical space — so wear concentrates
    and the fault ladder (retries → stuck cells → retirement → read-only)
    is exercised within a tractable write budget.  Each write is followed
    by a read with probability ``read_fraction``, which drives the
    read-disturb / ECP-correction path.  Scheme construction, workload
    addresses/data and fault draws all derive from ``seed``.
    """
    from repro.experiments import SCHEME_FACTORIES

    if scheme_name not in SCHEME_FACTORIES:
        raise ValueError(
            f"unknown scheme {scheme_name!r}; "
            f"choose from {sorted(SCHEME_FACTORIES)}"
        )
    scheme = SCHEME_FACTORIES[scheme_name](config.n_lines, seed)
    controller = SparingController(
        scheme,
        config,
        n_spares=n_spares,
        fault_rng=seed,
        degraded_mode=degraded_mode,
    )
    workload = as_generator(seed)
    hot_lines = max(1, int(hot_fraction * config.n_lines))
    accepted = 0
    end_write: Optional[int] = None
    cause = "survived"
    for i in range(n_writes):
        if workload.random() < hot_weight:
            la = int(workload.integers(0, hot_lines))
        else:
            la = int(workload.integers(0, config.n_lines))
        data = MIXED if workload.random() < 0.5 else ALL0
        try:
            # reprolint: disable=REP002 availability campaign; not a timing run
            controller.write(la, data)
            accepted += 1
        except DeviceReadOnly:
            end_write, cause = i, "read-only"
            break
        except SparesExhausted:
            end_write, cause = i, "spares-exhausted"
            break
        if read_fraction and workload.random() < read_fraction:
            try:
                controller.read(int(workload.integers(0, config.n_lines)))
            except (SparesExhausted, LineFailure):
                # A read-side retirement can drain the pool; the campaign
                # keeps writing until a *write* is refused.
                pass
    return CampaignResult(
        scheme=scheme_name,
        verify_fail_base=config.verify_fail_base,
        read_disturb_ber=config.read_disturb_ber,
        seed=seed,
        writes_attempted=n_writes,
        writes_accepted=accepted,
        first_failure_write=controller.first_failure_writes,
        end_write=end_write,
        end_cause=cause,
        availability=accepted / n_writes if n_writes else 1.0,
        retirements=tuple(controller.retirement_log),
        health=controller.health(),
    )


def _campaign_result_from_dict(
    document: Mapping[str, Any]
) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from a ``faults`` task result."""
    first_failure = document["first_failure_write"]
    end_write = document["end_write"]
    return CampaignResult(
        scheme=str(document["scheme"]),
        verify_fail_base=float(document["verify_fail_base"]),  # type: ignore[arg-type]
        read_disturb_ber=float(document["read_disturb_ber"]),  # type: ignore[arg-type]
        seed=int(document["seed"]),  # type: ignore[arg-type]
        writes_attempted=int(document["writes_attempted"]),  # type: ignore[arg-type]
        writes_accepted=int(document["writes_accepted"]),  # type: ignore[arg-type]
        first_failure_write=(
            None if first_failure is None else int(first_failure)  # type: ignore[arg-type]
        ),
        end_write=None if end_write is None else int(end_write),  # type: ignore[arg-type]
        end_cause=str(document["end_cause"]),
        availability=float(document["availability"]),  # type: ignore[arg-type]
        retirements=tuple(
            (int(writes), int(pa))
            for writes, pa in document["retirements"]  # type: ignore[union-attr]
        ),
        health=DeviceHealth(**document["health"]),  # type: ignore[arg-type]
    )


def sweep_fault_rates(
    schemes: Sequence[str],
    config: PCMConfig,
    verify_fail_rates: Sequence[float],
    *,
    n_spares: int = 8,
    n_writes: int = 20_000,
    seed: int = 0,
    degraded_mode: bool = True,
    workers: int = 1,
) -> List[CampaignResult]:
    """Cross every scheme with every verify-failure rate (one seed each).

    The grid executes on the :mod:`repro.campaign` runner: ``workers > 1``
    fans the cells out across processes.  Every cell's RNG derives from
    its (scheme, config, seed) alone, so parallel results are identical
    to a serial sweep, returned in scheme-major/rate-minor order.
    """
    from repro.campaign import RunnerConfig, TaskKey, run_collect

    base = dataclasses.asdict(config)
    keys: List[TaskKey] = []
    for scheme_name in schemes:
        for rate in verify_fail_rates:
            keys.append(TaskKey.create(
                kind="faults",
                params={
                    **base,
                    "verify_fail_base": float(rate),
                    "scheme": scheme_name,
                    "n_spares": n_spares,
                    "n_writes": n_writes,
                    "degraded_mode": degraded_mode,
                },
                seed=seed,
            ))
    records = run_collect(keys, RunnerConfig(workers=workers, retries=0))
    results: List[CampaignResult] = []
    for key, record in zip(keys, records):
        if not record.ok:
            raise RuntimeError(
                f"fault campaign {key.param('scheme')} @ "
                f"{key.param('verify_fail_base')} failed: {record.error}"
            )
        results.append(_campaign_result_from_dict(record.result or {}))
    return results


# ------------------------------------------------------- side channel


@dataclass(frozen=True)
class SideChannelProbe:
    """Write-latency distribution observed at one (wear, data) point."""

    wear_fraction: float
    data: LineData
    n_trials: int
    mean_latency_ns: float
    p95_latency_ns: float
    max_latency_ns: float
    retries_per_write: float


def verify_retry_side_channel(
    *,
    n_lines: int = 16,
    endurance: float = 1e6,
    verify_fail_base: float = 0.05,
    aged_fraction: float = 0.9,
    n_trials: int = 400,
    seed: int = 0,
) -> List[SideChannelProbe]:
    """Measure the wear/data dependence of write latency under retries.

    Probes three operating points on identical fresh arrays (same fault
    seed, so only the probability changes across probes):

    1. fresh line, MIXED data — the baseline;
    2. line pre-aged to ``aged_fraction`` of its endurance, MIXED data —
       the wear leak;
    3. same aged line, ALL-0 data — the data leak (RESET programs fail
       verify less often *and* retry more cheaply).

    Returns one :class:`SideChannelProbe` per point.  Under any nonzero
    ``verify_fail_base`` the aged-MIXED mean latency measurably exceeds
    the fresh-MIXED mean — write latency leaks wear state.
    """
    if not 0 <= aged_fraction <= 1:
        raise ValueError("aged_fraction must be in [0, 1]")
    config = PCMConfig(
        n_lines=n_lines,
        endurance=endurance,
        verify_fail_base=verify_fail_base,
        # Plenty of ECP headroom: the probe measures latency, not death.
        ecp_entries=max(256, n_trials),
    )
    probes = []
    for wear_fraction, data in (
        (0.0, MIXED),
        (aged_fraction, MIXED),
        (aged_fraction, ALL0),
    ):
        array = PCMArray(config, fault_rng=seed)
        pa = 0
        array.wear[pa] = int(wear_fraction * endurance)
        before = array.retry_events
        latencies = np.array([array.write(pa, data) for _ in range(n_trials)])
        probes.append(
            SideChannelProbe(
                wear_fraction=wear_fraction,
                data=data,
                n_trials=n_trials,
                mean_latency_ns=float(latencies.mean()),
                p95_latency_ns=float(np.percentile(latencies, 95)),
                max_latency_ns=float(latencies.max()),
                retries_per_write=(array.retry_events - before) / n_trials,
            )
        )
    return probes


def side_channel_separation_ns(probes: Sequence[SideChannelProbe]) -> float:
    """Mean-latency gap between the aged-MIXED and fresh-MIXED probes."""
    fresh = [p for p in probes if p.wear_fraction == 0.0 and p.data == MIXED]
    aged = [p for p in probes if p.wear_fraction > 0.0 and p.data == MIXED]
    if not fresh or not aged:
        raise ValueError("probes must include fresh and aged MIXED points")
    return aged[0].mean_latency_ns - fresh[0].mean_latency_ns
