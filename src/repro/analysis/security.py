"""Security sizing: how many DFN stages defeat the Remapping Timing Attack.

Section IV-B's argument: a timing attacker needs at least ``N/R`` writes per
key bit (granting it Security-Refresh-level efficiency, which is generous —
the cubing round function leaks far less per observation than SR's XOR).
The dynamic Feistel network's keys rotate every remapping round of
``(N/R) * psi_outer`` writes, so detection fails whenever

    total_key_bits * (N/R)  >  (N/R) * psi_outer
    ⇔  S * B  >  psi_outer

with ``B`` key bits per stage (the paper counts the full address width per
stage key).  For the running example (B = 22, outer interval 128) this gives
6 stages — "a 128-bit length of key array will make the detection fail" and
"K >= 6 ... when the outer-level remapping interval is not larger than 132".

Implementation note: our Feistel stages mask keys to the half width
``ceil(B/2)`` (the round function's domain); the sizing here follows the
paper's per-stage accounting of ``B`` bits so its quoted numbers reproduce.
"""

from __future__ import annotations

import math

from repro.config import PCMConfig


def key_detection_writes(pcm: PCMConfig, n_subregions: int, key_bits: int) -> float:
    """Writes an RTA-style attacker needs to recover ``key_bits`` key bits,
    at the paper's assumed rate of one bit per ``N/R`` writes."""
    if key_bits < 0:
        raise ValueError("key_bits must be non-negative")
    return key_bits * (pcm.n_lines / n_subregions)


def remapping_round_writes(
    pcm: PCMConfig, n_subregions: int, outer_interval: int
) -> float:
    """Writes per outer remapping round available to the attacker before the
    dynamic Feistel network rotates its keys (normalised per sub-region,
    matching the paper's §IV-B accounting)."""
    return (pcm.n_lines / n_subregions) * outer_interval


def min_secure_stages(pcm: PCMConfig, outer_interval: int) -> int:
    """Smallest stage count whose key outlives its detection (``S*B > psi``).

    ``min_secure_stages(PAPER_PCM, 128) == 6``, the paper's quoted sizing.
    """
    if outer_interval < 1:
        raise ValueError("outer_interval must be >= 1")
    stage_bits = pcm.address_bits
    return math.floor(outer_interval / stage_bits) + 1


def is_secure(pcm: PCMConfig, n_stages: int, outer_interval: int) -> bool:
    """True when ``n_stages`` stages keep the key undetectable in one round."""
    return n_stages * pcm.address_bits > outer_interval
