"""High-level experiment harness: attack × scheme matrices in one call.

Gives scripts and notebooks a single entry point for the evaluation
pattern every example repeats by hand: build fresh (scheme, controller)
pairs, run a set of attacks to failure under a common budget, and collect
comparable results.

Example::

    from repro.experiments import attack_matrix, SCHEME_FACTORIES

    results = attack_matrix(
        n_lines=2**9, endurance=2e4,
        schemes=["rbsg", "security-rbsg"],
        attacks=["raa", "bpa"],
        seed=7,
    )
    for row in results:
        print(row.scheme, row.attack, row.result.lifetime_seconds)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks import (
    AddressInferenceAttack,
    AttackResult,
    BirthdayParadoxAttack,
    RBSGTimingAttack,
    RepeatedAddressAttack,
    SRTimingAttack,
)
from repro.config import PCMConfig
from repro.core.security_rbsg import SecurityRBSG
from repro.pcm.stats import WearStats
from repro.sim.memory_system import MemoryController
from repro.wearlevel import (
    MultiWaySR,
    RandomSwapWearLeveling,
    NoWearLeveling,
    RegionBasedStartGap,
    SecurityRefresh,
    StartGap,
    TableBasedWearLeveling,
    TwoLevelSecurityRefresh,
)

#: Scheme constructors keyed by short name; each takes (n_lines, seed).
SCHEME_FACTORIES: Dict[str, Callable[[int, int], object]] = {
    "none": lambda n, seed: NoWearLeveling(n),
    "start-gap": lambda n, seed: StartGap(n, remap_interval=16),
    "table": lambda n, seed: TableBasedWearLeveling(n, swap_interval=16),
    "random-swap": lambda n, seed: RandomSwapWearLeveling(
        n, swap_interval=16, rng=seed
    ),
    "rbsg": lambda n, seed: RegionBasedStartGap(
        n, n_regions=8, remap_interval=16, rng=seed
    ),
    "sr": lambda n, seed: SecurityRefresh(n, remap_interval=16, rng=seed),
    "multiway-sr": lambda n, seed: MultiWaySR(
        n, n_subregions=8, remap_interval=16, rng=seed
    ),
    "two-level-sr": lambda n, seed: TwoLevelSecurityRefresh(
        n, n_subregions=8, inner_interval=16, outer_interval=32, rng=seed
    ),
    "security-rbsg": lambda n, seed: SecurityRBSG(
        n, n_subregions=8, inner_interval=16, outer_interval=32,
        n_stages=7, rng=seed,
    ),
}

#: Attacks applicable to every scheme.
GENERIC_ATTACKS = ("raa", "bpa", "aia")
#: Timing attacks bound to specific scheme types.
TIMING_ATTACKS = {"rta": {"rbsg": RBSGTimingAttack, "sr": SRTimingAttack}}


@dataclass(frozen=True)
class MatrixCell:
    """One (scheme, attack) outcome."""

    scheme: str
    attack: str
    result: AttackResult
    wear_gini: float

    @property
    def lifetime_seconds(self) -> float:
        return self.result.lifetime_seconds


def _build_attack(name: str, scheme_name: str, controller, seed: int):
    if name == "raa":
        return RepeatedAddressAttack(controller, target_la=5)
    if name == "bpa":
        return BirthdayParadoxAttack(controller, rng=seed)
    if name == "aia":
        return AddressInferenceAttack(controller, knowledge_interval=256)
    if name == "rta":
        cls = TIMING_ATTACKS["rta"].get(scheme_name)
        if cls is None:
            return None  # no RTA procedure for this scheme
        if scheme_name == "sr":
            return cls(controller, target_la=5)
        return cls(controller, target_la=5)
    raise ValueError(f"unknown attack {name!r}")


def attack_matrix(
    n_lines: int = 2**9,
    endurance: float = 2e4,
    schemes: Optional[Sequence[str]] = None,
    attacks: Sequence[str] = ("raa",),
    budget: int = 50_000_000,
    seed: int = 7,
) -> List[MatrixCell]:
    """Run every requested attack against every requested scheme.

    Each cell gets a fresh device; unsupported (scheme, attack) pairs —
    e.g. RTA against a scheme it has no procedure for — are skipped.
    """
    scheme_names = list(schemes or SCHEME_FACTORIES)
    unknown = set(scheme_names) - set(SCHEME_FACTORIES)
    if unknown:
        raise ValueError(f"unknown schemes: {sorted(unknown)}")
    cells: List[MatrixCell] = []
    for scheme_name in scheme_names:
        for attack_name in attacks:
            config = PCMConfig(n_lines=n_lines, endurance=endurance)
            scheme = SCHEME_FACTORIES[scheme_name](n_lines, seed)
            controller = MemoryController(scheme, config)
            attack = _build_attack(attack_name, scheme_name, controller, seed)
            if attack is None:
                continue
            result = attack.run(max_writes=budget)
            gini = WearStats.from_wear(controller.array.wear).gini
            cells.append(
                MatrixCell(
                    scheme=scheme_name,
                    attack=attack_name,
                    result=result,
                    wear_gini=gini,
                )
            )
    return cells


def summarize_matrix(cells: Sequence[MatrixCell]) -> str:
    """Render a matrix run as an aligned text table."""
    if not cells:
        return "(empty matrix)"
    header = f"{'scheme':>14} {'attack':>6} {'failed':>6} " \
             f"{'lifetime (s)':>13} {'writes':>10} {'gini':>6}"
    lines = [header, "-" * len(header)]
    for cell in cells:
        lifetime = (
            f"{cell.lifetime_seconds:.4f}" if cell.result.failed else "--"
        )
        lines.append(
            f"{cell.scheme:>14} {cell.attack:>6} "
            f"{str(cell.result.failed):>6} {lifetime:>13} "
            f"{cell.result.user_writes:>10} {cell.wear_gini:>6.3f}"
        )
    return "\n".join(lines)
