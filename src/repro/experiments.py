"""High-level experiment harness: attack × scheme matrices in one call.

Gives scripts and notebooks a single entry point for the evaluation
pattern every example repeats by hand: build fresh (scheme, controller)
pairs, run a set of attacks to failure under a common budget, and collect
comparable results.

Example::

    from repro.experiments import attack_matrix, SCHEME_FACTORIES

    results = attack_matrix(
        n_lines=2**9, endurance=2e4,
        schemes=["rbsg", "security-rbsg"],
        attacks=["raa", "bpa"],
        seed=7,
    )
    for row in results:
        print(row.scheme, row.attack, row.result.lifetime_seconds)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.attacks import (
    AttackResult,
    RBSGTimingAttack,
    SRTimingAttack,
)
from repro.core.security_rbsg import SecurityRBSG
from repro.wearlevel import (
    MultiWaySR,
    RandomSwapWearLeveling,
    NoWearLeveling,
    RegionBasedStartGap,
    SecurityRefresh,
    StartGap,
    TableBasedWearLeveling,
    TwoLevelSecurityRefresh,
)

#: Scheme constructors keyed by short name; each takes (n_lines, seed).
SCHEME_FACTORIES: Dict[str, Callable[[int, int], object]] = {
    "none": lambda n, seed: NoWearLeveling(n),
    "start-gap": lambda n, seed: StartGap(n, remap_interval=16),
    "table": lambda n, seed: TableBasedWearLeveling(n, swap_interval=16),
    "random-swap": lambda n, seed: RandomSwapWearLeveling(
        n, swap_interval=16, rng=seed
    ),
    "rbsg": lambda n, seed: RegionBasedStartGap(
        n, n_regions=8, remap_interval=16, rng=seed
    ),
    "sr": lambda n, seed: SecurityRefresh(n, remap_interval=16, rng=seed),
    "multiway-sr": lambda n, seed: MultiWaySR(
        n, n_subregions=8, remap_interval=16, rng=seed
    ),
    "two-level-sr": lambda n, seed: TwoLevelSecurityRefresh(
        n, n_subregions=8, inner_interval=16, outer_interval=32, rng=seed
    ),
    "security-rbsg": lambda n, seed: SecurityRBSG(
        n, n_subregions=8, inner_interval=16, outer_interval=32,
        n_stages=7, rng=seed,
    ),
}

#: Attacks applicable to every scheme.
GENERIC_ATTACKS = ("raa", "bpa", "aia")
#: Timing attacks bound to specific scheme types.
TIMING_ATTACKS = {"rta": {"rbsg": RBSGTimingAttack, "sr": SRTimingAttack}}


@dataclass(frozen=True)
class MatrixCell:
    """One (scheme, attack) outcome."""

    scheme: str
    attack: str
    result: AttackResult
    wear_gini: float

    @property
    def lifetime_seconds(self) -> float:
        return self.result.lifetime_seconds


def _cell_from_result(
    scheme: str, attack: str, document: Mapping[str, object]
) -> MatrixCell:
    """Rebuild one :class:`MatrixCell` from a ``simulate`` task result."""
    failed_pa = document.get("failed_pa")
    result = AttackResult(
        attack=str(document["attack_label"]),
        user_writes=int(document["user_writes"]),  # type: ignore[arg-type]
        elapsed_ns=float(document["elapsed_ns"]),  # type: ignore[arg-type]
        failed=bool(document["failed"]),
        failed_pa=None if failed_pa is None else int(failed_pa),  # type: ignore[arg-type]
        detection_writes=int(document["detection_writes"]),  # type: ignore[arg-type]
    )
    return MatrixCell(
        scheme=scheme,
        attack=attack,
        result=result,
        wear_gini=float(document["wear_gini"]),  # type: ignore[arg-type]
    )


def attack_matrix(
    n_lines: int = 2**9,
    endurance: float = 2e4,
    schemes: Optional[Sequence[str]] = None,
    attacks: Sequence[str] = ("raa",),
    budget: int = 50_000_000,
    seed: int = 7,
    workers: int = 1,
) -> List[MatrixCell]:
    """Run every requested attack against every requested scheme.

    Each cell gets a fresh device; unsupported (scheme, attack) pairs —
    e.g. RTA against a scheme it has no procedure for — are skipped.

    Cells execute on the :mod:`repro.campaign` runner: ``workers > 1``
    fans them out across processes, and because every cell derives its
    RNG from (scheme, attack, seed) — never from scheduling — the
    results are identical to a serial run, in the same
    scheme-major/attack-minor order.
    """
    from repro.campaign import RunnerConfig, TaskKey, run_collect

    scheme_names = list(schemes or SCHEME_FACTORIES)
    unknown = set(scheme_names) - set(SCHEME_FACTORIES)
    if unknown:
        raise ValueError(f"unknown schemes: {sorted(unknown)}")
    known_attacks = set(GENERIC_ATTACKS) | set(TIMING_ATTACKS)
    unknown_attacks = set(attacks) - known_attacks
    if unknown_attacks:
        raise ValueError(f"unknown attacks: {sorted(unknown_attacks)}")
    keys: List[TaskKey] = []
    for scheme_name in scheme_names:
        for attack_name in attacks:
            if (attack_name in TIMING_ATTACKS
                    and scheme_name not in TIMING_ATTACKS[attack_name]):
                continue  # no timing-attack procedure for this scheme
            keys.append(TaskKey.create(
                kind="simulate",
                params={
                    "scheme": scheme_name,
                    "attack": attack_name,
                    "lines": n_lines,
                    "endurance": endurance,
                    "budget": budget,
                },
                seed=seed,
            ))
    records = run_collect(keys, RunnerConfig(workers=workers, retries=0))
    cells: List[MatrixCell] = []
    for key, record in zip(keys, records):
        if not record.ok:
            raise RuntimeError(
                f"matrix cell {key.param('scheme')}/{key.param('attack')} "
                f"failed: {record.error}"
            )
        cells.append(
            _cell_from_result(
                str(key.param("scheme")),
                str(key.param("attack")),
                record.result or {},
            )
        )
    return cells


def summarize_matrix(cells: Sequence[MatrixCell]) -> str:
    """Render a matrix run as an aligned text table."""
    if not cells:
        return "(empty matrix)"
    header = f"{'scheme':>14} {'attack':>6} {'failed':>6} " \
             f"{'lifetime (s)':>13} {'writes':>10} {'gini':>6}"
    lines = [header, "-" * len(header)]
    for cell in cells:
        lifetime = (
            f"{cell.lifetime_seconds:.4f}" if cell.result.failed else "--"
        )
        lines.append(
            f"{cell.scheme:>14} {cell.attack:>6} "
            f"{str(cell.result.failed):>6} {lifetime:>13} "
            f"{cell.result.user_writes:>10} {cell.wear_gini:>6.3f}"
        )
    return "\n".join(lines)
