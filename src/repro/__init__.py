"""repro — Security RBSG: PCM wear-leveling attack & defense library.

A full reproduction of *"Security RBSG: Protecting Phase Change Memory with
Security-Level Adjustable Dynamic Mapping"* (IPDPS 2016):

* PCM device substrate with the asymmetric write-timing side channel,
* the wear-leveling schemes the paper studies (Start-Gap, RBSG, one- and
  two-level Security Refresh, Multi-Way SR, table-based, none),
* the proposed **Security RBSG** scheme (dynamic Feistel network outer
  level + Start-Gap inner level),
* the attacks: Repeated Address Attack, Birthday Paradox Attack, and the
  paper's new **Remapping Timing Attack** against RBSG and Security Refresh,
* exact / batched simulation engines, analytic lifetime models, a hardware
  overhead model and a performance-impact model.

Quickstart::

    from repro import MemoryController, PCMConfig, SecurityRBSG
    from repro.pcm import ALL1

    config = PCMConfig(n_lines=2**12, endurance=1e4)
    scheme = SecurityRBSG(config.n_lines, n_subregions=8, rng=42)
    controller = MemoryController(scheme, config)
    latency_ns = controller.write(la=7, data=ALL1)
"""

from repro.config import (
    PAPER_PCM,
    RBSG_RECOMMENDED,
    SECURITY_RBSG_RECOMMENDED,
    SR_SUGGESTED,
    PCMConfig,
    RBSGConfig,
    SecurityRBSGConfig,
    SRConfig,
)
from repro.core import (
    DynamicFeistelMapper,
    FeistelNetwork,
    RandomInvertibleMatrix,
    SecurityRBSG,
)
from repro.pcm import ALL0, ALL1, MIXED, LineData, LineFailure, PCMArray
from repro.sim import (
    MemoryController,
    SimulationResult,
    run_trace,
    run_trace_fast,
)
from repro.wearlevel import (
    MultiWaySR,
    NoWearLeveling,
    RegionBasedStartGap,
    SecurityRefresh,
    StartGap,
    TableBasedWearLeveling,
    TwoLevelSecurityRefresh,
)

__version__ = "1.0.0"

__all__ = [
    "ALL0",
    "ALL1",
    "MIXED",
    "DynamicFeistelMapper",
    "FeistelNetwork",
    "LineData",
    "LineFailure",
    "MemoryController",
    "MultiWaySR",
    "NoWearLeveling",
    "PAPER_PCM",
    "PCMArray",
    "PCMConfig",
    "RBSGConfig",
    "RBSG_RECOMMENDED",
    "RandomInvertibleMatrix",
    "RegionBasedStartGap",
    "SECURITY_RBSG_RECOMMENDED",
    "SR_SUGGESTED",
    "SRConfig",
    "SecurityRBSG",
    "SecurityRBSGConfig",
    "SecurityRefresh",
    "SimulationResult",
    "StartGap",
    "TableBasedWearLeveling",
    "TwoLevelSecurityRefresh",
    "run_trace",
    "run_trace_fast",
]
