"""Command-line interface: lifetimes, attacks, overhead, performance.

Installed as ``python -m repro``.  Subcommands:

* ``lifetime``  — analytic paper-scale lifetimes for a scheme/attack pair,
* ``simulate``  — run a real attack on the exact simulator (scaled config),
* ``trace``     — measured lifetime/overhead under a synthetic trace —
  or a loaded real trace (``--trace-file``, CSV or ``.rbt``) — on the
  batched fast engine (``--no-fast`` for the scalar reference); the
  ``convert`` / ``info`` subcommands manage trace files,
* ``traffic``   — measured lifetime under multi-tenant mixed traffic
  (``--tenants``/``--churn-*`` inline knobs or a ``--profile`` spec),
* ``overhead``  — the §V-C3 hardware-cost table,
* ``stages``    — security sizing of the dynamic Feistel network,
* ``perf``      — the §V-C4 IPC-impact table,
* ``faults``    — fault-injection campaigns and the verify-retry
  side-channel experiment,
* ``campaign``  — parallel experiment campaigns with crash-safe
  checkpointing: ``run`` / ``resume`` / ``status`` / ``report``,
* ``lint``      — the reprolint simulator-invariant checker
  (also ``python -m repro.lint``).

Examples::

    python -m repro lifetime --scheme rbsg --attack rta
    python -m repro simulate --scheme rbsg --attack rta --lines 512 \
        --endurance 2e4
    python -m repro trace --scheme security-rbsg --trace uniform \
        --lines 4096 --endurance 1e4 --json
    python -m repro trace convert tests/data/msr_sample.csv out.rbt \
        --lines 4096
    python -m repro trace info out.rbt
    python -m repro trace --scheme security-rbsg --trace-file out.rbt
    python -m repro traffic --scheme security-rbsg --tenants 1000 \
        --churn-interval 50000 --json
    python -m repro overhead --stages 7 --json
    python -m repro stages --outer-interval 128
    python -m repro perf --interval 64 --ops 10000
    python -m repro faults --schemes none rbsg --rates 0 1e-3 1e-2
    python -m repro faults --side-channel
    python -m repro campaign run examples/campaigns/fault_grid.toml \
        --out out/fault-grid --workers 4
    python -m repro campaign report out/fault-grid --format csv
    python -m repro lint src/repro --format json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.lifetime import (
    ideal_lifetime_ns,
    raa_nowl_lifetime_ns,
    raa_rbsg_lifetime_ns,
    raa_security_rbsg_lifetime_ns,
    raa_two_level_sr_lifetime_ns,
    rta_rbsg_lifetime_ns,
    rta_two_level_sr_lifetime_ns,
)
from repro.analysis.overhead import security_rbsg_overhead
from repro.analysis.security import is_secure, min_secure_stages
from repro.config import (
    PAPER_PCM,
    PCMConfig,
    RBSGConfig,
    SecurityRBSGConfig,
    SRConfig,
)

DAY_NS = 86_400e9


def _fmt_duration(ns: float) -> str:
    seconds = ns * 1e-9
    if seconds < 600:
        return f"{seconds:.1f} s"
    if seconds < 86_400 * 3:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86_400:.0f} days"


# ------------------------------------------------------------ subcommands


def cmd_lifetime(args: argparse.Namespace) -> int:
    if args.paper_scale:
        return _lifetime_paper_scale(args)
    pcm = PAPER_PCM
    scheme, attack = args.scheme, args.attack
    if attack is None:
        print("--attack is required without --paper-scale", file=sys.stderr)
        return 2
    if scheme == "none" and attack == "raa":
        ns = raa_nowl_lifetime_ns(pcm)
    elif scheme == "rbsg":
        rbsg_cfg = RBSGConfig(args.regions, args.interval)
        ns = (rta_rbsg_lifetime_ns if attack == "rta" else raa_rbsg_lifetime_ns)(
            pcm, rbsg_cfg
        )
    elif scheme == "two-level-sr":
        sr_cfg = SRConfig(args.subregions, args.inner, args.outer)
        fn = (
            rta_two_level_sr_lifetime_ns
            if attack == "rta"
            else raa_two_level_sr_lifetime_ns
        )
        ns = fn(pcm, sr_cfg)
    elif scheme == "security-rbsg":
        if attack == "rta":
            if args.json:
                print(json.dumps({
                    "scheme": scheme,
                    "attack": attack,
                    "lifetime_ns": None,
                    "resists_rta": True,
                }, sort_keys=True))
            else:
                print(
                    "Security RBSG resists RTA by design: with a secure "
                    "stage count the DFN keys rotate before detection "
                    "completes (see `python -m repro stages`)."
                )
            return 0
        srbsg_cfg = SecurityRBSGConfig(args.subregions, args.inner,
                                       args.outer, args.stages)
        ns = raa_security_rbsg_lifetime_ns(pcm, srbsg_cfg)
    else:
        print(f"unsupported pair: {scheme} / {attack}", file=sys.stderr)
        return 2
    ideal = ideal_lifetime_ns(pcm)
    if args.json:
        print(json.dumps({
            "scheme": scheme,
            "attack": attack,
            "endurance": pcm.endurance,
            "n_lines": pcm.n_lines,
            "lifetime_ns": ns,
            "ideal_ns": ideal,
            "fraction_of_ideal": ns / ideal,
        }, sort_keys=True))
        return 0
    print(f"device          : 1 GB bank, E={pcm.endurance:g} "
          f"(ideal {_fmt_duration(ideal)})")
    print(f"scheme / attack : {scheme} / {attack.upper()}")
    print(f"lifetime        : {_fmt_duration(ns)} "
          f"({ns / ideal:.1%} of ideal)")
    return 0


def _lifetime_paper_scale(args: argparse.Namespace) -> int:
    """``repro lifetime --paper-scale``: measured, not modelled.

    Drives the requested scheme at the paper's device scale (2^23 lines,
    E = 1e8, a spare pool) on the analytic fast-forward engine, through
    the same ``lifetime-ff`` task the distributed campaign runner uses —
    one box, minutes instead of the chunk engine's hours.
    """
    from repro.campaign.tasks import get_task

    # Map the closed-form flag names onto build_scheme's parameter keys:
    # the sub-region schemes read their split/interval from --subregions
    # and --inner, everything else from --regions and --interval.
    subregioned = args.scheme in ("multiway-sr", "two-level-sr", "security-rbsg")
    params = {
        "scheme": args.scheme,
        "trace": args.trace,
        "lines": args.lines,
        "endurance": args.endurance,
        "fast_forward": args.fast_forward,
        "n_shards": args.shards,
        "spares": args.spares,
        "alpha": args.alpha,
        "regions": args.subregions if subregioned else args.regions,
        "interval": args.inner if subregioned else args.interval,
        "outer": args.outer,
        "stages": args.stages,
    }
    if args.memmap_dir is not None:
        params["memmap_dir"] = args.memmap_dir
    result = get_task("lifetime-ff")(params, args.seed)
    if args.json:
        print(json.dumps(result, sort_keys=True))
        return 0
    print(f"device          : {args.lines} lines, E={args.endurance:g}, "
          f"{args.spares} spares, {args.shards or 'no'} shards")
    print(f"scheme / trace  : {args.scheme} / {args.trace} "
          f"(seed {args.seed})")
    print(f"engine          : {result['engine']}")
    print(f"user writes     : {result['user_writes']:,}")
    print(f"amplification   : {result['write_amplification']:.4f}")
    print(f"wear gini       : {result['wear_gini']:.4f}")
    lifetime_ns = float(result["elapsed_ns"])  # type: ignore[arg-type]
    status = "failed" if result["failed"] else "survived budget"
    print(f"lifetime        : {_fmt_duration(lifetime_ns)} ({status})")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.attacks import (
        BirthdayParadoxAttack,
        RBSGTimingAttack,
        RepeatedAddressAttack,
        SRTimingAttack,
    )
    from repro.sim.memory_system import MemoryController
    from repro.wearlevel import (
        NoWearLeveling,
        RegionBasedStartGap,
        SecurityRefresh,
    )
    from repro.core.security_rbsg import SecurityRBSG

    pcm = PCMConfig(n_lines=args.lines, endurance=args.endurance)
    if args.scheme == "none":
        scheme = NoWearLeveling(args.lines)
    elif args.scheme == "rbsg":
        scheme = RegionBasedStartGap(
            args.lines, n_regions=args.regions,
            remap_interval=args.interval, rng=args.seed,
        )
    elif args.scheme == "sr":
        scheme = SecurityRefresh(
            args.lines, remap_interval=args.interval, rng=args.seed
        )
    elif args.scheme == "security-rbsg":
        scheme = SecurityRBSG(
            args.lines, n_subregions=args.regions,
            inner_interval=args.interval, outer_interval=2 * args.interval,
            n_stages=args.stages, rng=args.seed,
        )
    else:
        print(f"unknown scheme {args.scheme}", file=sys.stderr)
        return 2
    controller = MemoryController(scheme, pcm)

    if args.attack == "raa":
        attack = RepeatedAddressAttack(controller, target_la=args.target)
    elif args.attack == "bpa":
        attack = BirthdayParadoxAttack(controller, rng=args.seed)
    elif args.attack == "rta" and args.scheme == "rbsg":
        attack = RBSGTimingAttack(controller, target_la=args.target)
    elif args.attack == "rta" and args.scheme == "sr":
        attack = SRTimingAttack(controller, target_la=max(1, args.target))
    else:
        print(f"unsupported pair: {args.scheme} / {args.attack}",
              file=sys.stderr)
        return 2

    result = attack.run(max_writes=args.budget)
    print(f"scheme / attack : {args.scheme} / {result.attack}")
    print(f"device          : {args.lines} lines, E={args.endurance:g}")
    if result.failed:
        print(f"FAILED line {result.failed_pa} after {result.user_writes} "
              f"attacker writes = {_fmt_duration(result.elapsed_ns)}")
    else:
        print(f"survived the {args.budget}-write budget "
              f"({_fmt_duration(result.elapsed_ns)})")
    if result.detection_writes:
        print(f"side-channel detection cost: {result.detection_writes} writes")
    return 0


def _print_trace_result(args: argparse.Namespace, result: dict,
                        label: str) -> None:
    """Shared text report of a measured-lifetime run (trace/traffic)."""
    print(f"scheme / {label:<6}: {args.scheme} / "
          f"{result.get('trace', result.get('traffic'))} "
          f"({result['engine']} engine)")
    print(f"device          : {args.lines} lines, E={args.endurance:g}")
    elapsed_ns = float(result["elapsed_ns"])  # type: ignore[arg-type]
    if result["failed"]:
        print(f"FAILED line {result['failed_pa']} after "
              f"{result['user_writes']} user writes = "
              f"{_fmt_duration(elapsed_ns)}")
    else:
        print(f"survived {result['user_writes']} user writes "
              f"({_fmt_duration(elapsed_ns)})")
    amplification = float(result["write_amplification"])  # type: ignore[arg-type]
    gini = float(result["wear_gini"])  # type: ignore[arg-type]
    print(f"write overhead  : {amplification:.4f}x physical/user writes")
    print(f"wear gini       : {gini:.4f}")


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.campaign.tasks import TaskError, run_trace_lifetime_task
    from repro.traffic import TraceFileError

    if args.scheme is None:
        print("error: repro trace needs --scheme", file=sys.stderr)
        return 2
    if args.trace is None and args.trace_file is None:
        print("error: repro trace needs --trace or --trace-file",
              file=sys.stderr)
        return 2
    params = {
        "scheme": args.scheme,
        "lines": args.lines,
        "endurance": args.endurance,
        "max_writes": args.budget,
        "interval": args.interval,
        "regions": args.regions,
        "stages": args.stages,
        "alpha": args.alpha,
        "target": args.target,
        "fast": not args.no_fast,
    }
    if args.trace is not None:
        params["trace"] = args.trace
    if args.trace_file is not None:
        params["trace_file"] = args.trace_file
        params["line_bytes"] = args.line_bytes
        params["window_start"] = args.window_start
        params["window_mode"] = args.window_mode
        params.setdefault("trace", args.trace_file)
    if args.outer is not None:
        params["outer"] = args.outer
    try:
        result = run_trace_lifetime_task(params, args.seed)
    except (TaskError, TraceFileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, sort_keys=True))
        return 0
    _print_trace_result(args, result, "trace")
    return 0


def cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.traffic import TraceFileError, convert_to_rbt

    try:
        n = convert_to_rbt(
            args.csv, args.rbt,
            n_lines=args.lines,
            line_bytes=args.line_bytes,
            window_start=args.window_start,
            window_mode=args.window_mode,
        )
    except TraceFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {n} line writes to {args.rbt}")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.traffic import (
        TraceFileError,
        csv_info,
        rbt_metadata,
        trace_format,
    )

    try:
        if trace_format(args.path) == "rbt":
            header = rbt_metadata(args.path)
            document = {
                "format": "rbt",
                "n_entries": header["n_entries"],
                "metadata": header.get("meta", {}),
            }
        else:
            n_records, n_writes, n_lines, max_la = csv_info(
                args.path, line_bytes=args.line_bytes
            )
            document = {
                "format": "csv",
                "n_records": n_records,
                "n_writes": n_writes,
                "n_write_lines": n_lines,
                "max_raw_la": max_la,
            }
    except TraceFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(document, sort_keys=True))
        return 0
    print(f"format       : {document['format']}")
    if document["format"] == "rbt":
        print(f"line writes  : {document['n_entries']}")
        for key, value in sorted(
            dict(document["metadata"]).items()  # type: ignore[call-overload]
        ):
            print(f"  {key:<11}: {value}")
    else:
        print(f"records      : {document['n_records']}")
        print(f"writes       : {document['n_writes']}")
        print(f"line writes  : {document['n_write_lines']} "
              f"(at {args.line_bytes} B/line)")
        print(f"max raw line : {document['max_raw_la']}")
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    from repro.campaign.tasks import TaskError, run_tenant_lifetime_task
    from repro.traffic import TrafficSpecError

    params = {
        "scheme": args.scheme,
        "lines": args.lines,
        "endurance": args.endurance,
        "max_writes": args.budget,
        "interval": args.interval,
        "regions": args.regions,
        "stages": args.stages,
        "fast": not args.no_fast,
    }
    if args.outer is not None:
        params["outer"] = args.outer
    if args.profile is not None:
        params["profile"] = args.profile
    else:
        params["tenants"] = args.tenants
        params["alpha"] = args.alpha
        params["churn_interval"] = args.churn_interval
        params["churn_fraction"] = args.churn_fraction
        params["churn_boost"] = args.churn_boost
        params["schedule_interval"] = args.schedule_interval
    try:
        result = run_tenant_lifetime_task(params, args.seed)
    except (TaskError, TrafficSpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, sort_keys=True))
        return 0
    print(f"tenants         : {result['tenants']} "
          f"(churn interval {result['churn_interval']})")
    _print_trace_result(args, result, "traffic")
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    cfg = SecurityRBSGConfig(
        args.subregions, args.inner, args.outer, args.stages
    )
    overhead = security_rbsg_overhead(PAPER_PCM, cfg)
    if args.json:
        print(json.dumps({
            "n_subregions": args.subregions,
            "inner_interval": args.inner,
            "outer_interval": args.outer,
            "n_stages": args.stages,
            "register_bits": overhead.register_bits,
            "register_bytes": overhead.register_bytes,
            "isremap_sram_bits": overhead.isremap_sram_bits,
            "isremap_sram_bytes": overhead.isremap_sram_bytes,
            "spare_lines": overhead.spare_lines,
            "spare_bytes": overhead.spare_bytes,
            "cubing_gates": overhead.cubing_gates,
        }, sort_keys=True))
        return 0
    print(f"Security RBSG overhead (1 GB bank, S={args.stages}, "
          f"R={args.subregions}):")
    print(f"  registers    : {overhead.register_bits} bits "
          f"({overhead.register_bytes / 1024:.2f} KB)")
    print(f"  isRemap SRAM : {overhead.isremap_sram_bytes / 2**20:.2f} MB")
    print(f"  spare lines  : {overhead.spare_lines} "
          f"({overhead.spare_bytes / 1024:.1f} KB PCM)")
    print(f"  cubing logic : {overhead.cubing_gates} gates")
    return 0


def cmd_stages(args: argparse.Namespace) -> int:
    minimum = min_secure_stages(PAPER_PCM, args.outer_interval)
    print(f"outer remapping interval {args.outer_interval}, "
          f"{PAPER_PCM.address_bits} key bits per stage:")
    print(f"  minimum secure stage count: {minimum}")
    for stages in range(max(1, minimum - 2), minimum + 3):
        status = "SECURE" if is_secure(PAPER_PCM, stages,
                                       args.outer_interval) else "detectable"
        print(f"  S={stages:2d}: {status}")
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    from repro.analysis.tradeoff import explore_design_space, pareto_front

    feasible = explore_design_space(
        PAPER_PCM, max_write_overhead=args.max_overhead
    )
    if not feasible:
        print("no feasible design under these constraints", file=sys.stderr)
        return 1
    front = pareto_front(feasible)
    print(f"feasible designs: {len(feasible)}; Pareto-optimal: {len(front)}")
    print(f"{'R':>5} {'inner':>6} {'outer':>6} {'S':>3}  "
          f"{'lifetime':>9} {'overhead':>9} {'reg bits':>9} {'gates':>6}")
    for point in front[: args.top]:
        cfg = point.config
        print(f"{cfg.n_subregions:>5} {cfg.inner_interval:>6} "
              f"{cfg.outer_interval:>6} {cfg.n_stages:>3}  "
              f"{point.lifetime_fraction:>8.1%} "
              f"{point.write_overhead:>8.2%} "
              f"{point.overhead.register_bits:>9} "
              f"{point.overhead.cubing_gates:>6}")
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    from repro.experiments import attack_matrix, summarize_matrix

    cells = attack_matrix(
        n_lines=args.lines,
        endurance=args.endurance,
        schemes=args.schemes,
        attacks=args.attacks,
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
    )
    print(summarize_matrix(cells))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.analysis.resilience import (
        side_channel_separation_ns,
        sweep_fault_rates,
        verify_retry_side_channel,
    )
    from repro.pcm.timing import LineData

    if args.side_channel:
        probes = verify_retry_side_channel(
            verify_fail_base=args.verify_fail or 0.05,
            n_trials=args.trials,
            seed=args.seed,
        )
        print("verify-retry side channel (write-latency distribution):")
        print(f"{'wear':>6} {'data':>6} {'mean ns':>9} {'p95 ns':>9} "
              f"{'max ns':>9} {'retries/wr':>10}")
        for p in probes:
            print(f"{p.wear_fraction:>6.2f} {LineData(p.data).name:>6} "
                  f"{p.mean_latency_ns:>9.1f} {p.p95_latency_ns:>9.1f} "
                  f"{p.max_latency_ns:>9.1f} {p.retries_per_write:>10.3f}")
        print(f"wear leak (aged vs fresh, MIXED): "
              f"{side_channel_separation_ns(probes):+.1f} ns mean")
        return 0

    config = PCMConfig(
        n_lines=args.lines,
        endurance=args.endurance,
        read_disturb_ber=args.read_disturb,
        ecp_entries=args.ecp,
    )
    results = sweep_fault_rates(
        args.schemes, config, args.rates,
        n_spares=args.spares, n_writes=args.writes, seed=args.seed,
        workers=args.workers,
    )
    print(f"fault-injection campaign: {args.lines} lines, "
          f"E={args.endurance:g}, {args.spares} spares, "
          f"{args.writes} writes, seed {args.seed}")
    print(f"{'scheme':<14} {'rate':>8} {'avail':>7} {'fails':>6} "
          f"{'retired':>8} {'retries':>8} {'corrected':>9} {'cause':>16}")
    for r in results:
        print(f"{r.scheme:<14} {r.verify_fail_base:>8.0e} "
              f"{r.availability:>6.1%} {r.health.failures:>6} "
              f"{r.health.retired_lines:>8} {r.health.retry_events:>8} "
              f"{r.health.corrected_errors:>9} {r.end_cause:>16}")
    return 0


# ---------------------------------------------------------- campaigns


def _campaign_execute(args: argparse.Namespace, resume: bool) -> int:
    """Shared engine of ``campaign run`` and ``campaign resume``."""
    from repro.campaign import (
        CampaignStore,
        RunnerConfig,
        SpecError,
        StoreError,
        load_spec,
        run_campaign,
    )

    try:
        if resume:
            store = CampaignStore.open(args.out)
            spec = store.spec()
        else:
            spec = load_spec(args.spec)
            store = CampaignStore.create(args.out, spec)
    except (SpecError, StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = RunnerConfig(
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        max_tasks=args.max_tasks,
        progress=not args.quiet,
    )
    with store:
        summary = run_campaign(spec, store, config)
    note = " (stopped early: --max-tasks)" if summary.stopped_early else ""
    print(f"campaign {spec.name}: {summary.n_ok} ok, "
          f"{summary.n_failed} failed, {summary.n_skipped} skipped "
          f"of {len(spec.expand())} tasks{note}")
    return 0 if summary.complete else 1


def cmd_campaign_run(args: argparse.Namespace) -> int:
    return _campaign_execute(args, resume=False)


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    return _campaign_execute(args, resume=True)


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore, StoreError

    try:
        status = CampaignStore.open(args.out).status()
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state = "complete" if status.complete else "in progress"
    print(f"campaign     : {status.name} (kind {status.kind})")
    print(f"tasks        : {status.n_ok}/{status.n_tasks} ok, "
          f"{status.n_error} errored, {status.n_pending} pending")
    print(f"records      : {status.n_records}")
    print(f"state        : {state}")
    return 0 if status.complete else 1


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore, StoreError, aggregate, to_csv, to_json

    try:
        store = CampaignStore.open(args.out)
        records = store.records()
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = aggregate(records)
    text = to_csv(rows) if args.format == "csv" else to_json(rows)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(rows)} rows to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_campaign_serve(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore, SpecError, StoreError, load_spec
    from repro.campaign.service import ServiceConfig, serve_campaign

    try:
        if args.resume:
            store = CampaignStore.open(args.out)
            spec = store.spec()
            # Resuming a big campaign: fold the log into the index once,
            # so this serve (and every later one) skips the full scan.
            store.compact()
        else:
            if args.spec is None:
                print("error: campaign serve needs a spec file "
                      "(or --resume)", file=sys.stderr)
                return 2
            spec = load_spec(args.spec)
            store = CampaignStore.create(args.out, spec)
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            lease_timeout_s=args.lease_timeout,
            heartbeat_interval_s=args.heartbeat_interval,
            task_timeout_s=args.task_timeout,
            retries=args.retries,
            max_requeues=args.max_requeues,
            linger_s=args.linger,
        )
    except (SpecError, StoreError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with store:
        summary = serve_campaign(spec, store, config)
    note = "" if summary.complete else " (drained before completion)"
    print(f"campaign {spec.name}: {summary.n_ok} ok, "
          f"{summary.n_failed} failed, {summary.n_skipped} skipped "
          f"of {len(spec.expand())} tasks{note}")
    return 0 if summary.complete else 1


def cmd_campaign_worker(args: argparse.Namespace) -> int:
    from repro.campaign.service import WorkerConfig, WorkerError, worker_main

    try:
        config = WorkerConfig(name=args.name, give_up_s=args.give_up)
        return worker_main(
            host=args.host,
            port=args.port,
            connect_dir=args.connect,
            config=config,
        )
    except (WorkerError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_campaign_watch(args: argparse.Namespace) -> int:
    from repro.campaign.service import WorkerError, watch_main

    try:
        return watch_main(
            host=args.host,
            port=args.port,
            connect_dir=args.connect,
            interval_s=args.interval,
            once=args.once,
        )
    except (WorkerError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_campaign_compact(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore, StoreError

    try:
        store = CampaignStore.open(args.out)
        n = store.compact()
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"compacted {args.out}: {n} completed task(s) indexed")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.runner import main as lint_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if not args.flow:
        argv.append("--no-flow")
    if args.no_cache:
        argv.append("--no-cache")
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.check_suppressions:
        argv.append("--check-suppressions")
    if args.baseline:
        argv += ["--baseline", *args.baseline]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.perfmodel import PARSEC_LIKE, SPEC_LIKE
    from repro.perfmodel.cpu import ipc_degradation_percent

    for label, suite in (("PARSEC-like", PARSEC_LIKE),
                         ("SPEC-like", SPEC_LIKE)):
        losses = [
            ipc_degradation_percent(
                spec, args.interval, n_mem_ops=args.ops, seed=args.seed
            )
            for spec in suite
        ]
        print(f"{label:12s}: avg IPC loss {np.mean(losses):5.2f} % "
              f"(max {np.max(losses):.2f} % on "
              f"{suite[int(np.argmax(losses))].name})")
    return 0


# ---------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Security RBSG (IPDPS'16) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lifetime", help="analytic paper-scale lifetime")
    p.add_argument("--scheme", required=True,
                   choices=["none", "start-gap", "table", "random-swap",
                            "rbsg", "sr", "multiway-sr", "two-level-sr",
                            "security-rbsg"])
    p.add_argument("--attack", choices=["raa", "rta"],
                   help="closed-form model to evaluate (default mode)")
    p.add_argument("--regions", type=int, default=32)
    p.add_argument("--interval", type=int, default=100)
    p.add_argument("--subregions", type=int, default=512)
    p.add_argument("--inner", type=int, default=64)
    p.add_argument("--outer", type=int, default=128)
    p.add_argument("--stages", type=int, default=7)
    p.add_argument("--paper-scale", action="store_true",
                   help="measure (not model) lifetime at paper scale on "
                        "the analytic fast-forward engine")
    p.add_argument("--trace", default="uniform",
                   choices=["uniform", "zipf", "sequential", "raa"],
                   help="[--paper-scale] workload distribution")
    p.add_argument("--lines", type=int, default=1 << 23,
                   help="[--paper-scale] device lines (default 2^23)")
    p.add_argument("--endurance", type=float, default=1e8,
                   help="[--paper-scale] per-line endurance (default 1e8)")
    p.add_argument("--spares", type=int, default=64,
                   help="[--paper-scale] spare-pool lines provisioned "
                        "(sizes the array/memmaps; lifetime reported is "
                        "still the paper's first-failure metric)")
    p.add_argument("--shards", type=int, default=0,
                   help="[--paper-scale] shard the array into N banks")
    p.add_argument("--memmap-dir", default=None,
                   help="[--paper-scale] back shard banks with memmap files")
    p.add_argument("--fast-forward", default="auto",
                   choices=["auto", "analytic", "off"],
                   help="[--paper-scale] engine tier policy")
    p.add_argument("--alpha", type=float, default=1.2,
                   help="[--paper-scale] zipf exponent")
    p.add_argument("--seed", type=int, default=0,
                   help="[--paper-scale] trace / scheme seed")
    p.add_argument("--json", action="store_true",
                   help="emit a single JSON object instead of text")
    p.set_defaults(func=cmd_lifetime)

    p = sub.add_parser("simulate", help="run a real attack (scaled device)")
    p.add_argument("--scheme", required=True,
                   choices=["none", "rbsg", "sr", "security-rbsg"])
    p.add_argument("--attack", required=True, choices=["raa", "bpa", "rta"])
    p.add_argument("--lines", type=int, default=512)
    p.add_argument("--endurance", type=float, default=2e4)
    p.add_argument("--regions", type=int, default=8)
    p.add_argument("--interval", type=int, default=8)
    p.add_argument("--stages", type=int, default=7)
    p.add_argument("--target", type=int, default=5)
    p.add_argument("--budget", type=int, default=50_000_000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "trace",
        help="measured lifetime/overhead under a synthetic or loaded "
             "trace (batched engine); also `trace convert` / `trace info`",
    )
    p.add_argument("--scheme",
                   choices=["none", "start-gap", "table", "random-swap",
                            "rbsg", "sr", "multiway-sr", "two-level-sr",
                            "security-rbsg"])
    p.add_argument("--trace",
                   choices=["uniform", "zipf", "sequential", "raa"])
    p.add_argument("--trace-file", metavar="PATH",
                   help="drive the device with a loaded trace file "
                        "(MSR/SNIA CSV, optionally gzipped, or .rbt) "
                        "instead of a synthetic --trace")
    p.add_argument("--line-bytes", type=int, default=64,
                   help="bytes per memory line for CSV offset mapping")
    p.add_argument("--window-start", type=int, default=0,
                   help="first line address of the CSV mapping window")
    p.add_argument("--window-mode", choices=["wrap", "drop", "clamp"],
                   default="wrap",
                   help="how CSV addresses beyond --lines are normalised")
    p.add_argument("--lines", type=int, default=4096)
    p.add_argument("--endurance", type=float, default=1e4)
    p.add_argument("--budget", type=int, default=10_000_000,
                   help="stop after this many user writes")
    p.add_argument("--interval", type=int, default=16)
    p.add_argument("--regions", type=int, default=8)
    p.add_argument("--outer", type=int, default=None,
                   help="outer remap interval (default: 2x --interval)")
    p.add_argument("--stages", type=int, default=7)
    p.add_argument("--alpha", type=float, default=1.2,
                   help="zipf skew exponent")
    p.add_argument("--target", type=int, default=5,
                   help="hammered address for --trace raa")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--no-fast", action="store_true",
                   help="use the scalar reference engine instead of the "
                        "batched fast path (results are bit-identical)")
    p.add_argument("--json", action="store_true",
                   help="emit a single JSON object instead of text")
    p.set_defaults(func=cmd_trace)
    trace_sub = p.add_subparsers(dest="trace_cmd")

    sp = trace_sub.add_parser(
        "convert", help="convert a CSV trace to the .rbt binary format"
    )
    sp.add_argument("csv", help="source CSV trace (plain or .gz)")
    sp.add_argument("rbt", help="destination .rbt file")
    sp.add_argument("--lines", type=int, required=True,
                    help="device size the addresses are normalised to")
    sp.add_argument("--line-bytes", type=int, default=64)
    sp.add_argument("--window-start", type=int, default=0)
    sp.add_argument("--window-mode", choices=["wrap", "drop", "clamp"],
                    default="wrap")
    sp.set_defaults(func=cmd_trace_convert)

    sp = trace_sub.add_parser(
        "info", help="summarise a CSV or .rbt trace file"
    )
    sp.add_argument("path", help="trace file (CSV, gzipped CSV, or .rbt)")
    sp.add_argument("--line-bytes", type=int, default=64,
                    help="bytes per line for the CSV line-write count")
    sp.add_argument("--json", action="store_true",
                    help="emit a single JSON object instead of text")
    sp.set_defaults(func=cmd_trace_info)

    p = sub.add_parser(
        "traffic",
        help="measured lifetime under multi-tenant mixed traffic "
             "(batched engine)",
    )
    p.add_argument("--scheme", required=True,
                   choices=["none", "start-gap", "table", "random-swap",
                            "rbsg", "sr", "multiway-sr", "two-level-sr",
                            "security-rbsg"])
    p.add_argument("--profile", metavar="SPEC",
                   help="traffic spec file (.toml or .json); overrides the "
                        "inline --tenants/--alpha/--churn-* population")
    p.add_argument("--tenants", type=int, default=1000,
                   help="inline population size (60%% zipf / 30%% uniform "
                        "/ 10%% sequential)")
    p.add_argument("--alpha", type=float, default=1.2,
                   help="zipf skew of the inline population")
    p.add_argument("--churn-interval", type=int, default=0,
                   help="writes between hot-tenant redraws (0 = no churn)")
    p.add_argument("--churn-fraction", type=float, default=0.02,
                   help="fraction of tenants boosted per churn epoch")
    p.add_argument("--churn-boost", type=float, default=8.0,
                   help="arrival-rate multiplier for hot tenants")
    p.add_argument("--schedule-interval", type=int, default=8192,
                   help="writes between arrival-rate re-evaluations")
    p.add_argument("--lines", type=int, default=4096)
    p.add_argument("--endurance", type=float, default=1e4)
    p.add_argument("--budget", type=int, default=10_000_000,
                   help="stop after this many user writes")
    p.add_argument("--interval", type=int, default=16)
    p.add_argument("--regions", type=int, default=8)
    p.add_argument("--outer", type=int, default=None,
                   help="outer remap interval (default: 2x --interval)")
    p.add_argument("--stages", type=int, default=7)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--no-fast", action="store_true",
                   help="use the scalar reference engine instead of the "
                        "batched fast path (results are bit-identical)")
    p.add_argument("--json", action="store_true",
                   help="emit a single JSON object instead of text")
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser("overhead", help="hardware overhead table (§V-C3)")
    p.add_argument("--subregions", type=int, default=512)
    p.add_argument("--inner", type=int, default=64)
    p.add_argument("--outer", type=int, default=128)
    p.add_argument("--stages", type=int, default=7)
    p.add_argument("--json", action="store_true",
                   help="emit a single JSON object instead of text")
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("stages", help="DFN security sizing (§IV-B)")
    p.add_argument("--outer-interval", type=int, default=128)
    p.set_defaults(func=cmd_stages)

    p = sub.add_parser("design", help="design-space advisor (Pareto front)")
    p.add_argument("--max-overhead", type=float, default=0.05)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("matrix", help="attack x scheme matrix (scaled device)")
    p.add_argument("--schemes", nargs="+", default=["none", "rbsg",
                                                    "security-rbsg"])
    p.add_argument("--attacks", nargs="+", default=["raa"])
    p.add_argument("--lines", type=int, default=2**8)
    p.add_argument("--endurance", type=float, default=5e3)
    p.add_argument("--budget", type=int, default=30_000_000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (results identical to serial)")
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("faults", help="fault injection & resilience")
    p.add_argument("--schemes", nargs="+", default=["none", "rbsg",
                                                    "security-rbsg"])
    p.add_argument("--rates", nargs="+", type=float,
                   default=[0.0, 1e-3, 1e-2],
                   help="verify-failure base rates to sweep")
    p.add_argument("--read-disturb", type=float, default=0.0,
                   help="per-bit transient read-error probability")
    p.add_argument("--lines", type=int, default=2**8)
    p.add_argument("--endurance", type=float, default=2e3)
    p.add_argument("--spares", type=int, default=8)
    p.add_argument("--ecp", type=int, default=4,
                   help="ECP entries (correctable cells) per line")
    p.add_argument("--writes", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--side-channel", action="store_true",
                   help="run the verify-retry latency experiment instead")
    p.add_argument("--verify-fail", type=float, default=0.05,
                   help="verify-failure base rate for --side-channel")
    p.add_argument("--trials", type=int, default=400,
                   help="writes per probe for --side-channel")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (results identical to serial)")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "campaign",
        help="parallel experiment campaigns (crash-safe, resumable)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_cmd", required=True)

    def add_runner_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = inline, deterministic "
                             "baseline)")
        sp.add_argument("--timeout", type=float, default=None,
                        help="per-task timeout in seconds")
        sp.add_argument("--retries", type=int, default=1,
                        help="extra attempts per failing task")
        sp.add_argument("--max-tasks", type=int, default=None,
                        help="stop after at most N tasks (smoke tests)")
        sp.add_argument("--quiet", action="store_true",
                        help="suppress the stderr progress line")

    sp = campaign_sub.add_parser("run", help="start a campaign from a spec")
    sp.add_argument("spec", help="campaign spec file (.toml or .json)")
    sp.add_argument("--out", required=True,
                    help="campaign directory (manifest + results.jsonl)")
    add_runner_args(sp)
    sp.set_defaults(func=cmd_campaign_run)

    sp = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign"
    )
    sp.add_argument("out", help="campaign directory")
    add_runner_args(sp)
    sp.set_defaults(func=cmd_campaign_resume)

    sp = campaign_sub.add_parser("status", help="campaign progress counts")
    sp.add_argument("out", help="campaign directory")
    sp.set_defaults(func=cmd_campaign_status)

    sp = campaign_sub.add_parser(
        "report", help="aggregate results to JSON or CSV"
    )
    sp.add_argument("out", help="campaign directory")
    sp.add_argument("--format", choices=["json", "csv"], default="json")
    sp.add_argument("--output", metavar="FILE",
                    help="write the report here instead of stdout")
    sp.set_defaults(func=cmd_campaign_report)

    def add_connect_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--connect", metavar="DIR", default=None,
                        help="campaign directory to discover the "
                             "coordinator from (service.json; re-read on "
                             "every reconnect)")
        sp.add_argument("--host", default=None,
                        help="coordinator host (alternative to --connect)")
        sp.add_argument("--port", type=int, default=None,
                        help="coordinator port (alternative to --connect)")

    sp = campaign_sub.add_parser(
        "serve",
        help="coordinate a distributed campaign (lease tasks to workers)",
    )
    sp.add_argument("spec", nargs="?", default=None,
                    help="campaign spec file (.toml or .json); omit with "
                         "--resume")
    sp.add_argument("--out", required=True, help="campaign directory")
    sp.add_argument("--resume", action="store_true",
                    help="continue an existing campaign directory")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral; the bound port is "
                         "published in <out>/service.json)")
    sp.add_argument("--lease-timeout", type=float, default=30.0,
                    help="heartbeat silence before a lease is requeued")
    sp.add_argument("--heartbeat-interval", type=float, default=5.0,
                    help="heartbeat cadence advertised to workers")
    sp.add_argument("--task-timeout", type=float, default=0.0,
                    help="per-attempt execution budget workers enforce "
                         "(0 = unlimited)")
    sp.add_argument("--retries", type=int, default=1,
                    help="extra attempts per task-errored task")
    sp.add_argument("--max-requeues", type=int, default=3,
                    help="lease expiries per attempt before dead-letter")
    sp.add_argument("--linger", type=float, default=3.0,
                    help="seconds to keep draining workers after completion")
    sp.set_defaults(func=cmd_campaign_serve)

    sp = campaign_sub.add_parser(
        "worker", help="execute leased tasks for a campaign coordinator"
    )
    add_connect_args(sp)
    sp.add_argument("--name", default=f"worker-{os.getpid()}",
                    help="worker name (reconnect jitter + coordinator logs)")
    sp.add_argument("--give-up", type=float, default=60.0,
                    help="exit 3 after this long without reaching a "
                         "coordinator")
    sp.set_defaults(func=cmd_campaign_worker)

    sp = campaign_sub.add_parser(
        "watch", help="live progress/ETA view of a served campaign"
    )
    add_connect_args(sp)
    sp.add_argument("--interval", type=float, default=1.0,
                    help="poll interval in seconds")
    sp.add_argument("--once", action="store_true",
                    help="print one status snapshot and exit")
    sp.set_defaults(func=cmd_campaign_watch)

    sp = campaign_sub.add_parser(
        "compact",
        help="index completed tasks (sqlite) so resume skips the log scan",
    )
    sp.add_argument("out", help="campaign directory")
    sp.set_defaults(func=cmd_campaign_compact)

    p = sub.add_parser(
        "lint", help="reprolint: simulator-invariant static analysis"
    )
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated rule codes to run")
    p.add_argument("--ignore", metavar="CODES",
                   help="comma-separated rule codes to skip")
    p.add_argument("--flow", dest="flow", action="store_true", default=True,
                   help="run flow-sensitive rules REP101-REP306 (default)")
    p.add_argument("--no-flow", dest="flow", action="store_false",
                   help="skip the flow-sensitive rules")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the incremental cache")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the per-file pass "
                        "(0 = one per CPU; output is byte-identical)")
    p.add_argument("--check-suppressions", action="store_true",
                   help="report stale reprolint pragmas (REP100)")
    p.add_argument("--baseline", nargs=2, metavar=("MODE", "FILE"),
                   help="'write FILE' records current findings; "
                        "'check FILE' reports only new or stale ones")
    p.add_argument("--list-rules", action="store_true",
                   help="describe every registered rule and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("perf", help="IPC impact (§V-C4)")
    p.add_argument("--interval", type=int, default=64)
    p.add_argument("--ops", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_perf)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
