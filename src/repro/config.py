"""Experiment configuration objects and the paper's reference parameters.

The evaluation section of the paper (Section V) fixes one device
configuration for all lifetime experiments:

* 1 GB PCM bank with 256 B lines  →  ``N = 2**22`` lines (22-bit addresses),
* read / RESET latency 125 ns, SET latency 1000 ns,
* per-line write endurance ``E = 10**8``.

:data:`PAPER_PCM` captures that device.  The scheme-parameter presets
(:data:`RBSG_RECOMMENDED`, :data:`SR_SUGGESTED`, ...) capture the
"recommended" configurations the paper quotes headline numbers for.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.util.bitops import bit_length_exact, is_power_of_two

#: SET pulse duration in nanoseconds (writing bit '1'), per Section II-C.
SET_LATENCY_NS = 1000.0
#: RESET pulse duration in nanoseconds (writing bit '0'), per Section II-C.
RESET_LATENCY_NS = 125.0
#: READ latency in nanoseconds, per Section II-C.
READ_LATENCY_NS = 125.0


@dataclass(frozen=True)
class PCMConfig:
    """Physical parameters of one PCM bank.

    Parameters
    ----------
    n_lines:
        Number of *data* lines exposed to software.  Must be a power of two
        (addresses are ``log2(n_lines)`` bits wide); wear-leveling schemes
        allocate their spare lines on top of this.
    endurance:
        Maximum number of writes a line tolerates before a stuck-at fault.
    read_ns / reset_ns / set_ns:
        Access latencies.  The asymmetry ``set_ns >> reset_ns`` is the side
        channel the Remapping Timing Attack exploits.
    line_bytes:
        Line (block) size; only used for capacity/overhead reporting.
    differential_writes:
        If True, writes only flip changed cells (the PRESET-style
        optimisation of the paper's ref. [8]): rewriting a line with its
        current content costs one verify read and causes **no wear**.
        Default False — the paper's evaluation model.
    read_disturb_ber:
        Per-bit probability of a *transient* error on a line read
        (resistance-drift read disturb).  0 (default) disables the model
        entirely and keeps the seed's fast read path.
    verify_fail_base:
        Probability that a program pulse on a *fresh* line fails its
        verify read and must be retried.  0 (default) disables the
        write-verify-retry machinery: write latencies are bit-identical
        to the paper's model.
    verify_fail_wear_factor / verify_fail_wear_exponent:
        Wear dependence of the verify-failure probability:
        ``p = base * (1 + factor * (wear/endurance)**exponent)``.  With
        the defaults a line at its endurance limit fails verify 10x as
        often as a fresh one — retries (and thus write latency) leak the
        line's wear state, the side channel
        :func:`repro.analysis.resilience.verify_retry_side_channel`
        measures.
    verify_fail_all0_factor:
        Multiplier applied to the verify-failure probability when the
        written data is ALL-0 (RESET-only programs are the reliable
        ones); < 1 makes retries data-dependent as well as wear-dependent.
    max_write_retries:
        Bound on re-program attempts after a failed verify.  A line that
        still fails verify after this many retries gains a permanent
        stuck-at cell (absorbed by ECP while capacity lasts).
    ecp_entries:
        Error-Correcting-Pointer capacity per line: number of faulty
        cells correction can substitute.  Exceeding it makes the line
        uncorrectable and triggers retirement.
    ecp_correction_ns:
        Latency charged per corrected error on a read.
    """

    n_lines: int
    endurance: float = 1e8
    read_ns: float = READ_LATENCY_NS
    reset_ns: float = RESET_LATENCY_NS
    set_ns: float = SET_LATENCY_NS
    line_bytes: int = 256
    differential_writes: bool = False
    read_disturb_ber: float = 0.0
    verify_fail_base: float = 0.0
    verify_fail_wear_factor: float = 9.0
    verify_fail_wear_exponent: float = 2.0
    verify_fail_all0_factor: float = 0.5
    max_write_retries: int = 3
    ecp_entries: int = 0
    ecp_correction_ns: float = 25.0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n_lines):
            raise ValueError(f"n_lines must be a power of two, got {self.n_lines}")
        if self.endurance <= 0:
            raise ValueError("endurance must be positive")
        if min(self.read_ns, self.reset_ns, self.set_ns) <= 0:
            raise ValueError("latencies must be positive")
        if not 0.0 <= self.read_disturb_ber < 1.0:
            raise ValueError("read_disturb_ber must be in [0, 1)")
        if not 0.0 <= self.verify_fail_base < 1.0:
            raise ValueError("verify_fail_base must be in [0, 1)")
        if self.verify_fail_wear_factor < 0:
            raise ValueError("verify_fail_wear_factor must be >= 0")
        if self.verify_fail_wear_exponent <= 0:
            raise ValueError("verify_fail_wear_exponent must be positive")
        if not 0.0 <= self.verify_fail_all0_factor <= 1.0:
            raise ValueError("verify_fail_all0_factor must be in [0, 1]")
        if self.max_write_retries < 0:
            raise ValueError("max_write_retries must be >= 0")
        if self.ecp_entries < 0:
            raise ValueError("ecp_entries must be >= 0")
        if self.ecp_correction_ns < 0:
            raise ValueError("ecp_correction_ns must be >= 0")

    @property
    def address_bits(self) -> int:
        """Width of a line address in bits (``B`` in the paper)."""
        return bit_length_exact(self.n_lines)

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity of the bank in bytes."""
        return self.n_lines * self.line_bytes

    @property
    def line_bits(self) -> int:
        """Bits per line (the read-disturb trial count)."""
        return self.line_bytes * 8

    @property
    def fault_injection_enabled(self) -> bool:
        """True when any stochastic fault model is armed.

        All-zero fault probabilities (the default) keep every hot path
        bit-identical to the paper's model — no RNG draws, no extra
        latency terms.
        """
        return self.read_disturb_ber > 0 or self.verify_fail_base > 0

    @property
    def ideal_lifetime_ns(self) -> float:
        """Lifetime under perfectly uniform wear, writing back-to-back.

        Every line absorbs exactly ``endurance`` writes and each write takes
        a full SET pulse; this is the "Ideal lifetime" line of Figs. 12-15.
        """
        return self.n_lines * self.endurance * self.set_ns

    def scaled(self, n_lines: int | None = None, endurance: float | None = None) -> "PCMConfig":
        """Return a copy with a smaller geometry for tractable simulation."""
        return dataclasses.replace(
            self,
            n_lines=self.n_lines if n_lines is None else n_lines,
            endurance=self.endurance if endurance is None else endurance,
        )


@dataclass(frozen=True)
class RBSGConfig:
    """Parameters of Region-Based Start-Gap (Section III-A).

    ``n_regions`` contiguous regions in IA space, each with its own gap line;
    a remap movement fires every ``remap_interval`` writes to a region.
    """

    n_regions: int = 32
    remap_interval: int = 100

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.remap_interval < 1:
            raise ValueError("remap_interval must be >= 1")


@dataclass(frozen=True)
class SRConfig:
    """Parameters of two-level Security Refresh (Sections III-C/E).

    The suggested configuration in the paper is 512 sub-regions, inner
    remapping interval 64 and outer remapping interval 128.
    """

    n_subregions: int = 512
    inner_interval: int = 64
    outer_interval: int = 128

    def __post_init__(self) -> None:
        if self.n_subregions < 1:
            raise ValueError("n_subregions must be >= 1")
        if self.inner_interval < 1 or self.outer_interval < 1:
            raise ValueError("remap intervals must be >= 1")


@dataclass(frozen=True)
class SecurityRBSGConfig:
    """Parameters of the proposed Security RBSG scheme (Section IV).

    ``n_stages`` is the security knob: the number of dynamic Feistel network
    stages in the outer level.  The paper selects 7 stages for its headline
    results and shows 6 stages suffice to keep the key un-detectable for
    outer remapping intervals up to 132.
    """

    n_subregions: int = 512
    inner_interval: int = 64
    outer_interval: int = 128
    n_stages: int = 7

    def __post_init__(self) -> None:
        if self.n_subregions < 1:
            raise ValueError("n_subregions must be >= 1")
        if self.inner_interval < 1 or self.outer_interval < 1:
            raise ValueError("remap intervals must be >= 1")
        if self.n_stages < 1:
            raise ValueError("n_stages must be >= 1")


#: The paper's evaluation device: 1 GB bank, 256 B lines, endurance 1e8.
PAPER_PCM = PCMConfig(n_lines=2**22)

#: RBSG configuration the original Start-Gap paper recommends (32 regions,
#: remapping interval 100); the "478 s under RTA" headline uses it.
RBSG_RECOMMENDED = RBSGConfig(n_regions=32, remap_interval=100)

#: Two-level Security Refresh configuration suggested by its authors.
SR_SUGGESTED = SRConfig(n_subregions=512, inner_interval=64, outer_interval=128)

#: Security RBSG with the paper's chosen 7-stage dynamic Feistel network.
SECURITY_RBSG_RECOMMENDED = SecurityRBSGConfig(
    n_subregions=512, inner_interval=64, outer_interval=128, n_stages=7
)

#: Table I of the paper: the configuration sweep for Figs. 12, 13 and 15.
TABLE_I_SUBREGIONS = (256, 512, 1024)
TABLE_I_INNER_INTERVALS = (16, 32, 64, 128)
TABLE_I_OUTER_INTERVALS = (16, 32, 64, 128, 256)
