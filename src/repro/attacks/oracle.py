"""Latency observation helper — the attacker's entire view of the system.

:class:`LatencyOracle` wraps a controller and exposes ``extra_latency``:
the observed latency minus the known baseline cost of the attacker's own
write.  Any positive remainder is remapping work the controller did on the
side, and its magnitude classifies the remapped data (Fig. 4):

================================  ===========================
remap observed                    extra latency (default ns)
================================  ===========================
Start-Gap copy of ALL-0 data      125 + 125  = 250
Start-Gap copy of ALL-1 data      125 + 1000 = 1125
SR swap ALL-0 / ALL-0             2*125 + 2*125 = 500
SR swap ALL-0 / ALL-1             2*125 + 125 + 1000 = 1375
SR swap ALL-1 / ALL-1             2*125 + 2*1000 = 2250
================================  ===========================
"""

from __future__ import annotations

from repro.pcm.timing import ALL0, ALL1, LineData
from repro.sim.memory_system import MemoryController


class LatencyOracle:
    """Observation side of an attack: writes, and the timing they leak."""

    def __init__(self, controller: MemoryController, tolerance_ns: float = 1.0):
        self.controller = controller
        self.tolerance_ns = tolerance_ns
        self.user_writes = 0
        timing = controller.array.timing
        self._read = timing.read_latency()
        # Reference remap latencies for classification.
        self.copy_all0 = timing.copy_latency(ALL0)
        self.copy_all1 = timing.copy_latency(ALL1)
        self.swap_00 = timing.swap_latency(ALL0, ALL0)
        self.swap_01 = timing.swap_latency(ALL0, ALL1)
        self.swap_11 = timing.swap_latency(ALL1, ALL1)

    def write(self, la: int, data: LineData) -> float:
        """Issue a write; return the *extra* latency beyond the write itself."""
        observed = self.controller.write(la, data)
        self.user_writes += 1
        return observed - self.controller.baseline_write_latency(data)

    def matches(self, extra_ns: float, reference_ns: float) -> bool:
        """Is an observed extra latency the given remap class?"""
        return abs(extra_ns - reference_ns) <= self.tolerance_ns

    @property
    def elapsed_ns(self) -> float:
        """Simulated wall clock, as the attacker also experiences it."""
        return self.controller.elapsed_ns
