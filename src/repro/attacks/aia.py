"""Address Inference Attack — the §II-B upper-bound adversary.

The paper's third attack category: an attacker who "can compromise the
operating system, and thereafter infer the logical addresses that will be
subsequently mapped to the same physical location based on the knowledge of
the wear-leveling scheme or the side-channel information".

:class:`AddressInferenceAttack` models the *whole family* with one knob: a
mapping oracle the attacker may consult only every ``knowledge_interval``
writes (a fresh full LA→PA snapshot each time).  Between refreshes it
hammers whatever LA last mapped to its target physical line:

* ``knowledge_interval = 1``   — an omniscient adversary: the information-
  theoretic worst case any wear-leveling scheme can face (lifetime ≈ E
  writes, like no wear leveling at all);
* larger intervals — staler knowledge; the scheme's remapping outruns the
  attacker and writes leak off-target.

This is the right yardstick for a *defense*: Security RBSG's claim is not
that an omniscient attacker fails (none can), but that the timing side
channel cannot keep ``knowledge_interval`` anywhere near small enough —
the DFN keys rotate first (§IV-B).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import AttackResult
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL1, LineData
from repro.sim.memory_system import MemoryController


class AddressInferenceAttack:
    """Oracle-driven hammering with configurable knowledge staleness."""

    name = "AIA"

    def __init__(
        self,
        controller: MemoryController,
        target_pa: Optional[int] = None,
        knowledge_interval: int = 1,
        data: LineData = ALL1,
    ):
        if knowledge_interval < 1:
            raise ValueError("knowledge_interval must be >= 1")
        self.controller = controller
        self.knowledge_interval = knowledge_interval
        self.data = data
        scheme = controller.scheme
        self.target_pa = (
            scheme.translate(0) if target_pa is None else target_pa
        )
        if not 0 <= self.target_pa < scheme.n_physical:
            raise ValueError("target_pa outside the physical space")
        self.oracle_queries = 0

    def _consult_oracle(self):
        """Full-knowledge lookup: the LA at the target, plus the nearest.

        Returns ``(holder, nearest)`` where ``holder`` is the LA currently
        mapped to the target (or None when the target is a gap/spare slot)
        and ``nearest`` is the LA whose physical slot is closest — the
        right line to write while the target is vacant, because it keeps
        the target's own region rotating (writes elsewhere would freeze
        the local gap on the target indefinitely).
        """
        self.oracle_queries += 1
        scheme = self.controller.scheme
        holder = None
        nearest, nearest_distance = 0, None
        for la in range(scheme.n_lines):
            pa = scheme.translate(la)
            if pa == self.target_pa:
                holder = la
            distance = abs(pa - self.target_pa)
            if nearest_distance is None or distance < nearest_distance:
                nearest, nearest_distance = la, distance
        return holder, nearest

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Hammer the freshest-known holder of the target line."""
        writes = 0
        holder, nearest = self._consult_oracle()
        try:
            while writes < max_writes:
                target = holder if holder is not None else nearest
                burst = min(self.knowledge_interval, max_writes - writes)
                for _ in range(burst):
                    # reprolint: disable=REP002 wear attack; timing unused
                    self.controller.write(target, self.data)
                    writes += 1
                holder, nearest = self._consult_oracle()
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=writes + 1,
                elapsed_ns=self.controller.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
            )
        return AttackResult(
            attack=self.name,
            user_writes=writes,
            elapsed_ns=self.controller.elapsed_ns,
            failed=False,
        )
