"""Repeated Address Attack: hammer one logical address (Section II-B)."""

from __future__ import annotations

from repro.attacks.base import AttackResult
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL1, LineData
from repro.sim.memory_system import MemoryController


class RepeatedAddressAttack:
    """Write a single logical address until the device fails.

    Needs no knowledge whatsoever; defeats the no-wear-leveling baseline in
    ``endurance`` writes, and any scheme whose Line Vulnerability Factor is
    too large.
    """

    name = "RAA"

    def __init__(
        self,
        controller: MemoryController,
        target_la: int = 0,
        data: LineData = ALL1,
    ):
        self.controller = controller
        self.target_la = target_la
        self.data = data

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Hammer the target until a line fails or the budget runs out."""
        writes = 0
        try:
            while writes < max_writes:
                # reprolint: disable=REP002 wear attack; timing unused
                self.controller.write(self.target_la, self.data)
                writes += 1
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=writes + 1,
                elapsed_ns=self.controller.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
            )
        return AttackResult(
            attack=self.name,
            user_writes=writes,
            elapsed_ns=self.controller.elapsed_ns,
            failed=False,
        )
