"""Remapping Timing Attack against Region-Based Start-Gap (Section III-B).

Threat model: the attacker issues all memory writes (compromised OS, caches
bypassed) and observes each write's latency.  It knows the *algorithm* and
its public parameters (number of lines, regions, remapping interval) but not
the static randomizer's keys.

The attack recovers, for a chosen target ``L_i``, the logical addresses
``L_{i-1}, ..., L_{i-n}`` that are physically adjacent below it — an
invariant of RBSG because the static randomizer never changes.  It then
parks on one physical slot and writes whichever logical address currently
resides there, wearing a single line with nearly every write:

1. **Synchronize** (steps 1-3): zero the whole memory, hammer ``L_i`` with
   ALL-1 until a gap movement shows the ALL-1 copy latency (1125 ns) —
   that movement carried ``L_i``, revealing its region-local slot.  From
   then on the attacker mirrors the region's ``(start, gap, counter)``
   state machine exactly (it authors every write, and a full-memory sweep
   advances the region counter by exactly ``N/R`` regardless of order).
2. **Detect** (steps 4-6): for each address-bit ``j``, label every line's
   content with its LA's bit ``j`` (ALL-0 / ALL-1 sweep), then watch gap
   movements: the movement carrying the line at relative offset ``t`` below
   ``L_i`` leaks bit ``j`` of ``L_{i-t}`` through its copy latency.
3. **Wear out**: all attacker writes land on one physical slot; when the
   mirror shows the resident departing, switch to the next ``L_{i-t}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.base import AttackResult
from repro.attacks.oracle import LatencyOracle
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL0, ALL1, LineData
from repro.sim.memory_system import MemoryController
from repro.util.bitops import bit_length_exact
from repro.wearlevel.rbsg import RegionBasedStartGap


@dataclass(frozen=True)
class _Movement:
    """A gap movement as reconstructed by the attacker's mirror."""

    src: int  #: region-local slot the data was copied from
    dst: int  #: region-local slot it was copied to
    pre_start: int  #: start register before the movement
    pre_gap: int  #: gap register before the movement


class _RegionMirror:
    """The attacker's exact replica of one region's Start-Gap registers.

    Identical state machine to
    :class:`~repro.wearlevel.startgap.StartGapRegion`; kept separate so the
    attack demonstrably uses no scheme internals, only the public algorithm.
    """

    def __init__(self, n_lines: int, remap_interval: int):
        self.n = n_lines
        self.psi = remap_interval
        self.start = 0
        self.gap = n_lines
        self.count = 0

    def count_write(self) -> Optional[_Movement]:
        """Account one write known to land in the region."""
        self.count += 1
        if self.count % self.psi != 0:
            return None
        pre_start, pre_gap = self.start, self.gap
        src = (self.gap - 1) % (self.n + 1)
        dst = self.gap
        self.gap = src
        if self.gap == self.n:
            self.start = (self.start + 1) % self.n
        return _Movement(src=src, dst=dst, pre_start=pre_start, pre_gap=pre_gap)

    def slot_to_local_ia(self, slot: int, start: int, gap: int) -> int:
        """Invert the Start-Gap translation under a given register state."""
        if slot == gap:
            raise ValueError("the gap slot holds no line")
        pa = slot - 1 if slot > gap else slot
        return (pa - start) % self.n

    def local_ia_to_slot(self, ia: int, start: Optional[int] = None,
                         gap: Optional[int] = None) -> int:
        """Forward Start-Gap translation (defaults: current registers)."""
        start = self.start if start is None else start
        gap = self.gap if gap is None else gap
        pa = (ia + start) % self.n
        if pa >= gap:
            pa += 1
        return pa


class RBSGTimingAttack:
    """RTA against :class:`~repro.wearlevel.rbsg.RegionBasedStartGap`."""

    name = "RTA-RBSG"

    def __init__(
        self,
        controller: MemoryController,
        target_la: int = 0,
        tolerance_ns: float = 1.0,
    ):
        scheme = controller.scheme
        if not isinstance(scheme, RegionBasedStartGap):
            raise TypeError("RBSGTimingAttack requires a RegionBasedStartGap scheme")
        self.controller = controller
        self.oracle = LatencyOracle(controller, tolerance_ns)
        self.target_la = target_la
        self.n_lines = scheme.n_lines
        self.n_bits = bit_length_exact(scheme.n_lines)
        self.region_size = scheme.region_size
        self.remap_interval = scheme.remap_interval
        self.mirror = _RegionMirror(self.region_size, self.remap_interval)
        self.target_local_ia: Optional[int] = None
        self.detection_writes = 0

    # -------------------------------------------------------------- helpers

    def _bit_pattern(self, la: int, j: int) -> LineData:
        return ALL1 if (la >> j) & 1 else ALL0

    def _sweep(self, bit: Optional[int]) -> None:
        """Write every logical address (step 1 / step 4 labelling pass).

        ``bit is None`` writes ALL-0 everywhere; otherwise each line gets
        its LA's bit ``bit`` as content.  Latencies observed during the
        sweep are discarded (movements of other regions pollute them), but
        the region counter advances by exactly ``region_size`` writes.
        """
        for la in range(self.n_lines):
            data = ALL0 if bit is None else self._bit_pattern(la, bit)
            # reprolint: disable=REP002 labeling write; latency unused
            self.oracle.write(la, data)
        for _ in range(self.region_size):
            self.mirror.count_write()

    # ----------------------------------------------------------- phase A

    def synchronize(self, max_writes: Optional[int] = None) -> int:
        """Steps 1-3: locate the target line's region-local slot.

        Returns the region-local intermediate address of the target line
        (the attacker's coordinate origin for everything that follows).
        """
        start_writes = self.oracle.user_writes
        self._sweep(None)  # step 1: ALL-0 everywhere
        budget = max_writes or (self.region_size + 2) * self.remap_interval
        for _ in range(budget):
            extra = self.oracle.write(self.target_la, ALL1)  # steps 2-3
            info = self.mirror.count_write()
            if info is not None and self.oracle.matches(extra, self.oracle.copy_all1):
                # The only ALL-1 line is the target: this movement carried it.
                self.target_local_ia = self.mirror.slot_to_local_ia(
                    info.src, info.pre_start, info.pre_gap
                )
                self.detection_writes += self.oracle.user_writes - start_writes
                return self.target_local_ia
        raise RuntimeError("synchronization failed: no ALL-1 remap observed")

    # ----------------------------------------------------------- phase B

    def detect_sequence(self, n: int) -> List[int]:
        """Steps 4-6: recover ``[L_{i-1}, ..., L_{i-n}]`` bit by bit."""
        if self.target_local_ia is None:
            self.synchronize()
        if not 1 <= n <= self.region_size - 1:
            raise ValueError(f"n must be in [1, {self.region_size - 1}]")
        start_writes = self.oracle.user_writes
        recovered = [0] * (n + 1)  # index t in [1, n]
        for j in range(self.n_bits):
            self._sweep(j)  # step 4: label every line with its LA's bit j
            needed = set(range(1, n + 1))
            # Step 5: hammer the target; each movement leaks one line's bit.
            budget = (self.region_size + 2) * self.remap_interval * 2
            for _ in range(budget):
                if not needed:
                    break
                extra = self.oracle.write(
                    self.target_la, self._bit_pattern(self.target_la, j)
                )
                info = self.mirror.count_write()
                if info is None:
                    _ = extra  # no remap fired: latency carries no signal
                    continue
                carried_ia = self.mirror.slot_to_local_ia(
                    info.src, info.pre_start, info.pre_gap
                )
                t = (self.target_local_ia - carried_ia) % self.region_size
                if t not in needed:
                    _ = extra  # offset already recovered: observation is redundant
                    continue
                if self.oracle.matches(extra, self.oracle.copy_all1):
                    recovered[t] |= 1 << j
                elif not self.oracle.matches(extra, self.oracle.copy_all0):
                    raise RuntimeError(
                        f"unclassifiable remap latency {extra:.1f} ns"
                    )
                needed.discard(t)
            if needed:
                raise RuntimeError(
                    f"bit {j}: gap never passed offsets {sorted(needed)}"
                )
        self.detection_writes += self.oracle.user_writes - start_writes
        return recovered[1:]

    # ---------------------------------------------------------- phase C

    def wear_out(
        self, sequence: List[int], max_writes: int = 100_000_000
    ) -> AttackResult:
        """Pin all writes onto one physical slot until it fails.

        ``sequence`` is the output of :meth:`detect_sequence`.  The attacked
        slot is wherever the target line sits when this is called; residents
        rotate through ``[L_i] + sequence`` as the gap sweeps past.  When the
        *whole* region chain was recovered (``len(sequence) == N/R - 1``),
        the rotation is cyclic (``L_{i-N/R} == L_i``) and the attack runs
        until failure; a partial chain ends when it is exhausted.
        """
        if self.target_local_ia is None:
            raise RuntimeError("call synchronize()/detect_sequence() first")
        residents = [self.target_la] + list(sequence)
        cyclic = len(residents) == self.region_size
        target_slot = self.mirror.local_ia_to_slot(self.target_local_ia)
        idx = 0
        writes = 0
        try:
            while writes < max_writes:
                # reprolint: disable=REP002 hammering write; timing unused
                self.oracle.write(residents[idx], ALL1)
                writes += 1
                info = self.mirror.count_write()
                if info is not None and info.src == target_slot:
                    # Resident departed; the next line arrives one movement
                    # later — start hammering it immediately (its current
                    # slot is adjacent, costing <= one interval of slack).
                    idx += 1
                    if idx >= len(residents):
                        if not cyclic:
                            break  # recovered sequence exhausted
                        idx = 0
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=self.oracle.user_writes,
                elapsed_ns=self.oracle.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
                detection_writes=self.detection_writes,
            )
        return AttackResult(
            attack=self.name,
            user_writes=self.oracle.user_writes,
            elapsed_ns=self.oracle.elapsed_ns,
            failed=False,
            detection_writes=self.detection_writes,
        )

    # ------------------------------------------------------------- driver

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Full attack: synchronize, size and detect the sequence, wear out."""
        self.synchronize()
        endurance = self.controller.config.endurance
        per_dwell = (self.region_size + 1) * self.remap_interval
        n = min(self.region_size - 1, max(1, int(endurance // per_dwell) + 2))
        sequence = self.detect_sequence(n)
        return self.wear_out(sequence, max_writes=max_writes)
