"""Remapping Timing Attack against one-level Security Refresh (Section III-D).

The attacker recovers ``keyc XOR keyp`` one bit per labelling pass:

1. **Synchronize** (steps 1-2): zero the memory, hammer LA ``0`` with ALL-1
   until a swap shows the mixed latency (1375 ns) — LA 0 is the only ALL-1
   line, and its swap fires exactly when the CRP wraps to 0, marking a
   round start.  From boot the attacker can also *count* writes (the paper:
   "the CRP position could be calculated by counting the number of
   writes"), which this implementation mirrors exactly.
2. **Detect** (steps 3-5): label every line's content with its LA's bit
   ``j``; every observed swap is of lines ``(CRP, CRP XOR keyxor)``, so its
   latency class (equal contents → 500/2250 ns, mixed → 1375 ns) leaks
   ``bit_j(keyc XOR keyp)``.
3. **Wear out**: hammer the logical address currently resident at one
   physical slot; the resident flips to its pair when the CRP passes it,
   and the key XOR is re-detected at every round boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.attacks.base import AttackResult
from repro.attacks.oracle import LatencyOracle
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL0, ALL1, LineData
from repro.sim.memory_system import MemoryController
from repro.util.bitops import bit_length_exact
from repro.wearlevel.security_refresh import SecurityRefresh


@dataclass(frozen=True)
class _CRPStep:
    """One CRP advance as reconstructed by the attacker's mirror."""

    la: int  #: the remap candidate (CRP value before advancing)
    round_started: bool  #: True if this step wrapped into a new round


class _SRMirror:
    """Attacker's replica of the SR write counter / CRP registers."""

    def __init__(self, n_lines: int, remap_interval: int):
        self.n = n_lines
        self.psi = remap_interval
        self.count = 0
        self.crp = 0
        self.rounds = 0

    def count_write(self) -> Optional[_CRPStep]:
        self.count += 1
        if self.count % self.psi != 0:
            return None
        la = self.crp
        self.crp += 1
        started = False
        if self.crp == self.n:
            self.crp = 0
            self.rounds += 1
            started = True
        return _CRPStep(la=la, round_started=started)

    @property
    def writes_until_step(self) -> int:
        return self.psi - (self.count % self.psi)


class SRTimingAttack:
    """RTA against :class:`~repro.wearlevel.security_refresh.SecurityRefresh`."""

    name = "RTA-SR"

    def __init__(
        self,
        controller: MemoryController,
        target_la: int = 1,
        tolerance_ns: float = 1.0,
    ):
        scheme = controller.scheme
        if not isinstance(scheme, SecurityRefresh):
            raise TypeError("SRTimingAttack requires a SecurityRefresh scheme")
        if target_la == 0:
            raise ValueError("LA 0 is the probe address; pick another target")
        self.controller = controller
        self.oracle = LatencyOracle(controller, tolerance_ns)
        self.target_la = target_la
        self.n_lines = scheme.n_lines
        self.n_bits = bit_length_exact(scheme.n_lines)
        self.remap_interval = scheme.region.remap_interval
        self.mirror = _SRMirror(self.n_lines, self.remap_interval)
        self.detection_writes = 0
        self.synchronized = False

    # ------------------------------------------------------------- helpers

    def _bit_pattern(self, la: int, j: int) -> LineData:
        return ALL1 if (la >> j) & 1 else ALL0

    def _label_sweep(self, bit: Optional[int]) -> None:
        """Step 1 / step 3: label every line with its LA's bit (or ALL-0)."""
        for la in range(self.n_lines):
            data = ALL0 if bit is None else self._bit_pattern(la, bit)
            # reprolint: disable=REP002 labeling write; latency unused
            self.oracle.write(la, data)
            self.mirror.count_write()

    # ---------------------------------------------------------- phase A

    def synchronize(self, max_rounds: int = 3) -> None:
        """Steps 1-2: observe LA 0's round-start swap (the 1375 ns marker).

        Validates the boot-counted mirror: the marker must land exactly on
        a mirrored round boundary, otherwise the attack aborts.
        """
        start_writes = self.oracle.user_writes
        self._label_sweep(None)
        budget = max_rounds * self.n_lines * self.remap_interval
        for _ in range(budget):
            extra = self.oracle.write(0, ALL1)
            step = self.mirror.count_write()
            if self.oracle.matches(extra, self.oracle.swap_01):
                if step is None or step.la != 0:
                    raise RuntimeError(
                        "LA 0 swap observed off the mirrored round boundary"
                    )
                self.synchronized = True
                self.detection_writes += self.oracle.user_writes - start_writes
                return
        raise RuntimeError(
            "synchronization failed (keys may have matched for several rounds)"
        )

    # ---------------------------------------------------------- phase B

    def detect_key_xor(self) -> int:
        """Steps 3-5: recover the full ``keyc XOR keyp`` of the current round.

        Must be called early in a round — it needs one observable swap per
        address bit before the round ends.
        """
        if not self.synchronized:
            self.synchronize()
        start_writes = self.oracle.user_writes
        key_xor = 0
        for j in range(self.n_bits):
            self._label_sweep(j)
            bit = self._observe_bit()
            key_xor |= bit << j
        self.detection_writes += self.oracle.user_writes - start_writes
        return key_xor

    def _observe_bit(self) -> int:
        """Step 4: hammer LA 0 until one swap leaks the labelled bit."""
        budget = 2 * self.n_lines * self.remap_interval
        for _ in range(budget):
            extra = self.oracle.write(0, ALL0)
            self.mirror.count_write()
            if extra <= self.oracle.tolerance_ns:
                continue  # no swap on this step (pair already handled)
            if self.oracle.matches(extra, self.oracle.swap_01):
                return 1
            if self.oracle.matches(extra, self.oracle.swap_00) or self.oracle.matches(
                extra, self.oracle.swap_11
            ):
                return 0
            raise RuntimeError(f"unclassifiable swap latency {extra:.1f} ns")
        raise RuntimeError("no swap observed (keyc == keyp this round?)")

    # ---------------------------------------------------------- phase C

    def wear_out(self, max_writes: int = 100_000_000) -> AttackResult:
        """Pin writes on one physical slot, following its resident line.

        The resident of the target slot flips to its pair when the CRP
        passes ``min(resident, pair)``; the key XOR is re-detected after
        each round boundary (keys rotate there).
        """
        key_xor = self.detect_key_xor()
        holder = self.target_la
        holder, _ = self._catch_up_holder(holder, key_xor)
        writes = 0
        try:
            while writes < max_writes:
                # reprolint: disable=REP002 hammering write; timing unused
                self.oracle.write(holder, ALL1)
                writes += 1
                step = self.mirror.count_write()
                if step is None:
                    continue
                if step.round_started:
                    # Keys rotated: re-detect, then account for any swap of
                    # the holder that fired while we were detecting.
                    key_xor = self.detect_key_xor()
                    holder, _ = self._catch_up_holder(holder, key_xor)
                elif key_xor != 0 and step.la == min(holder, holder ^ key_xor):
                    holder ^= key_xor  # our slot's data was just swapped
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=self.oracle.user_writes,
                elapsed_ns=self.oracle.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
                detection_writes=self.detection_writes,
            )
        return AttackResult(
            attack=self.name,
            user_writes=self.oracle.user_writes,
            elapsed_ns=self.oracle.elapsed_ns,
            failed=False,
            detection_writes=self.detection_writes,
        )

    def _catch_up_holder(self, holder: int, key_xor: int) -> Tuple[int, bool]:
        """If the CRP already passed the holder's swap point, follow it."""
        if key_xor != 0 and self.mirror.crp > min(holder, holder ^ key_xor):
            return holder ^ key_xor, True
        return holder, False

    # ------------------------------------------------------------- driver

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Full attack: synchronize, then track-and-hammer until failure."""
        self.synchronize()
        return self.wear_out(max_writes=max_writes)
