"""Malicious write-stream attacks against PCM wear leveling.

All attacks drive a :class:`~repro.sim.memory_system.MemoryController`
through its public ``write`` interface and observe nothing but the returned
latencies — the same threat model as the paper (compromised OS, caches
bypassed, no knowledge of randomizer/remapping keys).

* :mod:`repro.attacks.raa` — Repeated Address Attack,
* :mod:`repro.attacks.bpa` — Birthday Paradox Attack,
* :mod:`repro.attacks.rta_rbsg` — Remapping Timing Attack on RBSG (§III-B),
* :mod:`repro.attacks.rta_sr` — RTA on one-level Security Refresh (§III-D),
* :mod:`repro.attacks.rta_two_level_sr` — RTA on two-level SR (§III-E).
"""

from repro.attacks.aia import AddressInferenceAttack
from repro.attacks.base import AttackResult
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.oracle import LatencyOracle
from repro.attacks.raa import RepeatedAddressAttack
from repro.attacks.rta_multiway import MultiWaySRTimingAttack
from repro.attacks.rta_rbsg import RBSGTimingAttack
from repro.attacks.rta_sr import SRTimingAttack
from repro.attacks.rta_two_level_sr import TwoLevelSRTimingAttack

__all__ = [
    "AddressInferenceAttack",
    "AttackResult",
    "BirthdayParadoxAttack",
    "LatencyOracle",
    "MultiWaySRTimingAttack",
    "RBSGTimingAttack",
    "RepeatedAddressAttack",
    "SRTimingAttack",
    "TwoLevelSRTimingAttack",
]
