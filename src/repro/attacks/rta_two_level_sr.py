"""Remapping Timing Attack against two-level Security Refresh (Section III-E).

Tracking both levels' keys costs more writes than a remapping round, so —
exactly as the paper argues — the attacker settles for less: it recovers only
the *high* ``log2(R)`` bits of the outer ``keyc XOR keyp`` each round.  Those
bits say which logical *block* (contiguous LA range of sub-region size) has
moved onto the physical sub-region under attack, because the outer XOR
mapping preserves block structure.  The attacker then sprays that whole
block, letting the inner SR spread the writes across the one target
sub-region until some line there exhausts its endurance.

Observation hygiene.  Outer remaps fire on write counts the attacker can
mirror from boot; inner remaps of the written sub-regions fire on their own
schedules and can coincide with outer boundaries.  Three defenses keep the
bit readings clean:

* **value filtering** — a coincident inner+outer observation is a *sum* of
  two swap latencies (1000/1875/2750/3625/4500 ns), disjoint from the
  single-swap classes (500/1375/2250 ns), so it is recognised and discarded;
* **block-alternating probing** — detection writes cycle over one LA per
  block, so each sub-region's inner remaps fire ``R`` times less often,
  making an inner-only swap that lands exactly on an outer boundary rare
  and unsynchronised;
* **majority voting** — each key bit is decided by several independent
  observations; a bit with too few votes marks a quiet round (outer
  ``keyc == keyp``, nothing moved).

Limitation (documented): if a detection pass spills across an outer round
boundary (possible only in toy configurations where ``log2(R)`` labelling
sweeps approach the round length ``N * outer_interval``), that round's block
displacement is lost and the attacker's aim degrades.  The paper's
configurations (``outer_interval >= 16``, ``R >= 256``) keep detection well
inside a round.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.base import AttackResult
from repro.attacks.oracle import LatencyOracle
from repro.attacks.rta_sr import _SRMirror
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL0, ALL1, LineData
from repro.sim.memory_system import MemoryController
from repro.util.bitops import bit_length_exact
from repro.wearlevel.two_level_sr import TwoLevelSecurityRefresh


class TwoLevelSRTimingAttack:
    """RTA against :class:`~repro.wearlevel.two_level_sr.TwoLevelSecurityRefresh`.

    The physical target is the sub-region that held logical block 0 at boot;
    :attr:`current_block` names the block the attacker believes is mapped
    there now, updated by XORing in each round's detected high key bits.
    """

    name = "RTA-2SR"

    def __init__(
        self,
        controller: MemoryController,
        votes: int = 5,
        tolerance_ns: float = 1.0,
    ):
        scheme = controller.scheme
        if not isinstance(scheme, TwoLevelSecurityRefresh):
            raise TypeError(
                "TwoLevelSRTimingAttack requires a TwoLevelSecurityRefresh scheme"
            )
        if votes < 1 or votes % 2 == 0:
            raise ValueError("votes must be odd and >= 1")
        self.controller = controller
        self.oracle = LatencyOracle(controller, tolerance_ns)
        self.n_lines = scheme.n_lines
        self.n_subregions = scheme.n_subregions
        self.subregion_size = scheme.subregion_size
        self.s_bits = bit_length_exact(self.subregion_size)
        self.r_bits = bit_length_exact(self.n_subregions)
        self.outer_interval = scheme.outer.remap_interval
        self.mirror = _SRMirror(self.n_lines, self.outer_interval)
        self.votes = votes
        self.detection_writes = 0
        self.current_block = 0  # block mapped onto the target sub-region

    # ------------------------------------------------------------- helpers

    def _bit_pattern(self, la: int, j: int) -> LineData:
        return ALL1 if (la >> j) & 1 else ALL0

    def _label_sweep(self, bit: int) -> None:
        """Label every line's content with its LA's bit ``bit``."""
        for la in range(self.n_lines):
            # reprolint: disable=REP002 labeling write; latency unused
            self.oracle.write(la, self._bit_pattern(la, bit))
            self.mirror.count_write()

    def _classify_single(self, extra: float) -> Optional[int]:
        """Map an extra latency to a key-bit vote, or ``None`` if unusable.

        1 for a mixed swap, 0 for an equal-content swap, None for silence or
        a coincident (summed) inner+outer observation.
        """
        if extra <= self.oracle.tolerance_ns:
            return None
        if self.oracle.matches(extra, self.oracle.swap_01):
            return 1
        if self.oracle.matches(extra, self.oracle.swap_00) or self.oracle.matches(
            extra, self.oracle.swap_11
        ):
            return 0
        return None  # coincident inner+outer sum — discard

    # ----------------------------------------------------------- detection

    def detect_high_key_xor(self, budget_boundaries: int = 64) -> int:
        """Recover the high ``log2(R)`` bits of the outer round's key XOR.

        Returns the *block-level* XOR (already shifted down): the value to
        XOR into :attr:`current_block`.  A round whose bits all time out is
        a quiet round (returns 0).
        """
        start_writes = self.oracle.user_writes
        high_xor = 0
        for j in range(self.s_bits, self.s_bits + self.r_bits):
            self._label_sweep(j)
            bit = self._vote_bit(j, budget_boundaries)
            high_xor |= bit << (j - self.s_bits)
        self.detection_writes += self.oracle.user_writes - start_writes
        return high_xor

    def _vote_bit(self, j: int, budget_boundaries: int) -> int:
        """Collect boundary observations for bit ``j``; majority-vote it."""
        ones = zeros = 0
        boundaries_seen = 0
        block = 0
        majority = self.votes // 2 + 1
        while boundaries_seen < budget_boundaries:
            # Probe with one LA per block, round-robin; content equals the
            # line's current label so probing perturbs nothing.
            la = (block << self.s_bits) | 1
            block = (block + 1) % self.n_subregions
            extra = self.oracle.write(la, self._bit_pattern(la, j))
            step = self.mirror.count_write()
            if step is None:
                _ = extra  # no boundary crossed: latency carries no vote
                continue
            boundaries_seen += 1
            vote = self._classify_single(extra)
            if vote == 1:
                ones += 1
            elif vote == 0:
                zeros += 1
            if ones >= majority:
                return 1
            if zeros >= majority:
                return 0
        # Too few observations: quiet round (outer keys equal) — bit is 0.
        return 0

    # --------------------------------------------------------------- spray

    def _block_las(self, block: int) -> List[int]:
        base = block << self.s_bits
        return [base | offset for offset in range(self.subregion_size)]

    def spray_round(self, prev_block: int, new_block: int, max_writes: int) -> int:
        """Spray the target sub-region until the next outer round boundary.

        Before the block pair's migration window the old block still holds
        the target; inside the window lines migrate one by one, so the union
        of both blocks is sprayed; afterwards the new block holds it.
        Returns the number of writes issued; raises
        :class:`~repro.pcm.array.LineFailure` when a target line dies.
        """
        if prev_block == new_block:
            phases = [(self.n_lines, self._block_las(new_block))]
        else:
            first = min(prev_block, new_block)
            win_start = first << self.s_bits
            win_end = (first + 1) << self.s_bits
            union = self._block_las(prev_block) + self._block_las(new_block)
            phases = [
                (win_start, self._block_las(prev_block)),
                (win_end, union),
                (self.n_lines, self._block_las(new_block)),
            ]
        writes = 0
        for crp_limit, las in phases:
            idx = 0
            while self.mirror.crp < crp_limit and writes < max_writes:
                # reprolint: disable=REP002 hammering write; timing unused
                self.oracle.write(las[idx], ALL1)
                idx = (idx + 1) % len(las)
                writes += 1
                step = self.mirror.count_write()
                if step is not None and step.round_started:
                    return writes
        # Finish out the round if the last phase ended by crp_limit.
        while writes < max_writes:
            las = self._block_las(new_block)
            # reprolint: disable=REP002 hammering write; timing unused
            self.oracle.write(las[writes % len(las)], ALL1)
            writes += 1
            step = self.mirror.count_write()
            if step is not None and step.round_started:
                break
        return writes

    # ------------------------------------------------------------- driver

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Alternate per-round key detection and block spraying to failure."""
        writes_left = max_writes
        try:
            while writes_left > 0:
                rounds_before = self.mirror.rounds
                high_xor = self.detect_high_key_xor()
                if self.mirror.rounds != rounds_before:
                    # Detection spilled over a round boundary (toy configs):
                    # this round's displacement is unreliable — skip applying
                    # it and re-detect in the new round.
                    continue
                prev_block = self.current_block
                self.current_block = prev_block ^ high_xor
                spent = self.spray_round(prev_block, self.current_block, writes_left)
                writes_left -= spent
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=self.oracle.user_writes,
                elapsed_ns=self.oracle.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
                detection_writes=self.detection_writes,
            )
        return AttackResult(
            attack=self.name,
            user_writes=self.oracle.user_writes,
            elapsed_ns=self.oracle.elapsed_ns,
            failed=False,
            detection_writes=self.detection_writes,
        )
