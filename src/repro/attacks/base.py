"""Shared attack result type and driver conventions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AttackResult:
    """Outcome of running an attack to device failure (or a write budget)."""

    attack: str  #: attack name
    user_writes: int  #: logical writes the attacker issued
    elapsed_ns: float  #: simulated time until stopping
    failed: bool  #: True if the attack wore a line out
    failed_pa: Optional[int] = None  #: the physical line that failed
    detection_writes: int = 0  #: writes spent on side-channel detection

    @property
    def lifetime_seconds(self) -> float:
        """Device lifetime under this attack, in simulated seconds."""
        return self.elapsed_ns * 1e-9

    @property
    def lifetime_days(self) -> float:
        """Device lifetime under this attack, in simulated days."""
        return self.lifetime_seconds / 86_400.0
