"""Remapping Timing Attack against Multi-Way SR (§III-E, last paragraph).

Multi-Way SR partitions the memory *by address sequence*, so the high LA
bits name the target sub-region outright — the attacker skips the whole
outer-key detection that two-level SR forces on it.  What remains is a
one-level SR attack confined to one sub-region, and the confinement makes
it *cheaper*: labelling sweeps touch only the sub-region's ``N/R`` lines
(the paper: "it takes at most ``(2N/R)·log2(R)`` writes to detect the
remapping of the target sub-region"), and writes to other sub-regions never
perturb the target's counters.

The procedure mirrors :class:`~repro.attacks.rta_sr.SRTimingAttack` with
every quantity scoped to the chosen sub-region.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import AttackResult
from repro.attacks.oracle import LatencyOracle
from repro.attacks.rta_sr import _SRMirror
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL0, ALL1, LineData
from repro.sim.memory_system import MemoryController
from repro.util.bitops import bit_length_exact
from repro.wearlevel.multiway_sr import MultiWaySR


class MultiWaySRTimingAttack:
    """RTA against :class:`~repro.wearlevel.multiway_sr.MultiWaySR`."""

    name = "RTA-MWSR"

    def __init__(
        self,
        controller: MemoryController,
        target_region: int = 0,
        target_offset: int = 1,
        tolerance_ns: float = 1.0,
    ):
        scheme = controller.scheme
        if not isinstance(scheme, MultiWaySR):
            raise TypeError("MultiWaySRTimingAttack requires a MultiWaySR scheme")
        if not 0 <= target_region < scheme.n_subregions:
            raise ValueError("target_region out of range")
        if target_offset == 0:
            raise ValueError("offset 0 is the probe address; pick another")
        self.controller = controller
        self.oracle = LatencyOracle(controller, tolerance_ns)
        self.region = target_region
        self.base = target_region * scheme.subregion_size
        self.size = scheme.subregion_size
        self.s_bits = bit_length_exact(self.size)
        self.target_offset = target_offset
        self.remap_interval = scheme.regions[target_region].remap_interval
        self.mirror = _SRMirror(self.size, self.remap_interval)
        self.detection_writes = 0
        self.synchronized = False

    # ------------------------------------------------------------- helpers

    def _la(self, offset: int) -> int:
        return self.base + offset

    def _bit_pattern(self, offset: int, j: int) -> LineData:
        return ALL1 if (offset >> j) & 1 else ALL0

    def _label_sweep(self, bit: Optional[int]) -> None:
        """Label only the target sub-region — N/R writes, not N."""
        for offset in range(self.size):
            data = ALL0 if bit is None else self._bit_pattern(offset, bit)
            # reprolint: disable=REP002 labeling write; latency unused
            self.oracle.write(self._la(offset), data)
            self.mirror.count_write()

    # ----------------------------------------------------------- procedure

    def synchronize(self, max_rounds: int = 3) -> None:
        """Observe offset 0's round-start swap, confirming the mirror."""
        start = self.oracle.user_writes
        self._label_sweep(None)
        budget = max_rounds * self.size * self.remap_interval
        for _ in range(budget):
            extra = self.oracle.write(self._la(0), ALL1)
            step = self.mirror.count_write()
            if self.oracle.matches(extra, self.oracle.swap_01):
                if step is None or step.la != 0:
                    raise RuntimeError("swap observed off the round boundary")
                self.synchronized = True
                self.detection_writes += self.oracle.user_writes - start
                return
        raise RuntimeError("synchronization failed")

    def detect_key_xor(self) -> int:
        """Recover the sub-region's ``keyc XOR keyp`` for this round."""
        if not self.synchronized:
            self.synchronize()
        start = self.oracle.user_writes
        key_xor = 0
        for j in range(self.s_bits):
            self._label_sweep(j)
            key_xor |= self._observe_bit() << j
        self.detection_writes += self.oracle.user_writes - start
        return key_xor

    def _observe_bit(self) -> int:
        budget = 2 * self.size * self.remap_interval
        for _ in range(budget):
            extra = self.oracle.write(self._la(0), ALL0)
            self.mirror.count_write()
            if extra <= self.oracle.tolerance_ns:
                continue
            if self.oracle.matches(extra, self.oracle.swap_01):
                return 1
            if self.oracle.matches(extra, self.oracle.swap_00) or (
                self.oracle.matches(extra, self.oracle.swap_11)
            ):
                return 0
            raise RuntimeError(f"unclassifiable latency {extra:.1f} ns")
        raise RuntimeError("no swap observed (keys equal this round?)")

    def wear_out(self, max_writes: int = 100_000_000) -> AttackResult:
        """Pin writes on one physical slot of the target sub-region."""
        key_xor = self.detect_key_xor()
        holder = self.target_offset
        if key_xor and self.mirror.crp > min(holder, holder ^ key_xor):
            holder ^= key_xor
        writes = 0
        try:
            while writes < max_writes:
                # reprolint: disable=REP002 hammering write; timing unused
                self.oracle.write(self._la(holder), ALL1)
                writes += 1
                step = self.mirror.count_write()
                if step is None:
                    continue
                if step.round_started:
                    key_xor = self.detect_key_xor()
                    if key_xor and self.mirror.crp > min(
                        holder, holder ^ key_xor
                    ):
                        holder ^= key_xor
                elif key_xor and step.la == min(holder, holder ^ key_xor):
                    holder ^= key_xor
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=self.oracle.user_writes,
                elapsed_ns=self.oracle.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
                detection_writes=self.detection_writes,
            )
        return AttackResult(
            attack=self.name,
            user_writes=self.oracle.user_writes,
            elapsed_ns=self.oracle.elapsed_ns,
            failed=False,
            detection_writes=self.detection_writes,
        )

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Full attack: synchronize, then track-and-hammer to failure."""
        self.synchronize()
        return self.wear_out(max_writes=max_writes)
