"""Birthday Paradox Attack (Seznec 2009; paper Section II-B).

Pick logical addresses at random; hammer each one until the wear-leveling
scheme moves it away (approximated by a fixed per-address dwell budget),
then pick another.  By the birthday paradox, some physical line is revisited
often enough to accumulate wear far faster than uniform traffic would
suggest — the reason a scheme's Line Vulnerability Factor must be "dozen
times less than the endurance".
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import AttackResult
from repro.pcm.array import LineFailure
from repro.pcm.timing import ALL1, LineData
from repro.sim.memory_system import MemoryController
from repro.util.rng import SeedLike, as_generator


class BirthdayParadoxAttack:
    """Random-address hammering with a per-address dwell."""

    name = "BPA"

    def __init__(
        self,
        controller: MemoryController,
        dwell_writes: Optional[int] = None,
        data: LineData = ALL1,
        rng: SeedLike = None,
    ):
        """``dwell_writes`` defaults to a Start-Gap-style Line Vulnerability
        Factor estimate: enough writes that a typical scheme has moved the
        line once (``n_lines`` writes if the scheme exposes no interval)."""
        self.controller = controller
        self.data = data
        self._rng = as_generator(rng)
        if dwell_writes is None:
            dwell_writes = self._default_dwell()
        if dwell_writes < 1:
            raise ValueError("dwell_writes must be >= 1")
        self.dwell_writes = dwell_writes

    def _default_dwell(self) -> int:
        scheme = self.controller.scheme
        n_lines = scheme.n_lines
        interval = getattr(scheme, "remap_interval", None)
        if interval is None:
            interval = getattr(scheme, "inner_interval", 1)
        regions = getattr(scheme, "n_regions", None)
        if regions is None:
            regions = getattr(scheme, "n_subregions", 1)
        # One full region rotation: the longest a line can stay put.
        return max(1, (n_lines // regions) * interval)

    def run(self, max_writes: int = 100_000_000) -> AttackResult:
        """Hammer random addresses until a line fails or the budget ends."""
        n_lines = self.controller.scheme.n_lines
        writes = 0
        try:
            while writes < max_writes:
                target = int(self._rng.integers(0, n_lines))
                burst = min(self.dwell_writes, max_writes - writes)
                for _ in range(burst):
                    # reprolint: disable=REP002 wear attack; timing unused
                    self.controller.write(target, self.data)
                    writes += 1
        except LineFailure as failure:
            return AttackResult(
                attack=self.name,
                user_writes=writes + 1,
                elapsed_ns=self.controller.elapsed_ns,
                failed=True,
                failed_pa=failure.pa,
            )
        return AttackResult(
            attack=self.name,
            user_writes=writes,
            elapsed_ns=self.controller.elapsed_ns,
            failed=False,
        )
