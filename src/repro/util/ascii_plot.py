"""Terminal plotting helpers for examples and CLI output.

No plotting stack is assumed (the library's only runtime dependency is
numpy), so examples render their figures as text: horizontal bar charts,
inline sparklines, and a fixed-grid line plot good enough to show a
Fig. 16-style curve in a terminal.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{str(label):>{label_width}} | "
            f"{'#' * filled}{' ' * (width - filled)} {value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a series."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    low, high = float(data.min()), float(data.max())
    if high == low:
        return _SPARK_LEVELS[0] * data.size
    scaled = (data - low) / (high - low) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def line_plot(
    ys: Sequence[float],
    xs: Optional[Sequence[float]] = None,
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Fixed-grid dot plot of one series (downsampled to ``width``)."""
    y = np.asarray(list(ys), dtype=np.float64)
    if y.size == 0:
        return title
    if xs is not None and len(xs) != y.size:
        raise ValueError("xs and ys must have equal length")
    # Downsample/interpolate onto the character grid.
    grid_x = np.linspace(0, y.size - 1, width)
    grid_y = np.interp(grid_x, np.arange(y.size), y)
    low, high = float(grid_y.min()), float(grid_y.max())
    span = high - low if high > low else 1.0
    rows = [[" "] * width for _ in range(height)]
    for column, value in enumerate(grid_y):
        row = int(round((value - low) / span * (height - 1)))
        rows[height - 1 - row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:10.3g} ┤" + "".join(rows[0]))
    for row in rows[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.3g} ┤" + "".join(rows[-1]))
    if xs is not None:
        lines.append(
            " " * 12 + f"{float(xs[0]):<.3g}".ljust(width // 2)
            + f"{float(xs[-1]):>.3g}".rjust(width // 2)
        )
    return "\n".join(lines)
