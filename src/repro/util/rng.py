"""Random-number-generator plumbing.

Every stochastic component (key generation, attack address selection,
workload synthesis) accepts a ``seed`` argument that may be ``None``, an
integer, or an existing :class:`numpy.random.Generator`.  Centralising the
coercion keeps experiments reproducible: passing the same integer seed to a
top-level experiment reproduces the identical run.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An existing generator is returned unchanged (shared state), so a single
    generator threaded through an experiment yields one reproducible stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(root: int, *context: object) -> int:
    """Derive a child seed from ``root`` and arbitrary context, stably.

    Hashes the root seed together with the ``repr`` of every context
    component (task identifiers, retry attempt numbers, replicate
    indices...) through SHA-256, so the result depends only on the
    *values* — never on process, platform or execution order.  This is
    what lets :mod:`repro.campaign` hand every parallel task its own
    independent, reproducible RNG stream: the same ``(root, context)``
    always yields the same seed, and distinct contexts yield (with
    overwhelming probability) distinct seeds.

    Returns a non-negative int that fits in 63 bits, suitable for
    :func:`as_generator` and for JSON round-trips.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode())
    for component in context:
        digest.update(b"\x1f")
        digest.update(repr(component).encode())
    return int.from_bytes(digest.digest()[:8], "big") >> 1
