"""Random-number-generator plumbing.

Every stochastic component (key generation, attack address selection,
workload synthesis) accepts a ``seed`` argument that may be ``None``, an
integer, or an existing :class:`numpy.random.Generator`.  Centralising the
coercion keeps experiments reproducible: passing the same integer seed to a
top-level experiment reproduces the identical run.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An existing generator is returned unchanged (shared state), so a single
    generator threaded through an experiment yields one reproducible stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
