"""Small shared utilities: bit manipulation, validation, RNG plumbing."""

from repro.util.bitops import (
    bit_length_exact,
    get_bit,
    is_power_of_two,
    mask,
    set_bit,
)
from repro.util.rng import as_generator, derive_seed

__all__ = [
    "as_generator",
    "derive_seed",
    "bit_length_exact",
    "get_bit",
    "is_power_of_two",
    "mask",
    "set_bit",
]
