"""Bit-manipulation helpers used throughout address-mapping code.

All wear-leveling schemes in this library operate on line addresses that are
small non-negative integers (at paper scale, 22 bits for a 1 GB bank with
256 B lines).  These helpers centralise the masking / bit-extraction idioms
so the scheme implementations read like the paper's pseudocode.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_length_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises
    ------
    ValueError
        If ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a power of two, got {value!r}")
    return value.bit_length() - 1


def mask(nbits: int) -> int:
    """Return an ``nbits``-wide all-ones mask (``mask(3) == 0b111``)."""
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative, got {nbits}")
    return (1 << nbits) - 1


def get_bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def set_bit(value: int, index: int, bit: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit`` (0 or 1)."""
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")
    cleared = value & ~(1 << index)
    return cleared | (bit << index)
