"""Synthetic write-trace generators.

Traces come in two granularities sharing one RNG draw discipline:

* *scalar* — lazy iterators of :class:`TraceEntry` (``la`` is always a
  plain ``int``), the interface every attack and the scalar engine use;
* *chunked* — iterators of ``(las, datas)`` numpy array pairs, what the
  vectorized fast engine (:func:`repro.sim.engine.run_trace_fast`)
  consumes without per-entry Python objects.

The scalar generators are thin loops over their chunked twins, so for the
same seed and ``batch`` both granularities draw the *identical* random
stream — an experiment can switch engines without changing its trace.

They model the workload classes the paper's discussion relies on: benign
uniform / skewed (zipf) / sequential traffic, and the degenerate
single-address stream of a Repeated Address Attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, islice
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.pcm.timing import ALL1, LineData
from repro.util.rng import SeedLike, as_generator

TraceChunk = Tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True)
class TraceEntry:
    """One logical write: target address and the data latency class."""

    la: int
    data: LineData = ALL1


# ------------------------------------------------------- chunked traces


def _sizes(n_writes: Optional[int], batch: int) -> Iterator[int]:
    """Chunk sizes covering ``n_writes`` (or forever) in ``batch`` steps."""
    if batch < 1:
        raise ValueError("batch must be >= 1")
    count = 0
    while n_writes is None or count < n_writes:
        size = batch if n_writes is None else min(batch, n_writes - count)
        yield size
        count += size


def repeated_address_chunks(
    la: int,
    n_writes: Optional[int] = None,
    data: LineData = ALL1,
    batch: int = 4096,
) -> Iterator[TraceChunk]:
    """Chunked RAA stream: hammer one logical address."""
    for size in _sizes(n_writes, batch):
        yield (
            np.full(size, la, dtype=np.int64),
            np.full(size, int(data), dtype=np.int8),
        )


def sequential_chunks(
    n_lines: int,
    n_writes: Optional[int] = None,
    data: LineData = ALL1,
    batch: int = 4096,
) -> Iterator[TraceChunk]:
    """Chunked round-robin over the address space."""
    count = 0
    for size in _sizes(n_writes, batch):
        las = np.arange(count, count + size, dtype=np.int64) % n_lines
        yield las, np.full(size, int(data), dtype=np.int8)
        count += size


def uniform_random_chunks(
    n_lines: int,
    n_writes: Optional[int] = None,
    data: LineData = ALL1,
    rng: SeedLike = None,
    batch: int = 4096,
) -> Iterator[TraceChunk]:
    """Chunked uniformly random addresses (one RNG draw per chunk)."""
    gen = as_generator(rng)
    for size in _sizes(n_writes, batch):
        las = np.asarray(gen.integers(0, n_lines, size=size), dtype=np.int64)
        yield las, np.full(size, int(data), dtype=np.int8)


def zipf_chunks(
    n_lines: int,
    n_writes: Optional[int] = None,
    alpha: float = 1.2,
    data: LineData = ALL1,
    rng: SeedLike = None,
    batch: int = 4096,
) -> Iterator[TraceChunk]:
    """Chunked Zipf-skewed addresses (one RNG draw per chunk)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    gen = as_generator(rng)
    weights = (np.arange(1, n_lines + 1, dtype=np.float64)) ** (-alpha)
    probabilities = weights / weights.sum()
    for size in _sizes(n_writes, batch):
        las = np.asarray(
            gen.choice(n_lines, size=size, p=probabilities), dtype=np.int64
        )
        yield las, np.full(size, int(data), dtype=np.int8)


def trace_chunks(
    trace: Iterable[TraceEntry], batch: int = 4096
) -> Iterator[TraceChunk]:
    """Batch any scalar trace into ``(las, datas)`` array chunks.

    The adapter the fast engine applies to traces that only exist in
    scalar form (attack streams, recorded traces); the synthetic
    generators above have native chunked twins that skip the per-entry
    Python objects entirely.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    it = iter(trace)
    while True:
        block = list(islice(it, batch))
        if not block:
            return
        las = np.fromiter(
            (entry.la for entry in block), dtype=np.int64, count=len(block)
        )
        datas = np.fromiter(
            (int(entry.data) for entry in block),
            dtype=np.int8,
            count=len(block),
        )
        yield las, datas


def trace_entries(
    trace: Iterable[Union[TraceEntry, TraceChunk]],
) -> Iterator[TraceEntry]:
    """Unroll either granularity into :class:`TraceEntry` objects.

    The inverse of :func:`trace_chunks`: chunked ``(las, datas)`` streams
    become per-entry streams (``la`` as plain ``int``); entry streams pass
    through untouched.  This is what lets the scalar engine consume a
    trace built for the fast one.
    """
    it = iter(trace)
    try:
        first = next(it)
    except StopIteration:
        return
    stream = chain([first], it)
    if isinstance(first, TraceEntry):
        yield from stream  # type: ignore[misc]
        return
    for las, datas in stream:  # type: ignore[misc]
        for la, data in zip(las.tolist(), datas.tolist()):
            yield TraceEntry(la=la, data=LineData(data))


# -------------------------------------------------------- scalar traces


def _scalar(
    chunks: Iterator[TraceChunk], data: LineData
) -> Iterator[TraceEntry]:
    """Unroll a chunked trace into entries (``la`` as plain ``int``)."""
    for las, _ in chunks:
        for la in las.tolist():  # tolist() yields Python ints, not np.int64
            yield TraceEntry(la=la, data=data)


def repeated_address_trace(
    la: int, n_writes: Optional[int] = None, data: LineData = ALL1
) -> Iterator[TraceEntry]:
    """The RAA stream: hammer one logical address forever (or n_writes)."""
    return _scalar(repeated_address_chunks(la, n_writes, data), data)


def sequential_trace(
    n_lines: int, n_writes: Optional[int] = None, data: LineData = ALL1
) -> Iterator[TraceEntry]:
    """Round-robin over the address space (streaming workload)."""
    return _scalar(sequential_chunks(n_lines, n_writes, data), data)


def uniform_random_trace(
    n_lines: int,
    n_writes: Optional[int] = None,
    data: LineData = ALL1,
    rng: SeedLike = None,
    batch: int = 4096,
) -> Iterator[TraceEntry]:
    """Uniformly random addresses (drawn in batches for speed)."""
    return _scalar(
        uniform_random_chunks(n_lines, n_writes, data, rng, batch), data
    )


def zipf_trace(
    n_lines: int,
    n_writes: Optional[int] = None,
    alpha: float = 1.2,
    data: LineData = ALL1,
    rng: SeedLike = None,
    batch: int = 4096,
) -> Iterator[TraceEntry]:
    """Zipf-skewed addresses — the non-uniform traffic that motivates
    wear leveling in the first place (Section I).

    Rank ``r`` (0-based) is written with probability proportional to
    ``(r+1)**-alpha``; ranks are identity-mapped to addresses so address 0
    is the hottest line.
    """
    return _scalar(
        zipf_chunks(n_lines, n_writes, alpha, data, rng, batch), data
    )
