"""Synthetic write-trace generators.

Traces are lazy iterators of :class:`TraceEntry` so arbitrarily long streams
cost O(1) memory.  They model the workload classes the paper's discussion
relies on: benign uniform / skewed (zipf) / sequential traffic, and the
degenerate single-address stream of a Repeated Address Attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.pcm.timing import ALL1, LineData
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class TraceEntry:
    """One logical write: target address and the data latency class."""

    la: int
    data: LineData = ALL1


def repeated_address_trace(
    la: int, n_writes: Optional[int] = None, data: LineData = ALL1
) -> Iterator[TraceEntry]:
    """The RAA stream: hammer one logical address forever (or n_writes)."""
    count = 0
    while n_writes is None or count < n_writes:
        yield TraceEntry(la=la, data=data)
        count += 1


def sequential_trace(
    n_lines: int, n_writes: Optional[int] = None, data: LineData = ALL1
) -> Iterator[TraceEntry]:
    """Round-robin over the address space (streaming workload)."""
    count = 0
    while n_writes is None or count < n_writes:
        yield TraceEntry(la=count % n_lines, data=data)
        count += 1


def uniform_random_trace(
    n_lines: int,
    n_writes: Optional[int] = None,
    data: LineData = ALL1,
    rng: SeedLike = None,
    batch: int = 4096,
) -> Iterator[TraceEntry]:
    """Uniformly random addresses (drawn in batches for speed)."""
    gen = as_generator(rng)
    count = 0
    while n_writes is None or count < n_writes:
        size = batch if n_writes is None else min(batch, n_writes - count)
        for la in gen.integers(0, n_lines, size=size):
            yield TraceEntry(la=int(la), data=data)
        count += size


def zipf_trace(
    n_lines: int,
    n_writes: Optional[int] = None,
    alpha: float = 1.2,
    data: LineData = ALL1,
    rng: SeedLike = None,
    batch: int = 4096,
) -> Iterator[TraceEntry]:
    """Zipf-skewed addresses — the non-uniform traffic that motivates
    wear leveling in the first place (Section I).

    Rank ``r`` (0-based) is written with probability proportional to
    ``(r+1)**-alpha``; ranks are identity-mapped to addresses so address 0
    is the hottest line.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    gen = as_generator(rng)
    weights = (np.arange(1, n_lines + 1, dtype=np.float64)) ** (-alpha)
    probabilities = weights / weights.sum()
    count = 0
    while n_writes is None or count < n_writes:
        size = batch if n_writes is None else min(batch, n_writes - count)
        for la in gen.choice(n_lines, size=size, p=probabilities):
            yield TraceEntry(la=int(la), data=data)
        count += size
