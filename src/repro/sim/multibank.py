"""Multi-bank PCM system with per-bank wear leveling.

The paper's defense "is implemented in the memory controller and manages
each bank separately to avoid bank parallelism attack" (§IV-A): one
wear-leveling instance per bank means cross-bank timing games (Seong et
al.'s bank-level-parallelism attack on RBSG) find no shared state to probe.
This module provides that substrate:

* a global logical address space interleaved across ``n_banks`` banks
  (low-order or high-order bits select the bank),
* an independent scheme + array per bank,
* sequential writes (one request at a time) and *parallel batches*, where
  requests to distinct banks overlap in time and same-bank requests
  serialize — the primitive a bank-parallelism attacker manipulates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.config import PCMConfig
from repro.pcm.timing import LineData
from repro.sim.memory_system import MemoryController
from repro.util.bitops import bit_length_exact
from repro.wearlevel.base import WearLeveler


class MultiBankSystem:
    """``n_banks`` independent wear-leveled banks behind one address space.

    Parameters
    ----------
    n_banks:
        Power-of-two bank count.
    bank_config:
        Per-bank device configuration (``n_lines`` per bank).
    scheme_factory:
        Called as ``scheme_factory(bank_index)`` to build each bank's
        wear-leveling instance (seed it per-bank for independent keys).
    interleave:
        ``"low"`` — consecutive LAs alternate banks (the usual layout,
        maximising parallelism); ``"high"`` — each bank owns a contiguous
        LA range.
    """

    def __init__(
        self,
        n_banks: int,
        bank_config: PCMConfig,
        scheme_factory: Callable[[int], WearLeveler],
        interleave: str = "low",
    ):
        self.bank_bits = bit_length_exact(n_banks)
        if interleave not in ("low", "high"):
            raise ValueError(f"unknown interleave {interleave!r}")
        self.n_banks = n_banks
        self.interleave = interleave
        self.bank_lines = bank_config.n_lines
        self.n_lines = n_banks * self.bank_lines
        self.banks: List[MemoryController] = []
        for index in range(n_banks):
            scheme = scheme_factory(index)
            if scheme.n_lines != self.bank_lines:
                raise ValueError(
                    f"bank {index} scheme covers {scheme.n_lines} lines, "
                    f"expected {self.bank_lines}"
                )
            self.banks.append(MemoryController(scheme, bank_config))
        self.elapsed_ns = 0.0

    # ------------------------------------------------------------ addressing

    def bank_of(self, la: int) -> int:
        """Bank index a global logical address maps to."""
        self._check(la)
        if self.interleave == "low":
            return la & (self.n_banks - 1)
        return la >> bit_length_exact(self.bank_lines)

    def local_la(self, la: int) -> int:
        """Bank-local logical address."""
        self._check(la)
        if self.interleave == "low":
            return la >> self.bank_bits
        return la & (self.bank_lines - 1)

    def _check(self, la: int) -> None:
        if not 0 <= la < self.n_lines:
            raise ValueError(f"address {la} outside [0, {self.n_lines})")

    # ------------------------------------------------------------------ I/O

    def write(self, la: int, data: LineData) -> float:
        """Sequential write; advances the global clock by its latency."""
        latency = self.banks[self.bank_of(la)].write(self.local_la(la), data)
        self.elapsed_ns += latency
        return latency

    def read(self, la: int) -> Tuple[LineData, float]:
        data, latency = self.banks[self.bank_of(la)].read(self.local_la(la))
        self.elapsed_ns += latency
        return data, latency

    def write_parallel(
        self, batch: Sequence[Tuple[int, LineData]]
    ) -> Tuple[List[float], float]:
        """Issue a batch simultaneously.

        Requests to distinct banks overlap; same-bank requests serialize in
        batch order.  Returns per-request latencies (as each issuer
        observes them, queueing included) and the batch makespan, which is
        what advances the global clock.
        """
        bank_busy: Dict[int, float] = {}
        latencies: List[float] = []
        for la, data in batch:
            bank = self.bank_of(la)
            service = self.banks[bank].write(self.local_la(la), data)
            finish = bank_busy.get(bank, 0.0) + service
            bank_busy[bank] = finish
            latencies.append(finish)
        makespan = max(bank_busy.values()) if bank_busy else 0.0
        self.elapsed_ns += makespan
        return latencies, makespan

    # ------------------------------------------------------------- queries

    @property
    def total_writes(self) -> int:
        """Physical writes across all banks (remap copies included)."""
        return sum(bank.total_writes for bank in self.banks)

    @property
    def failed(self) -> bool:
        return any(bank.array.failed for bank in self.banks)

    def wear_by_bank(self) -> List[int]:
        """Max per-line wear in each bank (hotspot diagnostics)."""
        return [int(bank.array.wear.max()) for bank in self.banks]
