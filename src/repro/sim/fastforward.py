"""Analytic remap-round fast-forward — the third engine tier.

The chunk engine (:func:`repro.sim.engine.run_trace_fast`) already exploits
the static-mapping invariant *between remap events*; this module exploits it
one level up: across whole remap **rounds** the wear a known trace
distribution deposits has a closed form.  A :class:`TraceSpec` names that
distribution (instead of materialising its writes), the scheme turns
"``W`` writes of this spec" into a dense per-line wear increment
(:meth:`repro.wearlevel.base.WearLeveler.round_wear_profile`), and
:func:`run_fast_forward` commits increments of geometrically shrinking size
until the remaining endurance headroom is too small to jump safely — then
drops back to the chunk-exact engine (and through it the scalar one) so the
failing write is attributed exactly.

Error model (see docs/performance.md for the full derivation): exact counts
for deterministic trace kinds, Poisson-sampled expected rates for the
stochastic ones, so per-line wear keeps its natural balls-into-bins
fluctuations; the resulting lifetime error is O(sqrt(ln N / E)) relative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.pcm.timing import ALL1, LineData
from repro.sim.trace import TraceChunk, TraceEntry
from repro.util.rng import SeedLike, as_generator, derive_seed
from repro.wearlevel.base import WearLeveler

TRACE_KINDS = ("uniform", "zipf", "sequential", "raa")

#: Auto policy: engage the analytic tier only at scales where the chunk
#: engine is the bottleneck AND the statistical error bound is tight.
FF_AUTO_MIN_LINES = 1 << 18
FF_AUTO_MIN_ENDURANCE = 100_000

#: Target at most this fraction of the endurance headroom per round, so a
#: Poisson overshoot (refused by apply_wear_bulk) stays improbable.
HEADROOM_FRACTION = 0.5


@dataclass
class TraceSpec:
    """A synthetic trace *by distribution*, not by materialised writes.

    Stateful: :meth:`chunks` draws the same random stream as the matching
    generator in :mod:`repro.sim.trace` (same seed, same batch), advancing
    :attr:`pos`; the analytic driver instead *skips* writes with
    :meth:`skip`, so a chunk-exact tail resumes exactly where the analytic
    prefix left the trace position.

    Every engine tier accepts a spec: the scalar and chunk engines expand
    it through :meth:`chunks`/:meth:`entries`, the fast-forward driver
    hands it to the scheme whole.
    """

    kind: str
    n_lines: int
    n_writes: Optional[int] = None
    data: LineData = ALL1
    alpha: float = 1.2
    target: int = 0
    seed: SeedLike = None
    batch: int = 8192
    pos: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r}; expected one of {TRACE_KINDS}"
            )
        if self.n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.kind == "zipf" and self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.kind == "raa" and not 0 <= self.target < self.n_lines:
            raise ValueError(f"raa target {self.target} outside [0, {self.n_lines})")
        self._gen: Optional[np.random.Generator] = None
        self._weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------ queries

    def remaining(self) -> Optional[int]:
        """Writes left in the stream (None = unbounded)."""
        if self.n_writes is None:
            return None
        return max(self.n_writes - self.pos, 0)

    def weights(self) -> Optional[np.ndarray]:
        """Per-LA write probabilities (zipf only; None = uniform/other)."""
        if self.kind != "zipf":
            return None
        if self._weights is None:
            ranks = np.arange(1, self.n_lines + 1, dtype=np.float64)
            w = ranks ** (-self.alpha)
            self._weights = w / w.sum()
        return self._weights

    # ----------------------------------------------------------- consume

    def skip(self, n: int) -> None:
        """Advance the trace position by ``n`` writes without drawing them.

        Used by the analytic driver: the skipped writes' random draws are
        never made (their aggregate effect was applied in closed form), so
        a subsequent :meth:`chunks` tail continues the generator stream
        from wherever it stood — sequential phase stays exact.
        """
        if n < 0:
            raise ValueError("cannot skip a negative number of writes")
        self.pos += n

    def chunks(self) -> Iterator[TraceChunk]:
        """Chunked ``(las, datas)`` stream from the current position.

        At ``pos == 0`` this draws the identical stream as the matching
        generator in :mod:`repro.sim.trace` for the same seed and batch —
        which is what makes the small-scale equivalence suite's
        bit-identity comparisons meaningful.
        """
        if self._gen is None:
            self._gen = as_generator(self.seed)
        gen = self._gen
        datas_of = lambda size: np.full(size, int(self.data), dtype=np.int8)
        while self.n_writes is None or self.pos < self.n_writes:
            size = (
                self.batch
                if self.n_writes is None
                else min(self.batch, self.n_writes - self.pos)
            )
            if self.kind == "uniform":
                las = np.asarray(
                    gen.integers(0, self.n_lines, size=size), dtype=np.int64
                )
            elif self.kind == "zipf":
                las = np.asarray(
                    gen.choice(self.n_lines, size=size, p=self.weights()),
                    dtype=np.int64,
                )
            elif self.kind == "sequential":
                las = (
                    np.arange(self.pos, self.pos + size, dtype=np.int64)
                    % self.n_lines
                )
            else:  # raa
                las = np.full(size, self.target, dtype=np.int64)
            self.pos += size
            yield las, datas_of(size)

    def entries(self) -> Iterator[TraceEntry]:
        """Scalar :class:`TraceEntry` stream (for the scalar engine)."""
        for las, _ in self.chunks():
            for la in las.tolist():
                yield TraceEntry(la=la, data=self.data)


# --------------------------------------------------------------- policy


def scheme_supports_fast_forward(scheme: WearLeveler) -> bool:
    """Does the scheme override the analytic round API at all?"""
    return (
        type(scheme).round_wear_profile is not WearLeveler.round_wear_profile
    )


def fast_forward_engaged(controller, trace, mode: str) -> bool:
    """Decide whether the analytic tier runs for this (controller, trace).

    ``mode`` is the ``fast_forward=`` argument: ``"off"`` never engages;
    ``"analytic"`` engages whenever it is *possible* (scheme has the API,
    no fault injection, no differential writes, trace is a spec);
    ``"auto"`` additionally requires paper-like scale
    (``n_lines >= 2**18`` and ``endurance >= 1e5``) — below that the chunk
    engine is fast enough and the equivalence suite's bit-identity
    guarantee holds because auto falls through to it.
    """
    if mode not in ("off", "auto", "analytic"):
        raise ValueError(f"fast_forward must be off/auto/analytic, got {mode!r}")
    if mode == "off" or not isinstance(trace, TraceSpec):
        return False
    if not scheme_supports_fast_forward(controller.scheme):
        return False
    config = controller.config
    if config.fault_injection_enabled or config.differential_writes:
        return False
    if mode == "analytic":
        return True
    return (
        controller.scheme.n_lines >= FF_AUTO_MIN_LINES
        and config.endurance >= FF_AUTO_MIN_ENDURANCE
    )


# --------------------------------------------------------------- driver


def run_fast_forward(
    controller,
    spec: TraceSpec,
    max_writes: Optional[int] = None,
    *,
    batch: Optional[int] = None,
    floor: Optional[int] = None,
    rng: SeedLike = None,
):
    """Drive ``controller`` with ``spec`` through the analytic tier.

    Loop: pick a round size ``W`` targeting half the remaining endurance
    headroom, ask the scheme for the closed-form wear profile, draw the
    stochastic part as Poisson counts, and commit through
    ``apply_wear_bulk`` — which refuses (mutating nothing) if any line
    would cross its limit, in which case ``W`` halves and the round is
    redrawn.  When ``W`` falls below ``floor`` the remaining trace runs
    through the chunk-exact engine, which attributes the failing write
    exactly (and scalar-replays remap-boundary writes), so end-of-life
    behaviour is genuine, not modelled.

    Returns a :class:`repro.sim.engine.SimulationResult`; ``total_writes``
    and ``elapsed_ns`` are read from the controller, which both tiers
    advance cumulatively.
    """
    from repro.sim.engine import SimulationResult, run_trace_fast

    array = controller.array
    scheme = controller.scheme
    timing = array.timing
    if spec.n_lines != scheme.n_lines:
        raise ValueError(
            f"spec covers {spec.n_lines} lines but scheme exposes "
            f"{scheme.n_lines}"
        )
    if batch is None:
        batch = spec.batch
    if floor is None:
        floor = max(8 * batch, scheme.n_lines // 8)
    if rng is None and isinstance(spec.seed, int):
        # Independent of the trace stream, reproducible from the spec seed.
        rng = derive_seed(spec.seed, "fast-forward")
    gen = as_generator(rng)

    if array.endurance_map is None:
        limit_min = float(controller.config.endurance)
    else:
        limit_min = float(array.endurance_map.min())

    n_scheme = scheme.n_physical
    user_writes = 0
    analytic_ns = 0.0
    shrink = 1.0
    filled = False

    while not array.failed:
        budget: Optional[int] = spec.remaining()
        if max_writes is not None:
            left = max_writes - user_writes
            budget = left if budget is None else min(budget, left)
        if budget is not None and budget <= floor:
            break
        headroom = limit_min - array.max_wear
        if headroom <= 1:
            break
        # Optimistic initial guess: perfectly even spread over all lines,
        # filling HEADROOM_FRACTION of the headroom; the refinement loop
        # below corrects it against the profile's actual worst line.
        guess = int(headroom * HEADROOM_FRACTION * scheme.n_lines * shrink)
        if budget is not None:
            guess = min(guess, budget)
        profile = None
        for _ in range(8):
            if guess <= floor:
                profile = None
                break
            profile = scheme.round_wear_profile(spec, guess, timing)
            if profile is None:
                break
            worst = 0.0
            if profile.wear_counts is not None:
                worst += float(profile.wear_counts.max())
            if profile.wear_rates is not None:
                worst += float(profile.wear_rates.max())
            if worst <= HEADROOM_FRACTION * headroom:
                break
            # Damped correction: aim 10% under the target so the iteration
            # lands strictly inside it instead of converging onto the
            # boundary from above (the movement-wear constant in ``worst``
            # makes the undamped update a boundary fixed point, which
            # would abandon the analytic tier with headroom still worth
            # millions of chunk-engine writes).
            guess = max(
                int(
                    profile.writes
                    * 0.9
                    * HEADROOM_FRACTION
                    * headroom
                    / worst
                ),
                1,
            )
            profile = None
        if profile is None or guess <= floor:
            break
        counts = np.zeros(array.n_physical, dtype=np.int64)
        if profile.wear_counts is not None:
            counts[:n_scheme] += profile.wear_counts
        if profile.wear_rates is not None:
            counts[:n_scheme] += gen.poisson(profile.wear_rates)
        if not filled:
            # Steady-state data model: from here on every scheme-visible
            # line holds the trace's write data (docs/performance.md).
            array.fill_data(spec.data, n_scheme)
            filled = True
        if not array.apply_wear_bulk(counts, profile.elapsed_ns):
            # A line would cross its limit: halve the next attempt; once
            # the attempts shrink under the floor, the loop exits to the
            # chunk-exact tail, which finds the failing write for real.
            shrink *= 0.5
            if guess * shrink <= floor:
                break
            continue
        shrink = min(1.0, shrink * 2.0)
        analytic_ns += scheme.apply_round(profile)
        spec.skip(profile.writes)
        user_writes += profile.writes

    tail_budget = None if max_writes is None else max_writes - user_writes
    if (tail_budget is not None and tail_budget <= 0) or spec.remaining() == 0:
        return SimulationResult(
            user_writes=user_writes,
            total_writes=controller.total_writes,
            elapsed_ns=controller.elapsed_ns,
            failed=array.failed,
            failed_pa=array.first_failure.pa if array.failed else None,
        )
    tail = run_trace_fast(
        controller, spec.chunks(), max_writes=tail_budget, batch=batch
    )
    return SimulationResult(
        user_writes=user_writes + tail.user_writes,
        total_writes=tail.total_writes,
        elapsed_ns=tail.elapsed_ns,
        failed=tail.failed,
        failed_pa=tail.failed_pa,
    )
