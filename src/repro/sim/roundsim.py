"""Remapping-round-granularity RAA/BPA simulators.

Lifetime experiments at paper scale involve 1e13+ writes — far beyond
per-write simulation.  Under a Repeated Address Attack, though, the write
stream between remapping events is perfectly regular, so wear can be applied
in closed-form chunks:

* **Security RBSG** (:class:`SecurityRBSGRAASim`): within one outer DFN
  round the hammered LA sits at a fixed intermediate address; the inner
  Start-Gap walks its physical slot one step per inner rotation, so a round
  deposits a contiguous *window* of full dwells (``(N/R + 1) * psi_inner``
  writes per slot).  Each round draws fresh Feistel keys — with the real
  cubing network, so the stage-count sensitivity of Fig. 14 is *measured*,
  not assumed.
* **Two-level SR** (:class:`TwoLevelSRRAASim`): the hammered LA lands in a
  random sub-region each outer round and on an independent random slot each
  inner round — vectorized balls-into-bins with ball weight
  ``(N/R) * psi_inner``.

Both simulators are validated against the exact per-write engine at small
scale (see ``tests/sim/test_roundsim.py``).  Gap/spare lines are excluded
from the modelled address space (they absorb a ``1/psi`` fraction of remap
copies, second-order for lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import PCMConfig, SecurityRBSGConfig, SRConfig
from repro.core.feistel import FeistelNetwork
from repro.util.bitops import bit_length_exact
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class RoundSimResult:
    """Outcome of a round-granularity lifetime run."""

    rounds: int
    total_writes: float
    lifetime_ns: float
    failed: bool
    max_wear: float

    @property
    def lifetime_days(self) -> float:
        return self.lifetime_ns * 1e-9 / 86_400.0


class SecurityRBSGRAASim:
    """RAA/BPA against Security RBSG at outer-round granularity.

    Parameters
    ----------
    pcm / cfg:
        Device and scheme configuration (use scaled-down geometries; the
        dimensionless shape is set by ``E / dwell`` and ``N``).
    attack:
        ``"raa"`` — one fixed hammered LA (window per round, position from
        the real Feistel, per-round fresh keys);
        ``"bpa"`` — a fresh random LA per dwell;
        ``"raa_uniform"`` — RAA with an ideal (uniform) outer randomizer,
        the stage-count → infinity asymptote.
    """

    def __init__(
        self,
        pcm: PCMConfig,
        cfg: SecurityRBSGConfig,
        attack: str = "raa",
        target_la: int = 0,
        rng: SeedLike = None,
    ):
        if attack not in ("raa", "bpa", "raa_uniform"):
            raise ValueError(f"unknown attack mode {attack!r}")
        if pcm.n_lines % cfg.n_subregions != 0:
            raise ValueError("n_subregions must divide n_lines")
        self.pcm = pcm
        self.cfg = cfg
        self.attack = attack
        self.target_la = target_la
        self.rng = as_generator(rng)
        self.n_bits = bit_length_exact(pcm.n_lines)
        self.n = pcm.n_lines
        self.subregion = self.n // cfg.n_subregions
        self.dwell = (self.subregion + 1) * cfg.inner_interval
        self.round_writes = self.n * cfg.outer_interval
        self.wear = np.zeros(self.n, dtype=np.int64)
        self.rotation = np.zeros(cfg.n_subregions, dtype=np.int64)
        self.phase = np.zeros(cfg.n_subregions, dtype=np.int64)
        self.total_writes = 0.0
        self.rounds = 0

    # ------------------------------------------------------------ one round

    def _target_ia(self, la: int) -> int:
        if self.attack == "raa_uniform":
            return int(self.rng.integers(0, self.n))
        network = FeistelNetwork.random(self.n_bits, self.cfg.n_stages, self.rng)
        return int(network.encrypt(la))

    def _deposit_walk(self, region: int, local: int, writes: int) -> int:
        """Deposit ``writes`` hammer writes as a Start-Gap window walk.

        Returns the maximum wear among the touched slots.
        """
        base = region * self.subregion
        size = self.subregion
        dwell = self.dwell
        pos = (local + int(self.rotation[region])) % size
        # Finish the in-progress dwell of this region first.
        first = min(writes, dwell - int(self.phase[region]))
        self.wear[base + pos] += first
        touched_max = int(self.wear[base + pos])
        remaining = writes - first
        if remaining == 0 and int(self.phase[region]) + first < dwell:
            self.phase[region] += first
            return touched_max
        # pos's dwell completed: one shift, then full dwells, then a tail.
        shifts = 1
        n_full = remaining // dwell
        tail = remaining % dwell
        if n_full:
            shifts += n_full
            lapped = n_full >= size
            if lapped:
                # The window laps the region whole times, plus a remainder.
                whole, n_full = divmod(n_full, size)
                self.wear[base : base + size] += whole * dwell
            if n_full:
                offsets = base + (pos + 1 + np.arange(n_full)) % size
                np.add.at(self.wear, offsets, dwell)
            if lapped:
                touched_max = max(
                    touched_max, int(self.wear[base : base + size].max())
                )
            else:
                touched_max = max(touched_max, int(self.wear[offsets].max()))
        if tail:
            tail_pos = base + (pos + shifts) % size
            self.wear[tail_pos] += tail
            touched_max = max(touched_max, int(self.wear[tail_pos]))
        self.rotation[region] += shifts
        self.phase[region] = tail
        return touched_max

    def step_round(self) -> int:
        """Simulate one outer remapping round; return max wear touched."""
        self.rounds += 1
        self.total_writes += self.round_writes
        if self.attack in ("raa", "raa_uniform"):
            ia = self._target_ia(self.target_la)
            region, local = divmod(ia, self.subregion)
            return self._deposit_walk(region, local, self.round_writes)
        # BPA: a fresh random LA per dwell.  The Feistel network is a
        # bijection, so a uniformly random LA maps to an exactly uniform IA
        # regardless of keys or stage count — BPA is provably insensitive to
        # the number of stages (the flat line of Fig. 14) and the network
        # need not be evaluated here.
        remaining = self.round_writes
        touched_max = 0
        while remaining > 0:
            chunk = min(remaining, self.dwell)
            ia = int(self.rng.integers(0, self.n))
            region, local = divmod(ia, self.subregion)
            touched_max = max(
                touched_max, self._deposit_walk(region, local, chunk)
            )
            remaining -= chunk
        return touched_max

    # -------------------------------------------------------------- drivers

    def run_until_failure(self, max_rounds: int = 10_000_000) -> RoundSimResult:
        """Advance rounds until some line's wear reaches the endurance."""
        endurance = self.pcm.endurance
        for _ in range(max_rounds):
            touched_max = self.step_round()
            if touched_max >= endurance:
                return self._result(failed=True)
        return self._result(failed=False)

    def run_writes(
        self, checkpoints: Sequence[float]
    ) -> List[Tuple[float, np.ndarray]]:
        """Run to each write-count checkpoint, snapshotting wear (Fig. 16)."""
        snapshots: List[Tuple[float, np.ndarray]] = []
        for target in sorted(checkpoints):
            while self.total_writes < target:
                self.step_round()
            snapshots.append((self.total_writes, self.wear.copy()))
        return snapshots

    def _result(self, failed: bool) -> RoundSimResult:
        return RoundSimResult(
            rounds=self.rounds,
            total_writes=self.total_writes,
            lifetime_ns=self.total_writes * self.pcm.set_ns,
            failed=failed,
            max_wear=float(self.wear.max()),
        )


class RBSGBPASim:
    """Birthday Paradox Attack against RBSG at dwell granularity.

    Each dwell hammers a random LA for one Line Vulnerability Factor
    (``(N/R + 1) * psi`` writes), all landing on the LA's current physical
    slot.  The static randomizer is a real Feistel network (fixed keys, as
    RBSG specifies); region rotations advance with the writes delivered to
    them.  Validates :func:`repro.analysis.bpa.bpa_rbsg_lifetime_ns`.
    """

    def __init__(
        self,
        pcm: PCMConfig,
        n_regions: int,
        remap_interval: int,
        rng: SeedLike = None,
    ):
        if pcm.n_lines % n_regions != 0:
            raise ValueError("n_regions must divide n_lines")
        self.pcm = pcm
        self.n = pcm.n_lines
        self.n_regions = n_regions
        self.region_size = self.n // n_regions
        self.remap_interval = remap_interval
        self.rng = as_generator(rng)
        self.randomizer = FeistelNetwork.random(
            bit_length_exact(self.n), 3, self.rng
        )
        self.dwell = (self.region_size + 1) * remap_interval
        self.wear = np.zeros(self.n, dtype=np.int64)
        self.rotation = np.zeros(n_regions, dtype=np.int64)
        self.phase = np.zeros(n_regions, dtype=np.int64)
        self.total_writes = 0.0

    def step_dwell(self) -> int:
        """One BPA dwell: hammer a fresh random LA for one LVF."""
        la = int(self.rng.integers(0, self.n))
        ia = int(self.randomizer.encrypt(la))
        region, local = divmod(ia, self.region_size)
        # Current slot of this IA under the region's rotation; the dwell is
        # sized to end as the line moves, so deposit it on one slot and
        # advance the region by one rotation step.
        slot = (local + int(self.rotation[region])) % self.region_size
        index = region * self.region_size + slot
        self.wear[index] += self.dwell
        self.rotation[region] += 1
        self.total_writes += self.dwell
        return int(self.wear[index])

    def run_until_failure(self, max_dwells: int = 50_000_000) -> RoundSimResult:
        endurance = self.pcm.endurance
        dwells = 0
        failed = False
        for _ in range(max_dwells):
            dwells += 1
            if self.step_dwell() >= endurance:
                failed = True
                break
        return RoundSimResult(
            rounds=dwells,
            total_writes=self.total_writes,
            lifetime_ns=self.total_writes * self.pcm.set_ns,
            failed=failed,
            max_wear=float(self.wear.max()),
        )


class TwoLevelSRRAASim:
    """RAA against two-level Security Refresh at dwell granularity."""

    def __init__(
        self,
        pcm: PCMConfig,
        cfg: SRConfig,
        rng: SeedLike = None,
    ):
        if pcm.n_lines % cfg.n_subregions != 0:
            raise ValueError("n_subregions must divide n_lines")
        self.pcm = pcm
        self.cfg = cfg
        self.rng = as_generator(rng)
        self.n = pcm.n_lines
        self.subregion = self.n // cfg.n_subregions
        self.dwell = self.subregion * cfg.inner_interval
        self.round_writes = self.n * cfg.outer_interval
        self.wear = np.zeros(self.n, dtype=np.int64)
        self.total_writes = 0.0
        self.rounds = 0

    def step_round(self) -> int:
        """One outer round: random sub-region, random slot per inner round."""
        self.rounds += 1
        self.total_writes += self.round_writes
        region = int(self.rng.integers(0, self.cfg.n_subregions))
        base = region * self.subregion
        n_dwells, tail = divmod(self.round_writes, self.dwell)
        slots = self.rng.integers(0, self.subregion, size=int(n_dwells))
        np.add.at(self.wear, base + slots, self.dwell)
        if tail:
            self.wear[base + int(self.rng.integers(0, self.subregion))] += int(tail)
        return int(self.wear[base : base + self.subregion].max())

    def run_until_failure(self, max_rounds: int = 10_000_000) -> RoundSimResult:
        endurance = self.pcm.endurance
        for _ in range(max_rounds):
            touched_max = self.step_round()
            if touched_max >= endurance:
                break
        else:
            return RoundSimResult(
                rounds=self.rounds,
                total_writes=self.total_writes,
                lifetime_ns=self.total_writes * self.pcm.set_ns,
                failed=False,
                max_wear=float(self.wear.max()),
            )
        return RoundSimResult(
            rounds=self.rounds,
            total_writes=self.total_writes,
            lifetime_ns=self.total_writes * self.pcm.set_ns,
            failed=True,
            max_wear=float(self.wear.max()),
        )
