"""Latency-timeline instrumentation: the side channel, recorded.

:class:`LatencyRecorder` wraps a controller and logs every write's
``(index, la, latency)`` into growable numpy buffers, then classifies the
stream into the Fig. 4 latency classes.  Useful for:

* visualising what a timing attacker actually sees,
* asserting side-channel properties in tests (how often each remap class
  appears, whether a defense changes the signature),
* exporting traces for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.pcm.timing import LineData


@dataclass(frozen=True)
class LatencyHistogram:
    """Counts of observed write latencies (exact-value bins)."""

    values: np.ndarray  #: distinct latencies, sorted
    counts: np.ndarray  #: occurrences per latency

    def as_dict(self) -> Dict[float, int]:
        return {float(v): int(c) for v, c in zip(self.values, self.counts)}


class LatencyRecorder:
    """Write-through recorder over any controller-like object.

    Works with :class:`~repro.sim.memory_system.MemoryController`,
    :class:`~repro.sim.multibank.MultiBankSystem`, or the defense wrappers —
    anything exposing ``write(la, data) -> latency``.
    """

    def __init__(self, controller, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.controller = controller
        self._las = np.empty(capacity, dtype=np.int64)
        self._latencies = np.empty(capacity, dtype=np.float64)
        self._n = 0

    # ----------------------------------------------------------------- API

    def write(self, la: int, data: LineData) -> float:
        latency = self.controller.write(la, data)
        if self._n == self._las.size:
            self._grow()
        self._las[self._n] = la
        self._latencies[self._n] = latency
        self._n += 1
        return latency

    def read(self, la: int):
        return self.controller.read(la)

    def _grow(self) -> None:
        self._las = np.concatenate([self._las, np.empty_like(self._las)])
        self._latencies = np.concatenate(
            [self._latencies, np.empty_like(self._latencies)]
        )

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._n

    @property
    def las(self) -> np.ndarray:
        """Logical addresses written, in order."""
        return self._las[: self._n]

    @property
    def latencies(self) -> np.ndarray:
        """Observed latencies (ns), in order."""
        return self._latencies[: self._n]

    def histogram(self) -> LatencyHistogram:
        """Exact-value histogram of the observed latencies."""
        values, counts = np.unique(self.latencies, return_counts=True)
        return LatencyHistogram(values=values, counts=counts)

    def extras(self, baseline_ns: float) -> np.ndarray:
        """Latency beyond ``baseline_ns`` per write (0 = no remap)."""
        return np.maximum(self.latencies - baseline_ns, 0.0)

    def remap_rate(self, baseline_ns: float) -> float:
        """Fraction of writes that carried remap work."""
        if self._n == 0:
            return 0.0
        return float((self.latencies > baseline_ns + 1e-9).mean())

    def window(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """Slice of the recording: ``(las, latencies)``."""
        return self._las[start:stop].copy(), self._latencies[start:stop].copy()
