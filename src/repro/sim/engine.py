"""Exact per-write simulation drivers and lifetime measurement.

Two drivers, one result type:

* :func:`run_trace` — the scalar reference: one Python call chain per
  logical write.
* :func:`run_trace_fast` — the chunked fast path: translates and applies
  whole remap-free runs of writes as numpy array operations, dropping to
  the scalar path only for the writes that may trigger a remap (and for
  schemes/configurations that cannot be chunked).  Bit-identical to
  :func:`run_trace`: same ``elapsed_ns``, ``total_writes``, per-line
  wear, failure PA, and RNG stream.  See ``docs/performance.md``.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, Optional, Tuple, Union

from dataclasses import dataclass

import numpy as np

from repro.pcm.array import LineFailure
from repro.pcm.timing import LineData
from repro.sim.fastforward import TraceSpec, fast_forward_engaged, run_fast_forward
from repro.sim.memory_system import MemoryController
from repro.sim.trace import TraceChunk, TraceEntry, trace_chunks


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of driving a controller with a write stream."""

    user_writes: int  #: logical writes issued before stopping
    total_writes: int  #: physical writes including remap movements
    elapsed_ns: float  #: simulated time
    failed: bool  #: True if a line exhausted its endurance
    failed_pa: Optional[int] = None  #: physical address of the first failure

    @property
    def lifetime_seconds(self) -> float:
        """Simulated seconds until the stream ended or the device failed."""
        return self.elapsed_ns * 1e-9

    @property
    def write_amplification(self) -> float:
        """Physical writes per user write (wear-leveling overhead + 1)."""
        if self.user_writes == 0:
            return 0.0
        return self.total_writes / self.user_writes


def run_trace(
    controller: MemoryController,
    trace: Union[Iterable[TraceEntry], TraceSpec],
    max_writes: Optional[int] = None,
) -> SimulationResult:
    """Drive the controller with ``trace`` until it ends, fails, or hits
    ``max_writes`` user writes."""
    if isinstance(trace, TraceSpec):
        trace = trace.entries()
    user_writes = 0
    try:
        for entry in trace:
            if max_writes is not None and user_writes >= max_writes:
                break
            # reprolint: disable=REP002 trace replay; elapsed_ns accounts it
            controller.write(entry.la, entry.data)
            user_writes += 1
    except LineFailure as failure:
        return SimulationResult(
            user_writes=user_writes + 1,
            total_writes=controller.total_writes,
            elapsed_ns=controller.elapsed_ns,
            failed=True,
            failed_pa=failure.pa,
        )
    return SimulationResult(
        user_writes=user_writes,
        total_writes=controller.total_writes,
        elapsed_ns=controller.elapsed_ns,
        failed=False,
    )


FastTrace = Union[Iterable[TraceEntry], Iterable[TraceChunk], TraceSpec]


def _as_chunks(trace: FastTrace, batch: int) -> Iterator[TraceChunk]:
    """Accept any granularity: entry streams are batched, chunked streams
    pass through untouched, trace specs expand to their chunk stream."""
    if isinstance(trace, TraceSpec):
        return trace.chunks()
    it = iter(trace)
    try:
        first = next(it)
    except StopIteration:
        return iter(())
    rest = chain([first], it)
    if isinstance(first, TraceEntry):
        return trace_chunks(rest, batch=batch)
    return rest  # type: ignore[return-value]


def run_trace_fast(
    controller: MemoryController,
    trace: FastTrace,
    max_writes: Optional[int] = None,
    *,
    batch: int = 8192,
    fast_forward: str = "off",
) -> SimulationResult:
    """Chunked twin of :func:`run_trace`; bit-identical results.

    ``trace`` may be a scalar :class:`TraceEntry` stream (batched here
    via :func:`repro.sim.trace.trace_chunks`), a native chunked stream
    of ``(las, datas)`` arrays (e.g. ``uniform_random_chunks``), which
    skips per-entry Python objects entirely, or a
    :class:`~repro.sim.fastforward.TraceSpec` naming a distribution.

    Each chunk is cut at remap boundaries by the scheme itself
    (``consume_chunk``); the boundary writes — and everything else when a
    scheme cannot bound its next remap — run through the scalar
    ``controller.write``, so remap movements and every RNG draw happen in
    exactly the scalar order.  Failures mid-chunk are attributed to the
    precise failing write via ``LineFailure.chunk_index``.

    ``fast_forward`` selects the analytic third tier (requires a
    :class:`TraceSpec` trace): ``"off"`` (default — preserves the
    bit-identity contract above), ``"auto"`` (engage at paper-like scale
    when the scheme and configuration allow; fall through to chunk-exact
    otherwise), or ``"analytic"`` (engage whenever possible, for
    validation runs).  See :mod:`repro.sim.fastforward`.
    """
    if fast_forward_engaged(controller, trace, fast_forward):
        assert isinstance(trace, TraceSpec)
        return run_fast_forward(controller, trace, max_writes, batch=batch)
    user_writes = 0
    try:
        for las, datas in _as_chunks(trace, batch):
            pos = 0
            size = int(las.size)
            while pos < size:
                if max_writes is not None and user_writes >= max_writes:
                    break
                end = size
                if max_writes is not None:
                    end = min(size, pos + (max_writes - user_writes))
                _, n = controller.write_chunk(las[pos:end], datas[pos:end])
                if n == 0:
                    # The next write may remap: issue it scalar.
                    # reprolint: disable=REP002 trace replay
                    controller.write(int(las[pos]), LineData(int(datas[pos])))
                    n = 1
                user_writes += n
                pos += n
            if max_writes is not None and user_writes >= max_writes:
                break
    except LineFailure as failure:
        completed = failure.chunk_index if failure.chunk_index is not None else 0
        return SimulationResult(
            user_writes=user_writes + completed + 1,
            total_writes=controller.total_writes,
            elapsed_ns=controller.elapsed_ns,
            failed=True,
            failed_pa=failure.pa,
        )
    return SimulationResult(
        user_writes=user_writes,
        total_writes=controller.total_writes,
        elapsed_ns=controller.elapsed_ns,
        failed=False,
    )


def run_until_failure(
    controller: MemoryController,
    trace: Iterable[TraceEntry],
    max_writes: int = 10_000_000,
) -> SimulationResult:
    """Like :func:`run_trace` but raises if the stream outlives ``max_writes``
    without wearing the device out — lifetime experiments must fail."""
    result = run_trace(controller, trace, max_writes=max_writes)
    if not result.failed:
        raise RuntimeError(
            f"device did not fail within {max_writes} writes; "
            "increase max_writes or reduce endurance for this experiment"
        )
    return result
