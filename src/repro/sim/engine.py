"""Exact per-write simulation drivers and lifetime measurement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.pcm.array import LineFailure
from repro.sim.memory_system import MemoryController
from repro.sim.trace import TraceEntry


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of driving a controller with a write stream."""

    user_writes: int  #: logical writes issued before stopping
    total_writes: int  #: physical writes including remap movements
    elapsed_ns: float  #: simulated time
    failed: bool  #: True if a line exhausted its endurance
    failed_pa: Optional[int] = None  #: physical address of the first failure

    @property
    def lifetime_seconds(self) -> float:
        """Simulated seconds until the stream ended or the device failed."""
        return self.elapsed_ns * 1e-9

    @property
    def write_amplification(self) -> float:
        """Physical writes per user write (wear-leveling overhead + 1)."""
        if self.user_writes == 0:
            return 0.0
        return self.total_writes / self.user_writes


def run_trace(
    controller: MemoryController,
    trace: Iterable[TraceEntry],
    max_writes: Optional[int] = None,
) -> SimulationResult:
    """Drive the controller with ``trace`` until it ends, fails, or hits
    ``max_writes`` user writes."""
    user_writes = 0
    try:
        for entry in trace:
            if max_writes is not None and user_writes >= max_writes:
                break
            # reprolint: disable=REP002 trace replay; elapsed_ns accounts it
            controller.write(entry.la, entry.data)
            user_writes += 1
    except LineFailure as failure:
        return SimulationResult(
            user_writes=user_writes + 1,
            total_writes=controller.total_writes,
            elapsed_ns=controller.elapsed_ns,
            failed=True,
            failed_pa=failure.pa,
        )
    return SimulationResult(
        user_writes=user_writes,
        total_writes=controller.total_writes,
        elapsed_ns=controller.elapsed_ns,
        failed=False,
    )


def run_until_failure(
    controller: MemoryController,
    trace: Iterable[TraceEntry],
    max_writes: int = 10_000_000,
) -> SimulationResult:
    """Like :func:`run_trace` but raises if the stream outlives ``max_writes``
    without wearing the device out — lifetime experiments must fail."""
    result = run_trace(controller, trace, max_writes=max_writes)
    if not result.failed:
        raise RuntimeError(
            f"device did not fail within {max_writes} writes; "
            "increase max_writes or reduce endurance for this experiment"
        )
    return result
